//! Collaborative text editing on the RGA sequence CRDT: three replicas
//! edit one document offline and converge to the identical text after
//! exchanging state — no server, no locks, no lost keystrokes.
//!
//! ```sh
//! cargo run --example collaborative_editing
//! ```

use rethinking_ec::crdt::{CvRdt, Rga};

fn show(label: &str, doc: &Rga<char>) {
    println!("  {label:<8} \"{}\"", doc.to_vec().iter().collect::<String>());
}

fn main() {
    // Everyone starts from the shared document "ec is".
    let mut base = Rga::new();
    for ch in "ec is".chars() {
        base.push(0, ch);
    }
    let mut alice = base.clone();
    let mut bob = base.clone();
    let mut carol = base.clone();
    println!("shared starting point:");
    show("base", &base);

    // Offline edits.
    // Alice appends " hard" at the end.
    for ch in " hard".chars() {
        alice.push(1, ch);
    }
    // Bob disagrees: he appends " easy" — concurrently, same position.
    for ch in " easy".chars() {
        bob.push(2, ch);
    }
    // Carol rewrites the subject: deletes "ec" and types "EC".
    carol.remove_at(0);
    carol.remove_at(0);
    carol.insert_at(3, 0, 'E');
    carol.insert_at(3, 1, 'C');

    println!("\nafter offline edits:");
    show("alice", &alice);
    show("bob", &bob);
    show("carol", &carol);

    // Exchange state in two different orders; everyone converges.
    let merged_abc = alice.clone().merged(&bob).merged(&carol);
    let merged_cba = carol.clone().merged(&bob).merged(&alice);
    let merged_bac = bob.clone().merged(&alice).merged(&carol);

    println!("\nafter merging (any order):");
    show("a+b+c", &merged_abc);
    show("c+b+a", &merged_cba);
    show("b+a+c", &merged_bac);

    assert_eq!(merged_abc.to_vec(), merged_cba.to_vec());
    assert_eq!(merged_abc.to_vec(), merged_bac.to_vec());

    let text: String = merged_abc.to_vec().iter().collect();
    // All edits survive: Carol's rewrite, and both Alice's and Bob's
    // (concurrent) suffixes in a deterministic order.
    assert!(text.contains("EC"));
    assert!(text.contains("hard"));
    assert!(text.contains("easy"));
    println!(
        "\nconverged ({} visible chars, {} nodes incl. tombstones) — \
         every keystroke accounted for.",
        merged_abc.len(),
        merged_abc.node_count()
    );
}
