//! A guided tour of the consistency spectrum: the same workload against
//! every replication scheme, with the checkers reporting what each one
//! actually delivered.
//!
//! ```sh
//! cargo run --example consistency_tour
//! ```

use rethinking_ec::consistency::{
    check_causal, check_session_guarantees, check_trace_linearizable, measure_staleness,
};
use rethinking_ec::core::metrics::latency_summary;
use rethinking_ec::core::scheme::ClientPlacement;
use rethinking_ec::core::{Experiment, Scheme};
use rethinking_ec::replication::common::Guarantees;
use rethinking_ec::replication::eventual::ConflictMode;
use rethinking_ec::simnet::{Duration, LatencyModel, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn main() {
    // Sized so the hottest key stays within the linearizability checker's
    // 126-op search budget while still creating real contention.
    let workload = WorkloadSpec {
        keys: 16,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 4_000 },
        sessions: 6,
        ops_per_session: 50,
    };
    let schemes: Vec<Scheme> = vec![
        // Raw eventual consistency with roaming clients: anomalies galore.
        Scheme::Eventual {
            replicas: 3,
            eager: false,
            gossip: Some((Duration::from_millis(100), 1)),
            mode: ConflictMode::Lww,
            guarantees: Guarantees::none(),
            placement: ClientPlacement::Random,
        },
        // Same, but the client enforces all four session guarantees.
        Scheme::Eventual {
            replicas: 3,
            eager: false,
            gossip: Some((Duration::from_millis(100), 1)),
            mode: ConflictMode::Lww,
            guarantees: Guarantees::all(),
            placement: ClientPlacement::Random,
        },
        Scheme::Causal { replicas: 3 },
        Scheme::quorum(3, 1, 1),
        Scheme::quorum(3, 2, 2),
        Scheme::PrimaryAsync { replicas: 3, ship_interval: Duration::from_millis(100) },
        Scheme::PrimarySync { replicas: 3 },
        Scheme::Paxos { nodes: 3 },
    ];

    println!(
        "{:<34} {:>9} {:>9} {:>8} {:>8} {:>7} {:>6}",
        "scheme", "read p50", "write p50", "P(stale)", "RYW+MR", "causal", "lin?"
    );
    for (i, scheme) in schemes.into_iter().enumerate() {
        let mut label = scheme.label();
        if i == 1 {
            label.push_str("+sess");
        }
        let res = Experiment::new(scheme)
            .workload(workload.clone())
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(10),
            })
            .seed(1)
            .horizon(SimTime::from_secs(300))
            .run();
        let lat = latency_summary(&res.trace);
        let stale = measure_staleness(&res.trace);
        let sess = check_session_guarantees(&res.trace);
        let causal = check_causal(&res.trace);
        let lin = match check_trace_linearizable(&res.trace) {
            Ok(()) => "yes",
            Err(rethinking_ec::consistency::LinCheckError::NotLinearizable { .. }) => "NO",
            Err(rethinking_ec::consistency::LinCheckError::HistoryTooLarge { .. })
            | Err(rethinking_ec::consistency::LinCheckError::SearchBudgetExceeded { .. }) => "n/a",
        };
        println!(
            "{:<34} {:>8.1}m {:>8.1}m {:>7.1}% {:>8} {:>7} {:>6}",
            label,
            lat.reads.p50,
            lat.writes.p50,
            stale.p_stale() * 100.0,
            sess.ryw_violations + sess.mr_violations,
            causal.violations,
            lin,
        );
    }
    println!(
        "\nReading the table: anomalies shrink as you walk down the spectrum,\n\
         and latency pays for it — the tutorial's whole argument in one run."
    );
}
