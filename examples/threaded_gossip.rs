//! The library outside the simulator: real OS threads gossiping sibling
//! stores over crossbeam channels.
//!
//! Everything else in this workspace runs on deterministic virtual time;
//! this example shows the same data-plane types (`SiblingStore`, dotted
//! version vectors) driving a live multi-threaded anti-entropy loop, with
//! `parking_lot` guarding each replica's store.
//!
//! ```sh
//! cargo run --example threaded_gossip
//! ```

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rethinking_ec::kvstore::{siblings::Sibling, Key, SiblingStore, Value};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const REPLICAS: usize = 4;
const KEYS: u64 = 8;
const WRITES_PER_REPLICA: u64 = 50;

type GossipMsg = Vec<(Key, Sibling)>;

fn main() {
    // One store per replica, one inbox per replica.
    let stores: Vec<Arc<Mutex<SiblingStore>>> =
        (0..REPLICAS).map(|r| Arc::new(Mutex::new(SiblingStore::new(r as u64)))).collect();
    let channels: Vec<(Sender<GossipMsg>, Receiver<GossipMsg>)> =
        (0..REPLICAS).map(|_| unbounded()).collect();
    let senders: Vec<Sender<GossipMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();

    let mut handles = Vec::new();
    for (r, (_, rx)) in channels.into_iter().enumerate() {
        let store = stores[r].clone();
        let peers: Vec<Sender<GossipMsg>> =
            senders.iter().enumerate().filter(|(i, _)| *i != r).map(|(_, s)| s.clone()).collect();
        handles.push(thread::spawn(move || {
            // Phase 1: local writes. Each write quotes the replica's own
            // causal context, so a replica's successive writes supersede
            // its earlier ones — leaving exactly one sibling per replica
            // per key (cross-replica writes stay concurrent).
            for i in 0..WRITES_PER_REPLICA {
                let key = i % KEYS;
                let value = Value::from_u64((r as u64) << 32 | i);
                let mut s = store.lock();
                let ctx = s.read(key).context;
                s.write(key, value, &ctx, i);
            }
            // Phase 2: gossip rounds — push all local siblings, drain inbox.
            for _round in 0..40 {
                let outgoing: GossipMsg = {
                    let s = store.lock();
                    s.keys()
                        .flat_map(|k| s.siblings(k).iter().cloned().map(move |sib| (k, sib)))
                        .collect()
                };
                for p in &peers {
                    let _ = p.send(outgoing.clone());
                }
                thread::sleep(Duration::from_millis(2));
                while let Ok(batch) = rx.try_recv() {
                    let mut s = store.lock();
                    for (k, sib) in batch {
                        s.apply_remote(k, sib);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("replica thread panicked");
    }

    // Convergence check across all replicas.
    let first = stores[0].lock();
    let mut converged = true;
    for other in &stores[1..] {
        if !first.same_siblings(&other.lock()) {
            converged = false;
        }
    }
    println!(
        "{} replicas, {} keys, {} writes each → {} sibling sets, converged: {}",
        REPLICAS,
        KEYS,
        WRITES_PER_REPLICA,
        first.sibling_count(),
        converged
    );
    assert!(converged, "anti-entropy must converge all replicas");
    // Every key holds one sibling per writing replica (blind writes with
    // unique dots never supersede each other).
    for k in 0..KEYS {
        let n = first.siblings(k).len();
        assert_eq!(n, REPLICAS, "key {k}: expected {REPLICAS} siblings, got {n}");
    }
    println!("every key carries {REPLICAS} concurrent siblings — one per replica, none lost.");
}
