//! Quickstart: deploy a replicated store, run a workload, check what the
//! clients actually observed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rethinking_ec::consistency::{check_session_guarantees, measure_staleness};
use rethinking_ec::core::metrics::{availability, latency_summary};
use rethinking_ec::core::{Experiment, Scheme};
use rethinking_ec::simnet::{Duration, LatencyModel};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn main() {
    // A 3-replica Dynamo-style quorum store with R=W=2 (intersecting).
    let scheme = Scheme::quorum(3, 2, 2);
    println!("deploying: {}", scheme.label());

    // 8 sessions, 100 ops each, 95% reads, Zipfian keys, on a jittery LAN.
    let workload = WorkloadSpec {
        keys: 100,
        distribution: KeyDistribution::zipfian_default(),
        mix: OpMix::ycsb_b(),
        arrival: Arrival::Closed { think_us: 2_000 },
        sessions: 8,
        ops_per_session: 100,
    };

    let result = Experiment::new(scheme)
        .workload(workload)
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
        })
        .seed(2013) // the run is a pure function of the seed
        .run();

    println!("\ncompleted {} operations", result.trace.len());
    println!("availability: {:.1}%", availability(&result.trace) * 100.0);

    let lat = latency_summary(&result.trace);
    println!("read latency  p50 {:.1}ms  p99 {:.1}ms", lat.reads.p50, lat.reads.p99);
    println!("write latency p50 {:.1}ms  p99 {:.1}ms", lat.writes.p50, lat.writes.p99);

    // What consistency did clients actually get? Ask the checkers.
    let staleness = measure_staleness(&result.trace);
    println!(
        "stale reads: {} of {} classifiable ({:.2}%)",
        staleness.stale_reads,
        staleness.stale_reads + staleness.fresh_reads,
        staleness.p_stale() * 100.0
    );
    let sessions = check_session_guarantees(&result.trace);
    println!(
        "session guarantees: RYW {} violations, MR {}, MW {}, WFR {}",
        sessions.ryw_violations,
        sessions.mr_violations,
        sessions.mw_violations,
        sessions.wfr_violations
    );
    assert!(staleness.stale_reads == 0, "R+W>N quorums must not serve stale reads");
    println!("\nR+W>N held up: intersecting quorums read fresh. Try Scheme::quorum(3,1,1)!");
}
