//! The tutorial's shopping-cart story, end to end.
//!
//! Act 1 — last-writer-wins: two devices edit the same cart concurrently
//! and one edit silently vanishes.
//!
//! Act 2 — the Dynamo fix: a sibling store surfaces the conflict instead
//! of hiding it, and the application merges.
//!
//! Act 3 — the CRDT fix: an observed-remove map of counters merges by
//! construction; removes don't resurrect, concurrent adds survive.
//!
//! ```sh
//! cargo run --example shopping_cart
//! ```

use rethinking_ec::clocks::{LamportTimestamp, VersionVector};
use rethinking_ec::crdt::{CvRdt, LwwRegister, OrMap, PnCounter};
use rethinking_ec::kvstore::{SiblingStore, Value};

fn act1_lww_loses_an_edit() {
    println!("— Act 1: last-writer-wins —");
    // The cart is one LWW register holding a serialized item list.
    let mut phone: LwwRegister<Vec<&str>> = LwwRegister::new();
    phone.set(LamportTimestamp::new(1, 1), vec!["beer"]);
    let mut laptop = phone.clone();

    // Concurrently: the phone adds chips, the laptop adds wine.
    phone.set(LamportTimestamp::new(2, 1), vec!["beer", "chips"]);
    laptop.set(LamportTimestamp::new(2, 2), vec!["beer", "wine"]);

    // Replicas exchange state; both converge...
    let merged = phone.clone().merged(&laptop);
    println!("  converged cart: {:?}", merged.get().unwrap());
    assert_eq!(merged.get().unwrap(), &vec!["beer", "wine"]);
    println!("  the chips are GONE — a lost update, and nobody was told.\n");
}

fn act2_siblings_surface_the_conflict() {
    println!("— Act 2: sibling store (Dynamo) —");
    let mut store_a = SiblingStore::new(0);
    let mut store_b = SiblingStore::new(1);
    const CART: u64 = 1;

    // Both devices write from the same (empty) causal context.
    store_a.write(CART, Value::from("beer,chips"), &VersionVector::new(), 0);
    store_b.write(CART, Value::from("beer,wine"), &VersionVector::new(), 0);

    // Anti-entropy exchanges the siblings.
    for s in store_b.siblings(CART).to_vec() {
        store_a.apply_remote(CART, s);
    }
    let read = store_a.read(CART);
    println!("  read returns {} siblings:", read.values.len());
    for v in &read.values {
        println!("    - {}", String::from_utf8_lossy(v.as_bytes()));
    }
    assert_eq!(read.values.len(), 2, "the conflict is visible, not hidden");

    // The app merges (union) and writes back with the read's context —
    // which supersedes both siblings.
    store_a.write(CART, Value::from("beer,chips,wine"), &read.context, 1);
    let after = store_a.read(CART);
    assert_eq!(after.values.len(), 1);
    println!(
        "  app-level merge wrote back: {}\n",
        String::from_utf8_lossy(after.values[0].as_bytes())
    );
}

fn act3_crdt_cart_merges_itself() {
    println!("— Act 3: CRDT cart (observed-remove map of counters) —");
    let mut phone: OrMap<&str, PnCounter> = OrMap::new();
    phone.update(1, "beer", |c| c.increment(1, 6));
    let mut laptop = phone.clone();

    // Concurrently: the phone removes the beer entirely; the laptop adds
    // two more bottles and some chips.
    phone.remove(&"beer");
    laptop.update(2, "beer", |c| c.increment(2, 2));
    laptop.update(2, "chips", |c| c.increment(2, 1));

    let merged = phone.clone().merged(&laptop);
    let merged_back = laptop.merged(&phone);
    // Convergent: both directions agree.
    let view: Vec<(&str, i64)> = merged.iter().map(|(k, v)| (*k, v.value())).collect();
    let view_back: Vec<(&str, i64)> = merged_back.iter().map(|(k, v)| (*k, v.value())).collect();
    assert_eq!(view, view_back);
    println!("  converged cart: {view:?}");
    // Add-wins: the concurrent add keeps beer in the cart (with the full
    // counter state — the documented keep-on-remove semantics).
    assert!(merged.contains_key(&"beer"));
    assert!(merged.contains_key(&"chips"));
    println!("  the concurrent add survived the remove — add-wins, by construction.");
}

fn main() {
    act1_lww_loses_an_edit();
    act2_siblings_surface_the_conflict();
    act3_crdt_cart_merges_itself();
}
