//! Integration: each protocol delivers (exactly) the consistency class it
//! claims, as judged by the black-box trace checkers.

use rethinking_ec::consistency::{
    check_causal, check_session_guarantees, check_trace_linearizable, measure_staleness,
    LinCheckError,
};
use rethinking_ec::core::scheme::ClientPlacement;
use rethinking_ec::core::{Experiment, Scheme};
use rethinking_ec::replication::common::Guarantees;
use rethinking_ec::replication::eventual::ConflictMode;
use rethinking_ec::simnet::{Duration, LatencyModel, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn contended_workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 16,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 4_000 },
        sessions: 6,
        ops_per_session: 50,
    }
}

fn jittery_lan() -> LatencyModel {
    LatencyModel::Uniform { min: Duration::from_millis(1), max: Duration::from_millis(10) }
}

fn roaming_eventual(guarantees: Guarantees) -> Scheme {
    Scheme::Eventual {
        replicas: 3,
        eager: false,
        gossip: Some((Duration::from_millis(100), 1)),
        mode: ConflictMode::Lww,
        guarantees,
        placement: ClientPlacement::Random,
    }
}

fn run(scheme: Scheme, seed: u64) -> rethinking_ec::core::RunResult {
    Experiment::new(scheme)
        .workload(contended_workload())
        .latency(jittery_lan())
        .seed(seed)
        .horizon(SimTime::from_secs(300))
        .run()
}

#[test]
fn paxos_is_linearizable() {
    let res = run(Scheme::Paxos { nodes: 3 }, 1);
    assert!(res.trace.success_rate() > 0.99);
    check_trace_linearizable(&res.trace).expect("paxos history must linearize");
}

#[test]
fn paxos_under_loss_is_still_linearizable() {
    use rethinking_ec::simnet::FaultSchedule;
    // Uniform keys keep per-key histories small: loss-induced retries
    // create long overlapping intervals, and the Wing&Gong search is
    // exponential in the overlap depth.
    let workload =
        WorkloadSpec { keys: 48, distribution: KeyDistribution::Uniform, ..contended_workload() };
    let res = Experiment::new(Scheme::Paxos { nodes: 3 })
        .workload(workload)
        .latency(jittery_lan())
        .faults(FaultSchedule::none().loss_rate(SimTime::ZERO, 0.05))
        .seed(2)
        .horizon(SimTime::from_secs(600))
        .run();
    // Some ops may time out under loss; completed ones must linearize.
    check_trace_linearizable(&res.trace).expect("lossy paxos must still linearize");
}

#[test]
fn raw_eventual_with_roaming_clients_violates_session_guarantees() {
    let res = run(roaming_eventual(Guarantees::none()), 3);
    let report = check_session_guarantees(&res.trace);
    assert!(
        report.ryw_violations + report.mr_violations > 0,
        "gossip-lag plus roaming clients must surface session anomalies \
         (otherwise E3 has nothing to measure): {report:?}"
    );
}

#[test]
fn enforced_session_guarantees_hold_under_roaming() {
    let res = run(roaming_eventual(Guarantees::all()), 3);
    let report = check_session_guarantees(&res.trace);
    assert_eq!(report.ryw_violations, 0, "{report:?}");
    assert_eq!(report.mr_violations, 0, "{report:?}");
    assert_eq!(report.mw_violations, 0, "{report:?}");
    assert_eq!(report.wfr_violations, 0, "{report:?}");
    assert!(report.ryw_checked > 0, "the checker must actually have checked something");
}

#[test]
fn causal_protocol_produces_causally_clean_traces() {
    let res = run(Scheme::Causal { replicas: 3 }, 4);
    let report = check_causal(&res.trace);
    assert!(report.clean(), "causal broadcast must not admit causal anomalies: {report:?}");
    assert!(report.checked > 0);
    // And session guarantees hold for sticky clients on a causal store.
    let sess = check_session_guarantees(&res.trace);
    assert!(sess.clean(), "{sess:?}");
}

#[test]
fn intersecting_quorums_never_read_stale() {
    let res = run(Scheme::quorum(3, 2, 2), 5);
    let st = measure_staleness(&res.trace);
    assert_eq!(st.stale_reads, 0, "R+W>N must serve fresh reads");
    assert!(st.fresh_reads > 0);
}

#[test]
fn partial_quorums_admit_staleness_under_jitter() {
    // Heavier tail + tighter loop than the default: the PBS regime.
    let workload = WorkloadSpec {
        keys: 5,
        arrival: Arrival::Closed { think_us: 500 },
        sessions: 10,
        ops_per_session: 120,
        ..contended_workload()
    };
    let res = Experiment::new(Scheme::quorum(3, 1, 1))
        .workload(workload)
        .latency(LatencyModel::LogNormal { median: Duration::from_millis(3), sigma: 1.2 })
        .seed(42)
        .horizon(SimTime::from_secs(300))
        .run();
    let st = measure_staleness(&res.trace);
    assert!(
        st.stale_reads > 0,
        "R=W=1 under heavy-tailed latency must show stale reads (E1's premise)"
    );
}

#[test]
fn primary_sync_serves_fresh_backup_reads() {
    let res = run(Scheme::PrimarySync { replicas: 3 }, 6);
    let st = measure_staleness(&res.trace);
    assert_eq!(st.stale_reads, 0, "sync primary-copy backups cannot lag");
}

#[test]
fn primary_async_staleness_grows_with_lag() {
    let p_stale = |lag_ms: u64| {
        let res = run(
            Scheme::PrimaryAsync { replicas: 3, ship_interval: Duration::from_millis(lag_ms) },
            7,
        );
        measure_staleness(&res.trace).p_stale()
    };
    let fast = p_stale(10);
    let slow = p_stale(400);
    assert!(slow > fast + 0.05, "staleness must grow with replication lag: {fast} vs {slow}");
}

#[test]
fn sibling_mode_surfaces_conflicts_instead_of_losing_them() {
    let scheme = Scheme::Eventual {
        replicas: 3,
        eager: true,
        gossip: Some((Duration::from_millis(20), 2)),
        mode: ConflictMode::Siblings,
        guarantees: Guarantees::none(),
        placement: ClientPlacement::Sticky,
    };
    let res = run(scheme, 8);
    // With concurrent writers on hot keys, some read must have returned
    // more than one sibling — and the linearizability checker must flag
    // the trace as a (multi-value) non-register.
    let multi = res.trace.records().iter().any(|r| r.value_read.len() > 1);
    assert!(multi, "hot concurrent writes must produce visible siblings");
    assert!(matches!(
        check_trace_linearizable(&res.trace),
        Err(LinCheckError::NotLinearizable { .. })
    ));
}
