//! Integration: the regression corpus replays to stable verdicts.
//!
//! Each file in `tests/corpus/` is a shrunk [`FuzzCase`] emitted by the
//! `fuzz_nemesis` harness — a minimal fault schedule that once broke a
//! guarantee. Replaying them pins two things at once: the byte format of
//! reproducers (serde round trip) and the simulator's behaviour on the
//! schedule (exact verdict, including the violation count). If a
//! legitimate protocol change shifts a verdict, re-run the fuzzer and
//! refresh the corpus file alongside the change.

use rethinking_ec::core::fuzz::{run_case, run_case_with_queue, FuzzCase, Verdict, ViolationKind};
use rethinking_ec::simnet::QueueKind;

fn load(name: &str) -> FuzzCase {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/");
    let raw = std::fs::read_to_string(format!("{path}{name}"))
        .unwrap_or_else(|e| panic!("corpus file {name}: {e}"));
    serde_json::from_str(&raw).unwrap_or_else(|e| panic!("corpus file {name}: {e}"))
}

fn assert_replays(name: &str, expected: Verdict) {
    let case = load(name);
    // The corpus stores compact serde output: re-encoding must be
    // byte-stable or reproducer diffs become meaningless.
    let reencoded = serde_json::to_string(&case).unwrap();
    let raw =
        std::fs::read_to_string(format!("{}/tests/corpus/{name}", env!("CARGO_MANIFEST_DIR")))
            .unwrap();
    assert_eq!(reencoded, raw.trim_end(), "{name}: corpus JSON is not canonical");
    assert_eq!(run_case(&case), expected, "{name}: verdict drifted");
}

#[test]
fn partition_reproducer_still_violates() {
    // R+W<=N under a majority partition: the seeded known-violation from
    // ISSUE 3, shrunk to a single partition window.
    assert_replays(
        "partial_quorum_partition.json",
        Verdict::Violation { kind: ViolationKind::StaleReads, count: 3 },
    );
}

#[test]
fn amnesia_crash_reproducer_still_violates() {
    assert_replays(
        "partial_quorum_amnesia_crash.json",
        Verdict::Violation { kind: ViolationKind::StaleReads, count: 1 },
    );
}

#[test]
fn loss_burst_reproducer_still_violates() {
    assert_replays(
        "partial_quorum_loss_burst.json",
        Verdict::Violation { kind: ViolationKind::StaleReads, count: 2 },
    );
}

#[test]
fn corpus_verdicts_are_queue_independent() {
    // Corpus JSON predates the `queue` knob and carries no queue field;
    // `run_case` pins the timing wheel explicitly so old reproducers
    // keep replaying identically. This holds the stronger property that
    // makes the pin a formality: both event-queue backends pop in the
    // same deterministic order, so every reproducer's verdict is
    // identical under either backend.
    for name in [
        "partial_quorum_partition.json",
        "partial_quorum_amnesia_crash.json",
        "partial_quorum_loss_burst.json",
    ] {
        let case = load(name);
        let wheel = run_case_with_queue(&case, QueueKind::TimingWheel);
        let heap = run_case_with_queue(&case, QueueKind::BinaryHeap);
        assert_eq!(wheel, heap, "{name}: verdict depends on the event-queue backend");
        assert_eq!(wheel, run_case(&case), "{name}: run_case drifted from the pinned backend");
    }
}
