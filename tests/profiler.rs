//! Integration: the deterministic in-sim handler profiler.
//!
//! Two contracts from `docs/PROFILING.md` are enforced here. First, the
//! jobs-invariant projection of a profiled grid — invocation counts and
//! gross allocation tallies per `(scheme, role, handler, variant)` —
//! must be byte-identical whether the grid runs on one worker or four.
//! Second, allocation attribution must not count itself: the recorder's
//! own profile bookkeeping runs under a [`PauseAlloc`] guard, so nested
//! probes and repeated `prof_record` calls see zero profiler-induced
//! allocations.
//!
//! This test binary installs [`CountingAlloc`] as its global allocator,
//! so unlike `obs`'s own unit tests the allocation deltas here are real.

use rethinking_ec::core::{CellResult, Experiment, Grid, RecorderSpec, Scheme};
use rethinking_ec::obs::{
    alloc_totals, Counter, CountingAlloc, FoldWeight, MetricsReport, PauseAlloc, Probe, ProfSample,
    Recorder,
};
use rethinking_ec::simnet::{Duration, LatencyModel, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn small_workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 8,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 2_000 },
        sessions: 4,
        ops_per_session: 40,
    }
}

/// A small profiled grid spanning three protocol families.
fn profiled_grid() -> Grid {
    let mk = |scheme: Scheme| {
        Experiment::new(scheme)
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(8),
            })
            .workload(small_workload())
            .seed(17)
            .horizon(SimTime::from_secs(30))
    };
    let mut grid = Grid::new();
    for scheme in [Scheme::eventual(3), Scheme::quorum(3, 2, 2), Scheme::Paxos { nodes: 3 }] {
        grid.push(scheme.label(), mk(scheme));
    }
    grid.profile(true)
}

/// Run the grid at `jobs` workers and fold every cell recorder, in grid
/// order, into one aggregate report — the same aggregation the harness
/// binaries perform.
fn merged_report(jobs: usize) -> MetricsReport {
    let cells: Vec<CellResult> = profiled_grid().seeds(2).run(jobs, RecorderSpec::Counters);
    assert_eq!(cells.len(), 6, "3 schemes x 2 seeds");
    let agg = Recorder::enabled();
    for cell in &cells {
        agg.absorb(&cell.recorder);
    }
    agg.report()
}

#[test]
fn profile_counts_and_alloc_tallies_are_jobs_invariant() {
    let serial = merged_report(1);
    let parallel = merged_report(4);

    let sp = serial.profile.as_ref().expect("serial run carries a profile");
    let pp = parallel.profile.as_ref().expect("parallel run carries a profile");
    assert!(sp.total_invocations() > 0, "profiled grid recorded no handler invocations");
    assert_eq!(sp.schemes.len(), 3, "one profile entry per scheme label");

    // The jobs-invariant projection — counts and allocation tallies per
    // (scheme, role, handler, variant) — must match exactly. Timing is
    // host-dependent and deliberately excluded.
    assert_eq!(
        sp.determinism_key(),
        pp.determinism_key(),
        "profile counts/alloc tallies differ between jobs=1 and jobs=4"
    );

    // So must both jobs-invariant folded-stack exports, byte for byte.
    assert_eq!(sp.to_folded(FoldWeight::Calls), pp.to_folded(FoldWeight::Calls));
    assert_eq!(sp.to_folded(FoldWeight::AllocBytes), pp.to_folded(FoldWeight::AllocBytes));

    // And the rollup counters derived from the same samples.
    assert_eq!(
        serial.counter(Counter::HandlerInvocations),
        parallel.counter(Counter::HandlerInvocations)
    );
    assert_eq!(serial.counter(Counter::AllocBytes), parallel.counter(Counter::AllocBytes));
    assert_eq!(
        serial.counter(Counter::HandlerInvocations),
        sp.total_invocations(),
        "handler_invocations counter must equal the profile's invocation total"
    );
    // This binary installs CountingAlloc, so protocol handlers (which
    // clone buffers, grow maps, ...) must show real allocation traffic.
    assert!(serial.counter(Counter::AllocBytes) > 0, "expected nonzero gross alloc tallies");
}

#[test]
fn unprofiled_runs_carry_no_profile_block() {
    let cells = profiled_grid().profile(false).seeds(1).run(2, RecorderSpec::Counters);
    for cell in &cells {
        assert!(
            cell.recorder.report().profile.is_none(),
            "cell {} grew a profile without --profile",
            cell.label
        );
    }
}

#[test]
fn counting_alloc_tallies_and_pause_guard_suppresses() {
    let before = alloc_totals();
    let buf: Vec<u8> = Vec::with_capacity(4096);
    let after = alloc_totals();
    drop(buf);
    assert!(after.0 >= before.0 + 4096, "allocation was not tallied");
    assert!(after.1 > before.1, "allocation count did not advance");

    // Under a pause guard the same allocation leaves no trace, and the
    // tallies are gross: the drop above subtracted nothing.
    let paused_before = alloc_totals();
    {
        let _guard = PauseAlloc::new();
        let hidden: Vec<u8> = Vec::with_capacity(4096);
        drop(hidden);
    }
    assert_eq!(alloc_totals(), paused_before, "PauseAlloc leaked a tally");
}

#[test]
fn probe_deltas_are_exact_and_repeatable() {
    // Identical work must produce identical deltas: the probe itself
    // and its bookkeeping contribute zero allocations.
    let mut deltas = Vec::new();
    for _ in 0..4 {
        let probe = Probe::start();
        let buf: Vec<u8> = Vec::with_capacity(1024);
        let sample = probe.finish();
        drop(buf);
        deltas.push((sample.alloc_bytes, sample.alloc_count));
    }
    assert!(deltas[0].0 >= 1024, "probe missed the allocation: {deltas:?}");
    assert!(deltas.iter().all(|d| *d == deltas[0]), "unequal deltas: {deltas:?}");
}

#[test]
fn recorder_bookkeeping_does_not_count_itself() {
    // The reentrancy contract: prof_record allocates (BTreeMap nodes,
    // scheme strings) but pauses tallying while it does, so a probe
    // around any number of prof_record calls reads zero.
    let rec = Recorder::enabled();
    rec.enable_profiling();
    rec.set_profile_scheme("reentrancy");
    let sample = ProfSample { wall_ns: 5, alloc_bytes: 64, alloc_count: 1 };

    let probe = Probe::start();
    for _ in 0..100 {
        rec.prof_record("replica", rethinking_ec::obs::HandlerKind::Message, "put", sample);
    }
    let outer = probe.finish();
    assert_eq!(
        (outer.alloc_bytes, outer.alloc_count),
        (0, 0),
        "profile bookkeeping tallied its own allocations"
    );

    // The samples themselves still landed.
    let profile = rec.report().profile.expect("profiling enabled");
    assert_eq!(profile.total_invocations(), 100);
    assert_eq!(profile.determinism_key()[0].1, "replica;on_message:put");
}

#[test]
fn nested_probes_attribute_without_double_counting() {
    // An inner probe sees only its own scope; the outer probe sees both
    // scopes — exactly once each, even though the scopes nest.
    let outer = Probe::start();
    let a: Vec<u8> = Vec::with_capacity(512);
    let inner = Probe::start();
    let b: Vec<u8> = Vec::with_capacity(2048);
    let inner_sample = inner.finish();
    let outer_sample = outer.finish();
    drop((a, b));

    assert_eq!(inner_sample.alloc_bytes, 2048, "inner probe scope is just `b`");
    assert_eq!(inner_sample.alloc_count, 1);
    assert_eq!(outer_sample.alloc_bytes, 512 + 2048, "outer probe covers both scopes once");
    assert_eq!(outer_sample.alloc_count, 2);
}
