//! Integration: behaviour under partitions, crashes, and message loss —
//! the CAP trade-offs, end to end.

use rethinking_ec::core::metrics::availability_timeline;
use rethinking_ec::core::scheme::ClientPlacement;
use rethinking_ec::core::{Experiment, Scheme};
use rethinking_ec::replication::common::Guarantees;
use rethinking_ec::replication::eventual::ConflictMode;
use rethinking_ec::simnet::{Duration, FaultSchedule, LatencyModel, NodeId, OpKind, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn workload(sessions: u32, ops: u32) -> WorkloadSpec {
    WorkloadSpec {
        keys: 10,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 50_000 },
        sessions,
        ops_per_session: ops,
    }
}

/// Partition replica 0 together with its sticky clients from t=5s to 10s.
fn partition_side_a(n_replicas: usize, sessions: u32) -> FaultSchedule {
    let mut side_a = vec![NodeId(0)];
    for c in 0..sessions as usize {
        if c % n_replicas == 0 {
            side_a.push(NodeId((n_replicas + c) as u32));
        }
    }
    FaultSchedule::none().partition(side_a, SimTime::from_secs(5), SimTime::from_secs(10))
}

fn run_partitioned(scheme: Scheme, seed: u64) -> rethinking_ec::core::RunResult {
    let n = scheme.replica_count();
    Experiment::new(scheme)
        .workload(workload(6, 260))
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
        })
        .faults(partition_side_a(n, 6))
        .seed(seed)
        .horizon(SimTime::from_secs(25))
        .run()
}

fn availability_during(res: &rethinking_ec::core::RunResult, lo_ms: f64, hi_ms: f64) -> f64 {
    let tl = availability_timeline(&res.trace, Duration::from_secs(1));
    let window: Vec<f64> =
        tl.iter().filter(|(t, _)| (lo_ms..hi_ms).contains(t)).map(|(_, a)| *a).collect();
    if window.is_empty() {
        1.0
    } else {
        window.iter().sum::<f64>() / window.len() as f64
    }
}

#[test]
fn eventual_stays_fully_available_through_partition() {
    let res = run_partitioned(Scheme::eventual(3), 1);
    assert!(
        availability_during(&res, 5_000.0, 10_000.0) > 0.999,
        "AP system must not notice the partition"
    );
}

#[test]
fn majority_quorum_loses_minority_side_only() {
    let scheme =
        Scheme::Quorum { n: 3, r: 2, w: 2, read_repair: true, placement: ClientPlacement::Sticky };
    let res = run_partitioned(scheme, 2);
    let during = availability_during(&res, 5_000.0, 10_000.0);
    assert!(during < 0.999, "majority quorum must lose the minority side ({during})");
    assert!(during > 0.5, "...but the majority side keeps serving ({during})");
    // Full recovery after the heal.
    assert!(availability_during(&res, 11_000.0, 25_000.0) > 0.999);
}

#[test]
fn primary_sync_write_availability_collapses_when_primary_isolated() {
    let res = run_partitioned(Scheme::PrimarySync { replicas: 3 }, 3);
    // During the partition the primary can reach no backup: every write
    // fails (minority clients also lose reads).
    let writes_during_partition: Vec<bool> = res
        .trace
        .records()
        .iter()
        .filter(|r| {
            r.kind == OpKind::Write
                && r.invoked >= SimTime::from_secs(5)
                && r.invoked < SimTime::from_millis(9_500)
        })
        .map(|r| r.ok)
        .collect();
    assert!(!writes_during_partition.is_empty());
    assert!(
        writes_during_partition.iter().all(|ok| !ok),
        "sync primary cut off from all backups must fail every write"
    );
}

#[test]
fn quorum_heals_and_converges_after_partition() {
    // After the heal, a majority write is visible to majority reads from
    // every coordinator (read repair + intersection).
    let scheme =
        Scheme::Quorum { n: 3, r: 2, w: 2, read_repair: true, placement: ClientPlacement::Sticky };
    let res = run_partitioned(scheme, 4);
    let late_reads: Vec<_> = res
        .trace
        .records()
        .iter()
        .filter(|r| r.kind == OpKind::Read && r.invoked > SimTime::from_secs(12))
        .collect();
    assert!(!late_reads.is_empty());
    assert!(late_reads.iter().all(|r| r.ok), "post-heal reads must all succeed");
}

#[test]
fn paxos_survives_leader_crash() {
    let faults =
        FaultSchedule::none().crash(NodeId(0), SimTime::from_secs(3), SimTime::from_secs(60));
    let res = Experiment::new(Scheme::Paxos { nodes: 3 })
        .workload(workload(4, 200))
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
        })
        .faults(faults)
        .seed(5)
        .horizon(SimTime::from_secs(60))
        .run();
    // Ops issued well after the crash (failover done) must succeed.
    let late: Vec<_> =
        res.trace.records().iter().filter(|r| r.invoked > SimTime::from_secs(10)).collect();
    assert!(!late.is_empty());
    let ok = late.iter().filter(|r| r.ok).count();
    assert!(
        ok as f64 / late.len() as f64 > 0.95,
        "post-failover paxos must serve ({}/{} ok)",
        ok,
        late.len()
    );
}

#[test]
fn gossip_repairs_divergence_after_partition_heals() {
    // Eventual store with gossip: writes land on *both sides* of a
    // partition (guaranteed divergence), and after the heal late pollers
    // at every replica must observe identical values — the formal
    // convergence predicate, client-observed.
    use rethinking_ec::replication::common::ScriptOp;
    use rethinking_ec::replication::eventual::{
        EventualClient, EventualConfig, EventualReplica, GossipConfig, TargetPolicy,
    };
    use rethinking_ec::simnet::{optrace, Sim, SimConfig};

    let trace = optrace::shared_trace();
    let cfg = EventualConfig {
        eager: true,
        gossip: Some(GossipConfig { interval: Duration::from_millis(50), fanout: 2 }),
        ..EventualConfig::default_lww(3)
    };
    let mut sim = Sim::new(
        SimConfig::default()
            .seed(6)
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(8),
            })
            // Replica 0 + the first writer (node 3) are cut off 1s–3s.
            .faults(FaultSchedule::none().partition(
                vec![NodeId(0), NodeId(3)],
                SimTime::from_secs(1),
                SimTime::from_secs(3),
            )),
    );
    for _ in 0..3 {
        sim.add_node(Box::new(EventualReplica::new(cfg.clone())));
    }
    // Two writers hammer the same keys on opposite partition sides.
    for (session, home) in [(1u64, 0u32), (2, 1)] {
        let script: Vec<ScriptOp> =
            (0..40).map(|i| ScriptOp { gap_us: 50_000, kind: OpKind::Write, key: i % 5 }).collect();
        sim.add_node(Box::new(EventualClient::new(
            session,
            script,
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(home)),
            Guarantees::none(),
            ConflictMode::Lww,
        )));
    }
    // Late pollers at every replica read every key at t = 8s.
    for (session, home) in [(10u64, 0u32), (11, 1), (12, 2)] {
        let script: Vec<ScriptOp> =
            (0..5).map(|k| ScriptOp { gap_us: 8_000_000, kind: OpKind::Read, key: k }).collect();
        sim.add_node(Box::new(EventualClient::new(
            session,
            script,
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(home)),
            Guarantees::none(),
            ConflictMode::Lww,
        )));
    }
    sim.run_until(SimTime::from_secs(60));
    let t = trace.borrow().clone();
    let report = rethinking_ec::consistency::check_convergence(&t, Duration::from_secs(2))
        .expect("writes happened");
    assert!(report.converged(), "replicas diverged after quiescence: {:?}", report.diverged);
    assert_eq!(report.converged_keys, 5, "all five keys verified at all replicas");
}

/// Crash replica 1 of a majority quorum at 3s, recover at 8s, in the
/// given recovery mode, with counters on.
fn run_quorum_crash(amnesia: bool, seed: u64) -> rethinking_ec::core::RunResult {
    let at = SimTime::from_secs(3);
    let until = SimTime::from_secs(8);
    let faults = if amnesia {
        FaultSchedule::none().crash_amnesia(NodeId(1), at, until)
    } else {
        FaultSchedule::none().crash(NodeId(1), at, until)
    };
    Experiment::new(Scheme::quorum(3, 2, 2))
        .workload(workload(4, 200))
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
        })
        .faults(faults)
        .seed(seed)
        .horizon(SimTime::from_secs(25))
        .recorder(rethinking_ec::obs::Recorder::enabled())
        .run()
}

#[test]
fn quorum_survives_fail_pause_crash() {
    use rethinking_ec::obs::Counter;
    let res = run_quorum_crash(false, 8);
    // Fail-pause: the replica comes back with its memory intact — no
    // amnesia recovery, no WAL replay.
    assert_eq!(res.metrics.counter(Counter::AmnesiaRecoveries), 0);
    assert_eq!(res.metrics.counter(Counter::WalReplayedRecords), 0);
    let staleness = rethinking_ec::consistency::measure_staleness(&res.trace);
    assert_eq!(staleness.stale_reads, 0, "R+W>N must stay fresh through a fail-pause crash");
    assert!(availability_during(&res, 12_000.0, 25_000.0) > 0.999, "full recovery after restart");
}

#[test]
fn quorum_survives_amnesia_crash_by_replaying_its_wal() {
    use rethinking_ec::obs::Counter;
    let res = run_quorum_crash(true, 8);
    // Amnesia: volatile state is wiped; the store must be rebuilt from
    // the durable log (the replica had adopted writes before 3s, so the
    // replay is non-trivial).
    assert_eq!(res.metrics.counter(Counter::AmnesiaRecoveries), 1);
    assert!(
        res.metrics.counter(Counter::WalReplayedRecords) > 0,
        "amnesia recovery must replay the WAL"
    );
    // Every version the restarted replica acked before the crash was
    // logged before it was applied, so R+W>N intersection still holds:
    // no acked write may be forgotten.
    let staleness = rethinking_ec::consistency::measure_staleness(&res.trace);
    assert_eq!(staleness.stale_reads, 0, "WAL replay must preserve every acked write");
    assert!(availability_during(&res, 12_000.0, 25_000.0) > 0.999, "full recovery after replay");
}

#[test]
fn amnesia_and_fail_pause_agree_on_client_outcomes_for_paxos() {
    // Paxos keeps its acceptor state (promised/accepted/committed) on
    // stable storage, so client-visible safety is identical in both
    // recovery modes: linearizable either way, and ops issued well after
    // the restart succeed.
    for amnesia in [false, true] {
        let at = SimTime::from_secs(3);
        let until = SimTime::from_secs(7);
        let faults = if amnesia {
            FaultSchedule::none().crash_amnesia(NodeId(2), at, until)
        } else {
            FaultSchedule::none().crash(NodeId(2), at, until)
        };
        let res = Experiment::new(Scheme::Paxos { nodes: 3 })
            .workload(workload(4, 220))
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(8),
            })
            .faults(faults)
            .seed(9)
            .horizon(SimTime::from_secs(60))
            .run();
        rethinking_ec::consistency::check_trace_linearizable(&res.trace)
            .unwrap_or_else(|e| panic!("paxos (amnesia={amnesia}) not linearizable: {e:?}"));
        let late: Vec<_> =
            res.trace.records().iter().filter(|r| r.invoked > SimTime::from_secs(8)).collect();
        assert!(!late.is_empty());
        let ok = late.iter().filter(|r| r.ok).count();
        assert!(
            ok as f64 / late.len() as f64 > 0.95,
            "paxos (amnesia={amnesia}) must keep serving after restart ({ok}/{})",
            late.len()
        );
    }
}

/// Sloppy quorum under a partition that cuts two of the three home
/// replicas: writes fall through to hint-holding spares, and after the
/// heal every hint drains to its home replica. The conservation
/// identity `hints_stored == hints_drained + hints_dropped` is the
/// ledger: a hint that neither drained nor was accounted lost is a
/// silently vanished write.
#[test]
fn hinted_handoff_conserves_hints_and_lands_them_home() {
    use rethinking_ec::obs::Counter;
    let res = Experiment::new(Scheme::SloppyQuorum { n: 3, r: 2, w: 2, spares: 2 })
        .workload(WorkloadSpec {
            keys: 10,
            distribution: KeyDistribution::Uniform,
            mix: OpMix::ycsb_a(),
            arrival: Arrival::Closed { think_us: 50_000 },
            sessions: 3,
            ops_per_session: 240,
        })
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
        })
        .faults(FaultSchedule::none().partition(
            vec![NodeId(1), NodeId(2)],
            SimTime::from_secs(1),
            SimTime::from_secs(4),
        ))
        .seed(13)
        .horizon(SimTime::from_secs(25))
        .recorder(rethinking_ec::obs::Recorder::enabled())
        .run();

    let stored = res.metrics.counter(Counter::HintsStored);
    let drained = res.metrics.counter(Counter::HintsDrained);
    let dropped = res.metrics.counter(Counter::HintsDropped);
    assert!(stored > 0, "cutting two of three homes must force hinted writes");
    assert_eq!(
        stored,
        drained + dropped,
        "hint ledger must balance: stored={stored} drained={drained} dropped={dropped}"
    );
    assert_eq!(dropped, 0, "no amnesia and a long post-heal tail: every hint must drain");

    // Spares (ids 3, 4) park hints in a side table, never in their
    // store: a key in a spare's store would be a misdelivered write.
    assert!(
        res.final_versions.iter().all(|&(node, _, _)| node.0 < 3),
        "spares must hold hints, not store copies: {:?}",
        res.final_versions
    );
    // And the drained hints landed: the cut homes hold every key the
    // always-connected home holds (drain + post-heal read repair).
    for home in [1u32, 2] {
        for &(node, key, _) in &res.final_versions {
            if node.0 == 0 {
                assert!(
                    res.final_versions.iter().any(|&(n, k, _)| n.0 == home && k == key),
                    "home {home} never received key {key} (hint lost in flight)"
                );
            }
        }
    }
}

/// The same ledger holds on a consistent-hashing ring, where spares are
/// the next distinct nodes on the key's hash walk rather than dedicated
/// hint parks — and at the horizon every key's ring owners agree
/// (ownership-aware convergence).
#[test]
fn ring_hinted_handoff_conserves_hints_and_owners_converge() {
    use rethinking_ec::consistency::check_owner_convergence;
    use rethinking_ec::core::scheme::ChurnPlan;
    use rethinking_ec::obs::Counter;
    use rethinking_ec::replication::sharded::Ring;
    use rethinking_ec::replication::Composition;

    let nodes = 8;
    let ring = Ring::new(3, 16, (0..nodes as u32).map(NodeId));
    // Cut two owners of key 0 so writes to it must hint to ring spares.
    let cut = ring.owners(0);
    let res = Experiment::new(Scheme::Sharded {
        inner: Composition::quorum(3, 2, 2, true, 2),
        nodes,
        vnodes: 16,
        churn: ChurnPlan::none(),
    })
    .workload(WorkloadSpec {
        keys: 10,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 50_000 },
        sessions: 3,
        ops_per_session: 240,
    })
    .latency(LatencyModel::Uniform { min: Duration::from_millis(1), max: Duration::from_millis(8) })
    .faults(FaultSchedule::none().partition(
        vec![cut[0], cut[1]],
        SimTime::from_secs(1),
        SimTime::from_secs(4),
    ))
    .seed(17)
    .horizon(SimTime::from_secs(25))
    .recorder(rethinking_ec::obs::Recorder::enabled())
    .run();

    let stored = res.metrics.counter(Counter::HintsStored);
    let drained = res.metrics.counter(Counter::HintsDrained);
    let dropped = res.metrics.counter(Counter::HintsDropped);
    assert!(stored > 0, "cutting two owners of key 0 must force hinted writes");
    assert_eq!(
        stored,
        drained + dropped,
        "ring hint ledger must balance: stored={stored} drained={drained} dropped={dropped}"
    );

    // Ownership-aware convergence: at the horizon, every key's ring
    // owners hold the same version (hints drained home, read repair
    // healed the partition-era divergence).
    let server_versions: Vec<_> =
        res.final_versions.iter().copied().filter(|&(n, _, _)| n.index() < nodes).collect();
    let report = check_owner_convergence(&server_versions, |k| ring.owners(k));
    assert!(report.converged(), "ring owners diverged at horizon: {:?}", report.diverged);
}

#[test]
fn message_loss_slows_but_does_not_wedge_quorums() {
    let faults = FaultSchedule::none().loss_rate(SimTime::ZERO, 0.10);
    let res = Experiment::new(Scheme::quorum(3, 2, 2))
        .workload(workload(4, 80))
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
        })
        .faults(faults)
        .seed(7)
        .horizon(SimTime::from_secs(120))
        .run();
    // 10% loss: some coordinator ops fail (no retransmit in the protocol,
    // failures surface) but the system keeps making progress.
    assert!(res.trace.success_rate() > 0.6, "rate {}", res.trace.success_rate());
    assert!(res.dropped_messages > 0);
}
