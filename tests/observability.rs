//! Integration: the observability layer's two contract guarantees,
//! end to end (see `docs/METRICS.md`):
//!
//! 1. **Determinism** — the JSONL event log is a pure function of
//!    `(config, seed)`: two identical runs export byte-identical traces.
//! 2. **Conservation** — every message handed to the network is
//!    accounted for exactly once, even under partitions, crashes, and
//!    random loss: `messages_sent == messages_delivered +
//!    messages_dropped`; likewise every span opens and closes exactly
//!    once (`abandoned` closes mark spans the run cut short).
//!
//! Plus the doc-sync guards: the counter and time-series tables in
//! `docs/METRICS.md` must list exactly what the code exports.

use rethinking_ec::core::{Experiment, RunResult, Scheme};
use rethinking_ec::obs::{Counter, Recorder, TsMetric};
use rethinking_ec::obs_tools::check_spans;
use rethinking_ec::simnet::{Duration, FaultSchedule, LatencyModel, NodeId, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 8,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 20_000 },
        sessions: 6,
        ops_per_session: 80,
    }
}

/// Partition + crash + message loss, all in one run: the regime where
/// an unaccounted-for message would actually slip through.
fn faulty_schedule() -> FaultSchedule {
    FaultSchedule::none()
        .partition(vec![NodeId(0)], SimTime::from_secs(2), SimTime::from_secs(4))
        .crash(NodeId(1), SimTime::from_secs(5), SimTime::from_secs(6))
        .loss_rate(SimTime::from_secs(0), 0.05)
}

fn run_with(recorder: Recorder, seed: u64) -> RunResult {
    Experiment::new(Scheme::quorum(3, 2, 2))
        .workload(workload())
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(10),
        })
        .faults(faulty_schedule())
        .seed(seed)
        .horizon(SimTime::from_secs(15))
        .recorder(recorder)
        .run()
}

#[test]
fn same_seed_produces_byte_identical_jsonl() {
    let rec_a = Recorder::with_event_log();
    let rec_b = Recorder::with_event_log();
    run_with(rec_a.clone(), 42);
    run_with(rec_b.clone(), 42);

    let a = rec_a.export_jsonl();
    let b = rec_b.export_jsonl();
    assert!(!a.is_empty(), "the run recorded no events");
    assert_eq!(a, b, "same (config, seed) must export byte-identical JSONL");

    // A different seed must diverge (otherwise the assertion above is
    // vacuous — e.g. the recorder could be ignoring the run entirely).
    let rec_c = Recorder::with_event_log();
    run_with(rec_c.clone(), 43);
    assert_ne!(a, rec_c.export_jsonl(), "different seeds should differ");
}

#[test]
fn message_conservation_holds_under_faults() {
    let rec = Recorder::enabled();
    run_with(rec.clone(), 7);
    let report = rec.report();

    report.check_message_conservation().unwrap_or_else(|(sent, delivered, dropped)| {
        panic!("conservation violated: sent={sent} delivered={delivered} dropped={dropped}")
    });

    // The faulty schedule must actually have exercised every drop path,
    // otherwise this test passes trivially.
    assert!(report.counter(Counter::MessagesDropped) > 0, "no drops: faults did not bite");
    assert_eq!(report.counter(Counter::PartitionsStarted), 1);
    assert_eq!(report.counter(Counter::PartitionsHealed), 1);
    assert_eq!(report.counter(Counter::Crashes), 1);
    assert_eq!(report.counter(Counter::Recoveries), 1);
}

#[test]
fn conservation_holds_when_the_horizon_truncates_in_flight_messages() {
    // A horizon this short ends the run with messages still in the
    // network queue. Those must surface as `shutdown` drops, not vanish
    // (see docs/METRICS.md, `message_dropped.reason`).
    let rec = Recorder::enabled();
    Experiment::new(Scheme::quorum(3, 2, 2))
        .workload(workload())
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(10),
        })
        .seed(9)
        .horizon(SimTime::from_millis(25))
        .recorder(rec.clone())
        .run();
    let report = rec.report();

    assert!(report.counter(Counter::MessagesSent) > 0, "nothing was sent before the horizon");
    report.check_message_conservation().unwrap_or_else(|(sent, delivered, dropped)| {
        panic!(
            "in-flight messages at the horizon leaked: sent={sent} delivered={delivered} dropped={dropped}"
        )
    });
    assert!(
        report.counter(Counter::MessagesDropped) > 0,
        "expected shutdown drops: a 25 ms horizon with 1-10 ms latency should truncate in-flight messages"
    );
}

#[test]
fn per_node_counters_sum_to_global() {
    let rec = Recorder::enabled();
    run_with(rec.clone(), 11);
    let report = rec.report();

    for counter in [Counter::MessagesSent, Counter::MessagesDelivered, Counter::QuorumReads] {
        let global = report.counter(counter);
        let sum: u64 = report.per_node.iter().map(|nc| report.node_counter(nc.node, counter)).sum();
        assert_eq!(global, sum, "{:?}: per-node values must sum to the global", counter);
    }
}

#[test]
fn run_result_metrics_match_the_recorder() {
    let rec = Recorder::enabled();
    let res = run_with(rec.clone(), 3);
    assert_eq!(res.metrics, rec.report(), "RunResult.metrics must be the recorder's snapshot");
    assert!(res.metrics.counter(Counter::MessagesSent) > 0);
}

#[test]
fn span_conservation_holds_across_schemes_under_faults() {
    // Partition + plain crash + amnesia crash + loss: the regimes where
    // a coordinator's pending span would leak if abandonment ever
    // missed a path (amnesia wipes pending tables; demotions strand
    // Paxos proposals; the horizon truncates whatever is left).
    let nemesis = FaultSchedule::none()
        .partition(vec![NodeId(0)], SimTime::from_secs(2), SimTime::from_secs(4))
        .crash(NodeId(1), SimTime::from_secs(5), SimTime::from_secs(6))
        .crash_amnesia(NodeId(0), SimTime::from_secs(8), SimTime::from_secs(9))
        .loss_rate(SimTime::from_secs(0), 0.05);
    let schemes = vec![
        ("eventual", Scheme::eventual(3)),
        ("quorum", Scheme::quorum(3, 2, 2)),
        ("primary_sync", Scheme::PrimarySync { replicas: 3 }),
        ("paxos", Scheme::Paxos { nodes: 3 }),
        ("causal", Scheme::Causal { replicas: 3 }),
    ];
    for (label, scheme) in schemes {
        let rec = Recorder::with_event_log();
        Experiment::new(scheme)
            .workload(workload())
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(10),
            })
            .faults(nemesis.clone())
            .seed(5)
            .horizon(SimTime::from_secs(15))
            .recorder(rec.clone())
            .run();

        // Per-span accounting: every open has exactly one matching
        // close (an explicit `abandoned` close counts), parents exist,
        // ids are unique.
        let report = check_spans(&rec.events());
        assert!(report.ok(), "{label}: {report}");
        assert!(report.opened > 0, "{label}: run recorded no spans");

        // The aggregate counters must agree with the per-span walk.
        let metrics = rec.report();
        assert_eq!(metrics.counter(Counter::SpansOpened), report.opened, "{label}");
        assert_eq!(metrics.counter(Counter::SpansClosed), report.closed, "{label}");
        assert_eq!(metrics.counter(Counter::SpansAbandoned), report.abandoned, "{label}");
        assert!(report.abandoned <= report.closed, "{label}");
    }
}

/// Extract the names from the markdown table rows (`| \`name\` | ...`)
/// of the section starting at `heading`.
fn doc_table_names<'a>(doc: &'a str, heading: &str) -> Vec<&'a str> {
    let section = doc
        .split(heading)
        .nth(1)
        .unwrap_or_else(|| panic!("docs/METRICS.md lost its `{heading}` section"))
        .split("\n## ")
        .next()
        .unwrap();
    section
        .lines()
        .filter_map(|l| l.strip_prefix("| `"))
        .map(|l| l.split('`').next().unwrap())
        .collect()
}

#[test]
fn metrics_doc_lists_exactly_the_exported_counters() {
    let doc = include_str!("../docs/METRICS.md");
    let documented = doc_table_names(doc, "\n## Counters");
    let exported: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
    assert_eq!(
        documented, exported,
        "the counter table in docs/METRICS.md must list every counter \
         `Counter::name()` exports, in export order — update the doc"
    );
}

#[test]
fn metrics_doc_lists_exactly_the_exported_timeseries() {
    let doc = include_str!("../docs/METRICS.md");
    let documented = doc_table_names(doc, "\n## Time series");
    let exported: Vec<&str> = TsMetric::ALL.iter().map(|m| m.name()).collect();
    assert_eq!(
        documented, exported,
        "the time-series table in docs/METRICS.md must list every metric \
         `TsMetric::name()` exports, in export order — update the doc"
    );
}
