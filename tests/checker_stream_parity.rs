//! Differential batch-vs-stream verification.
//!
//! The streaming checkers (`consistency::stream`) promise *exact*
//! agreement with the materialized batch checkers when run unbounded:
//! same reports, byte for byte, on every scheme family, under faults.
//! This suite is that promise, held at integration scale:
//!
//! * every fuzz scheme family × two seeds under a crash-amnesia +
//!   partition nemesis, streaming reports serialized against batch
//!   reports — any byte of drift fails;
//! * the differential fuzz campaign (`rec_core::fuzz`) is `--jobs`
//!   invariant: the same cells judged on 1 worker and 4 workers must
//!   produce identical JSON, and every cell must agree with its batch
//!   oracle.

use rethinking_ec::consistency::{
    check_convergence, check_monotonic_values, check_session_guarantees, measure_staleness,
    StreamConfig, StreamVerifier,
};
use rethinking_ec::core::fuzz::{differential_campaign, FuzzScheme};
use rethinking_ec::core::Experiment;
use rethinking_ec::simnet::{Duration, FaultSchedule, LatencyModel, NodeId, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 8,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 5_000 },
        sessions: 3,
        ops_per_session: 25,
    }
}

/// The scheme_parity nemesis: one replica suffers crash-amnesia
/// mid-run, another is partitioned off for a window.
fn nemesis() -> FaultSchedule {
    FaultSchedule::none()
        .crash_amnesia(NodeId(1), SimTime::from_millis(800), SimTime::from_millis(1_400))
        .partition(vec![NodeId(0)], SimTime::from_secs(3), SimTime::from_secs(5))
}

/// Every scheme family × seed cell: the unbounded streaming checkers,
/// fed op-by-op while the simulation runs, must produce reports that
/// serialize byte-identically to the batch checkers' reports over the
/// finished trace — identical violation sets, not just verdicts.
#[test]
fn stream_reports_are_byte_identical_to_batch_for_every_scheme_family() {
    for fs in FuzzScheme::ALL {
        for seed in [11u64, 42] {
            let mut verifier = StreamVerifier::new(StreamConfig::default());
            let result = Experiment::new(fs.to_scheme())
                .workload(workload())
                .latency(LatencyModel::Uniform {
                    min: Duration::from_millis(1),
                    max: Duration::from_millis(8),
                })
                .faults(nemesis())
                .seed(seed)
                .horizon(SimTime::from_secs(20))
                .run_monitored(&mut |ops, _now| verifier.feed_slice(ops));
            let reports = verifier.finish();
            let grace = StreamConfig::default().grace;
            let batch = serde_json::to_string(&(
                check_session_guarantees(&result.trace),
                measure_staleness(&result.trace),
                check_monotonic_values(&result.trace),
                check_convergence(&result.trace, grace),
            ))
            .expect("batch reports serialize");
            let stream = serde_json::to_string(&(
                &reports.session,
                &reports.staleness,
                &reports.monotonic,
                &reports.convergence,
            ))
            .expect("stream reports serialize");
            assert_eq!(
                stream,
                batch,
                "{} seed {seed}: streaming reports diverged from the batch oracle",
                fs.label()
            );
            assert_eq!(reports.events_evicted, 0, "unbounded verifier must evict nothing");
        }
    }
}

/// The differential campaign judges every cell twice (batch and
/// stream); its result must be byte-identical for any worker count and
/// every cell must agree.
#[test]
fn differential_campaign_is_jobs_invariant_and_agrees() {
    let a = differential_campaign(&FuzzScheme::ALL, 2, 7, "medium", 1);
    let b = differential_campaign(&FuzzScheme::ALL, 2, 7, "medium", 4);
    let a_json = serde_json::to_string(&a).expect("campaign serializes");
    let b_json = serde_json::to_string(&b).expect("campaign serializes");
    assert_eq!(a_json, b_json, "differential campaign must be --jobs invariant");
    for cell in &a {
        assert!(
            cell.outcome.agree(),
            "{} seed {}: batch={:?} stream={:?} reports_match={}",
            cell.scheme.label(),
            cell.seed,
            cell.outcome.batch,
            cell.outcome.stream,
            cell.outcome.reports_match
        );
    }
    // The positive control must actually violate, or the differential
    // suite is only ever comparing clean runs.
    assert!(
        a.iter().any(|c| c.scheme.violation_expected()
            && c.outcome.batch != rethinking_ec::core::fuzz::Verdict::Pass),
        "partial quorum never violated: the nemesis lost its teeth"
    );
}
