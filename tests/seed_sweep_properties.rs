//! Property sweep: protocol guarantees hold across 100+ random seeds and
//! randomized fault schedules, not just the experiments' pet seeds.
//!
//! Each property runs its cells through [`rec_core::par_map`] — the same
//! work-stealing pool the grid runner uses — so this suite doubles as a
//! soak test of the parallel harness itself. Asserted invariants:
//!
//! * strict quorums (R+W>N) never serve a stale read in a fault-free run;
//! * causal sessions (sticky placement) never violate read-your-writes,
//!   even under random partitions and message loss;
//! * an eventual store converges after the fault horizon: once writes
//!   stop and the partition heals, all post-quiescence reads agree;
//! * per-cell message conservation: delivered + dropped never exceeds
//!   sent.

use rethinking_ec::consistency::{check_convergence, check_session_guarantees, measure_staleness};
use rethinking_ec::core::scheme::ClientPlacement;
use rethinking_ec::core::{default_jobs, par_map, Experiment, RecorderSpec, Scheme};
use rethinking_ec::obs::Counter;
use rethinking_ec::simnet::{Duration, FaultSchedule, LatencyModel, NodeId, SimRng, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

const SEEDS: u64 = 100;

fn sweep_workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 6,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 2_000 },
        sessions: 3,
        ops_per_session: 20,
    }
}

/// A randomized fault schedule drawn from the cell's own seed: one
/// partition cutting a random replica off for a random window inside
/// [1s, 9s], plus an optional lossy spell, everything healed well before
/// the 30s horizon.
fn random_faults(seed: u64, replicas: usize) -> FaultSchedule {
    let mut rng = SimRng::new(seed ^ 0xfa57_5eed);
    let victim = NodeId(rng.range(0, replicas as u64) as u32);
    let start_ms = rng.range(1_000, 5_000);
    let end_ms = start_ms + rng.range(500, 4_000);
    let mut faults = FaultSchedule::none().partition(
        vec![victim],
        SimTime::from_millis(start_ms),
        SimTime::from_millis(end_ms),
    );
    if rng.unit() < 0.5 {
        let p = rng.unit() * 0.2;
        let at = SimTime::from_millis(rng.range(1_000, 6_000));
        let heal = SimTime::from_millis(end_ms + 1_000);
        faults = faults.loss_rate(at, p).loss_rate(heal, 0.0);
    }
    faults
}

fn base(scheme: Scheme, seed: u64) -> Experiment {
    Experiment::new(scheme)
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
        })
        .workload(sweep_workload())
        .seed(seed)
        .recorder(RecorderSpec::Counters.make())
        .horizon(SimTime::from_secs(30))
}

/// The conservation identity from docs/METRICS.md: every sent message is
/// eventually delivered or dropped (in-flight messages at the horizon are
/// recorded as `shutdown` drops during simulator teardown, which happens
/// after the runner snapshots its own drop tally — hence `>=` there).
fn assert_message_conservation(res: &rethinking_ec::core::RunResult, seed: u64) {
    let sent = res.metrics.counter(Counter::MessagesSent);
    let delivered = res.metrics.counter(Counter::MessagesDelivered);
    let dropped = res.metrics.counter(Counter::MessagesDropped);
    assert_eq!(
        sent,
        delivered + dropped,
        "seed {seed}: conservation violated (sent != delivered {delivered} + dropped {dropped})"
    );
    assert_eq!(delivered, res.delivered_messages, "seed {seed}: delivered counter mismatch");
    assert!(dropped >= res.dropped_messages, "seed {seed}: recorder lost drops");
}

#[test]
fn strict_quorums_never_stale_without_faults() {
    let seeds: Vec<u64> = (0..SEEDS).map(|s| 0x1000 + s * 7).collect();
    let violations = par_map(&seeds, default_jobs(), |_, &seed| {
        let res = base(
            Scheme::Quorum {
                n: 3,
                r: 2,
                w: 2,
                read_repair: true,
                placement: ClientPlacement::Sticky,
            },
            seed,
        )
        .run();
        assert_message_conservation(&res, seed);
        let st = measure_staleness(&res.trace);
        (seed, st.stale_reads, st.fresh_reads + st.stale_reads)
    });
    for (seed, stale, classified) in &violations {
        assert_eq!(
            *stale, 0,
            "seed {seed}: R+W>N served {stale} stale reads (of {classified} classified)"
        );
    }
    // The property must not pass vacuously: the sweep classified reads.
    let classified: u64 = violations.iter().map(|(_, _, c)| c).sum();
    assert!(classified > SEEDS, "sweep produced almost no classifiable reads");
}

#[test]
fn causal_sessions_keep_read_your_writes_under_random_faults() {
    let seeds: Vec<u64> = (0..SEEDS).map(|s| 0x2000 + s * 13).collect();
    let reports = par_map(&seeds, default_jobs(), |_, &seed| {
        let res = base(Scheme::Causal { replicas: 3 }, seed).faults(random_faults(seed, 3)).run();
        assert_message_conservation(&res, seed);
        (seed, check_session_guarantees(&res.trace))
    });
    let mut checked = 0u64;
    for (seed, rep) in &reports {
        assert_eq!(
            rep.ryw_violations, 0,
            "seed {seed}: causal session violated read-your-writes \
             ({} of {} checks)",
            rep.ryw_violations, rep.ryw_checked
        );
        checked += rep.ryw_checked;
    }
    assert!(checked > SEEDS, "sweep exercised almost no RYW checks");
}

#[test]
fn eventual_store_converges_after_fault_horizon() {
    use rethinking_ec::replication::common::{Guarantees, ScriptOp};
    use rethinking_ec::replication::eventual::{
        ConflictMode, EventualClient, EventualConfig, EventualReplica, GossipConfig, TargetPolicy,
    };
    use rethinking_ec::simnet::{optrace, OpKind, Sim, SimConfig};

    const KEYS: u64 = 5;
    let seeds: Vec<u64> = (0..SEEDS).map(|s| 0x3000 + s * 17).collect();
    let outcomes = par_map(&seeds, default_jobs(), |_, &seed| {
        // Two writers hammer the same keys from opposite sides of a
        // random partition (guaranteed divergence while it holds); late
        // pollers at every replica read every key at t = 12s, after the
        // fault horizon (all faults heal by t = 10s).
        let trace = optrace::shared_trace();
        let cfg = EventualConfig {
            eager: true,
            gossip: Some(GossipConfig { interval: Duration::from_millis(50), fanout: 2 }),
            ..EventualConfig::default_lww(3)
        };
        let rec = RecorderSpec::Counters.make();
        let mut sim = Sim::new(
            SimConfig::default()
                .seed(seed)
                .latency(LatencyModel::Uniform {
                    min: Duration::from_millis(1),
                    max: Duration::from_millis(8),
                })
                .faults(random_faults(seed, 3))
                .recorder(rec.clone()),
        );
        for _ in 0..3 {
            sim.add_node(Box::new(EventualReplica::new(cfg.clone())));
        }
        for (session, home) in [(1u64, 0usize), (2, 1)] {
            let script: Vec<ScriptOp> = (0..30)
                .map(|i| ScriptOp { gap_us: 50_000, kind: OpKind::Write, key: i % KEYS })
                .collect();
            sim.add_node(Box::new(EventualClient::new(
                session,
                script,
                trace.clone(),
                3,
                TargetPolicy::Sticky(NodeId(home as u32)),
                Guarantees::none(),
                ConflictMode::Lww,
            )));
        }
        for (session, home) in [(10u64, 0usize), (11, 1), (12, 2)] {
            let script: Vec<ScriptOp> = (0..KEYS)
                .map(|k| ScriptOp { gap_us: 12_000_000, kind: OpKind::Read, key: k })
                .collect();
            sim.add_node(Box::new(EventualClient::new(
                session,
                script,
                trace.clone(),
                3,
                TargetPolicy::Sticky(NodeId(home as u32)),
                Guarantees::none(),
                ConflictMode::Lww,
            )));
        }
        sim.run_until(SimTime::from_secs(90));
        drop(sim); // flush in-flight messages into the drop tally
        let report = rec.report();
        let sent = report.counter(Counter::MessagesSent);
        let delivered = report.counter(Counter::MessagesDelivered);
        let dropped = report.counter(Counter::MessagesDropped);
        assert_eq!(sent, delivered + dropped, "seed {seed}: message conservation violated");
        let t = trace.borrow().clone();
        (seed, check_convergence(&t, Duration::from_secs(2)))
    });
    for (seed, rep) in &outcomes {
        let rep = rep.as_ref().expect("writers acked writes");
        assert!(
            rep.converged(),
            "seed {seed}: {} keys diverged after quiescence: {:?}",
            rep.diverged.len(),
            rep.diverged
        );
        assert_eq!(rep.converged_keys, KEYS, "seed {seed}: every key verified at all replicas");
    }
}
