//! Integration: legacy scheme names and their kernel compositions are the
//! same machine.
//!
//! `Scheme::normalize()` maps every legacy variant onto a
//! `replication::Composition` (update site × propagation × resolution ×
//! durability), and `Experiment::run` materializes *only* compositions.
//! This test is the parity proof the refactor hangs on: for each legacy
//! family — under faults, not just on a quiet network — running the
//! legacy `Scheme` and running `Scheme::composed(normalize().0)` must
//! yield byte-identical operation traces, JSONL event logs, and metrics
//! reports for the same seed. Any drift means the kernel decomposition
//! changed protocol behaviour rather than re-expressing it.
//!
//! The two genuinely new compositions (`mm+gossip+crdt`,
//! `mm+eager-acked`) have no legacy twin; for them the test pins
//! determinism (same seed → same bytes) and basic liveness instead.

use rethinking_ec::core::scheme::ClientPlacement;
use rethinking_ec::core::{Experiment, Scheme};
use rethinking_ec::obs::Recorder;
use rethinking_ec::replication::Composition;
use rethinking_ec::simnet::{Duration, FaultSchedule, LatencyModel, NodeId, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 8,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 5_000 },
        sessions: 3,
        ops_per_session: 25,
    }
}

/// A fault schedule that exercises recovery paths: one replica suffers
/// crash-amnesia mid-run, another is partitioned off for a window.
fn nemesis() -> FaultSchedule {
    FaultSchedule::none()
        .crash_amnesia(NodeId(1), SimTime::from_millis(800), SimTime::from_millis(1_400))
        .partition(vec![NodeId(0)], SimTime::from_secs(3), SimTime::from_secs(5))
}

/// Run a scheme to comparable bytes: `(op trace, metrics, event log)`.
fn run_bytes(scheme: Scheme, seed: u64) -> (String, String, String) {
    let recorder = Recorder::with_event_log();
    let result = Experiment::new(scheme)
        .workload(workload())
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
        })
        .faults(nemesis())
        .seed(seed)
        .horizon(SimTime::from_secs(20))
        .recorder(recorder.clone())
        .run();
    (
        serde_json::to_string(result.trace.records()).expect("trace serializes"),
        serde_json::to_string(&result.metrics).expect("metrics serialize"),
        recorder.export_jsonl(),
    )
}

/// Assert a legacy scheme and its normalized composition produce the
/// same bytes across two seeds.
fn assert_parity(legacy: Scheme) {
    let (comp, guarantees, placement) = legacy.normalize();
    let composed = Scheme::Composed { comp, guarantees, placement };
    for seed in [11, 42] {
        let a = run_bytes(legacy.clone(), seed);
        let b = run_bytes(composed.clone(), seed);
        assert_eq!(a.0, b.0, "{}: op trace differs from composition (seed {seed})", legacy.label());
        assert_eq!(a.1, b.1, "{}: metrics differ from composition (seed {seed})", legacy.label());
        assert_eq!(
            a.2,
            b.2,
            "{}: event log differs from composition (seed {seed})",
            legacy.label()
        );
    }
}

#[test]
fn eventual_matches_its_composition() {
    assert_parity(Scheme::eventual(3));
}

#[test]
fn quorum_matches_its_composition() {
    assert_parity(Scheme::Quorum {
        n: 3,
        r: 2,
        w: 2,
        read_repair: true,
        placement: ClientPlacement::Sticky,
    });
}

#[test]
fn sloppy_quorum_matches_its_composition() {
    assert_parity(Scheme::SloppyQuorum { n: 3, r: 2, w: 2, spares: 2 });
}

#[test]
fn primary_sync_matches_its_composition() {
    assert_parity(Scheme::PrimarySync { replicas: 3 });
}

#[test]
fn primary_async_failover_matches_its_composition() {
    assert_parity(Scheme::PrimaryAsyncFailover {
        replicas: 3,
        ship_interval: Duration::from_millis(50),
    });
}

#[test]
fn paxos_matches_its_composition() {
    assert_parity(Scheme::Paxos { nodes: 3 });
}

#[test]
fn causal_matches_its_composition() {
    assert_parity(Scheme::Causal { replicas: 3 });
}

#[test]
fn new_compositions_are_deterministic_and_live() {
    for comp in [Composition::mm_gossip_crdt(3), Composition::mm_eager_acked(3)] {
        let label = comp.label();
        let a = run_bytes(Scheme::composed(comp.clone()), 7);
        let b = run_bytes(Scheme::composed(comp), 7);
        assert_eq!(a, b, "{label}: same seed must replay byte-identically");
        assert!(a.0.contains("\"ok\":true"), "{label}: no operation ever succeeded");
    }
}
