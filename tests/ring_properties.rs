//! Property battery for the consistent-hashing ring (satellite of the
//! ring-sharding PR): ownership cardinality, minimal remapping on
//! membership change, join/leave/rejoin identity, and determinism of
//! preference lists — each over 100 random seeds.

use rethinking_ec::replication::sharded::Ring;
use rethinking_ec::simnet::{NodeId, SimRng};

const SEEDS: u64 = 100;
const KEYS: u64 = 512;

/// A random ring config drawn from a seed: 1–4 replication, enough
/// nodes to cover it, 1–32 vnodes.
fn random_ring(seed: u64) -> Ring {
    let mut rng = SimRng::new(seed ^ 0x71f6_0bee);
    let replication = 1 + rng.below(4) as usize;
    let nodes = replication + rng.below(20) as usize;
    let vnodes = 1 + rng.below(32) as usize;
    Ring::new(replication, vnodes, (0..nodes as u32).map(NodeId))
}

/// Random keys spread across the hash space (the ring hashes keys
/// itself, so raw integers are fine; draw them wide anyway).
fn random_keys(seed: u64) -> Vec<u64> {
    let mut rng = SimRng::new(seed ^ 0xd00d_cafe);
    (0..KEYS).map(|_| rng.below(u64::MAX)).collect()
}

#[test]
fn every_key_has_exactly_n_distinct_owners() {
    for seed in 0..SEEDS {
        let ring = random_ring(seed);
        let want = ring.replication().min(ring.len());
        for key in random_keys(seed) {
            let owners = ring.owners(key);
            assert_eq!(owners.len(), want, "seed {seed} key {key}: wrong owner count");
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), owners.len(), "seed {seed} key {key}: duplicate owner");
            for o in owners {
                assert!(ring.contains(o), "seed {seed}: owner {} not a member", o.0);
            }
        }
    }
}

#[test]
fn leave_only_remaps_keys_owned_by_the_departed_node() {
    for seed in 0..SEEDS {
        let ring = random_ring(seed);
        if ring.len() < 2 {
            continue;
        }
        let keys = random_keys(seed);
        let mut rng = SimRng::new(seed ^ 0x1eaf);
        let departing = NodeId(rng.index(ring.len()) as u32);
        let mut after = ring.clone();
        assert!(after.leave(departing));

        let mut remapped = 0u64;
        let mut owned_by_departed = 0u64;
        for &key in &keys {
            let before_owners = ring.owners(key);
            if before_owners.contains(&departing) {
                owned_by_departed += 1;
            }
            let after_owners = after.owners(key);
            if before_owners == after_owners {
                continue;
            }
            remapped += 1;
            // A key may only change owners if the departed node was one
            // of them (consistent hashing's minimal-disruption bound).
            assert!(
                before_owners.contains(&departing),
                "seed {seed} key {key}: remapped but node {} was not an owner",
                departing.0
            );
            // Surviving owners keep their copies: the change is additive.
            for o in before_owners.iter().filter(|&&o| o != departing) {
                assert!(
                    after_owners.contains(o),
                    "seed {seed} key {key}: surviving owner {} lost the key",
                    o.0
                );
            }
        }
        // The remap set is *exactly* the departed node's keys: losing an
        // owner always changes the list, and nothing else may change.
        assert_eq!(
            remapped, owned_by_departed,
            "seed {seed}: remapped keys must be exactly the departed node's keys"
        );
    }
}

#[test]
fn remap_volume_tracks_the_k_over_nodes_bound_with_enough_vnodes() {
    // With many vnodes per node the arcs even out and the departed
    // node's share of keys approaches replication/nodes — the classic
    // consistent-hashing ~K/nodes disruption bound.
    let ring = Ring::new(3, 64, (0..20).map(NodeId));
    let keys = random_keys(7);
    let mut after = ring.clone();
    assert!(after.leave(NodeId(4)));
    let remapped = keys.iter().filter(|&&k| ring.owners(k) != after.owners(k)).count();
    let expected = KEYS as f64 * 3.0 / 20.0;
    assert!(
        (remapped as f64) < 2.0 * expected,
        "{remapped} keys remapped, expected ~{expected:.0} (2x slack)"
    );
}

#[test]
fn join_leave_rejoin_restores_the_identical_ring() {
    for seed in 0..SEEDS {
        let ring = random_ring(seed);
        if ring.len() < 2 {
            continue;
        }
        let mut rng = SimRng::new(seed ^ 0x0707);
        let node = NodeId(rng.index(ring.len()) as u32);
        let mut churned = ring.clone();
        assert!(churned.leave(node));
        assert_ne!(churned, ring);
        assert!(churned.join(node));
        assert_eq!(churned, ring, "seed {seed}: leave+rejoin must be identity");

        // And a brand-new node joining then leaving is also identity.
        let newcomer = NodeId(ring.len() as u32 + 100);
        assert!(churned.join(newcomer));
        assert!(churned.leave(newcomer));
        assert_eq!(churned, ring, "seed {seed}: join+leave of a newcomer must be identity");
    }
}

#[test]
fn preference_lists_are_deterministic_and_order_independent() {
    for seed in 0..SEEDS {
        let ring = random_ring(seed);
        // Rebuild the same membership in a different insertion order:
        // the ring is a pure function of the member *set*.
        let mut members: Vec<NodeId> = ring.members().collect();
        members.reverse();
        let reordered = Ring::new(ring.replication(), ring.vnodes(), members);
        assert_eq!(reordered, ring, "seed {seed}: member order must not matter");
        for key in random_keys(seed).into_iter().take(64) {
            assert_eq!(
                ring.preference_list(key, ring.replication() + 2),
                reordered.preference_list(key, ring.replication() + 2),
                "seed {seed} key {key}: preference lists must be deterministic"
            );
        }
    }
}

#[test]
fn spares_extend_the_preference_list_without_overlap() {
    for seed in 0..SEEDS {
        let ring = random_ring(seed);
        for key in random_keys(seed).into_iter().take(64) {
            let owners = ring.owners(key);
            let spares = ring.spares(key, 2);
            for s in &spares {
                assert!(!owners.contains(s), "seed {seed} key {key}: spare {} is an owner", s.0);
            }
        }
    }
}
