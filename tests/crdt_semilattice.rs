//! Integration: the CRDT menagerie really forms join-semilattices, and
//! the kernel's `CrdtMerge` resolution layer agrees with direct merges.
//!
//! Each module in `crdt` carries its own targeted proptests; this suite
//! asserts the three semilattice laws — commutativity, associativity,
//! idempotence — uniformly across register, counter, set, map, and
//! sequence types from *replica histories* (states built by actors
//! applying operations, the only states a running system can reach).
//! Convergence of the replication layer reduces to exactly these laws,
//! so they are tested at the integration level where the kernel's
//! `ResolvingStore::apply` is also cross-checked against merging the
//! same CRDT states by hand.

use proptest::prelude::*;
use rethinking_ec::clocks::LamportClock;
use rethinking_ec::crdt::{
    CvRdt, GCounter, GSet, LwwRegister, MvRegister, OrMap, OrSet, PnCounter, Rga, TwoPSet,
};
use rethinking_ec::replication::kernel::resolution::{Item, ResolutionPolicy, ResolvingStore};
use rethinking_ec::simnet::NodeId;

/// Assert the three semilattice laws for three replica states.
fn assert_lattice_laws<T: CvRdt + PartialEq + std::fmt::Debug>(a: &T, b: &T, c: &T) {
    // Commutativity: a ∨ b = b ∨ a.
    assert_eq!(a.clone().merged(b), b.clone().merged(a), "merge must commute");
    // Associativity: (a ∨ b) ∨ c = a ∨ (b ∨ c).
    assert_eq!(
        a.clone().merged(b).merged(c),
        a.clone().merged(&b.clone().merged(c)),
        "merge must associate"
    );
    // Idempotence: a ∨ a = a.
    assert_eq!(a.clone().merged(a), *a, "merge must be idempotent");
    // Upper bound: merging the join back into either input is a no-op.
    let join = a.clone().merged(b);
    assert_eq!(join.clone().merged(a), join, "join must dominate both inputs");
}

/// Ops one replica performs: `(key-ish, amount, flag)` triples that each
/// builder interprets for its own type.
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u8, bool)>> {
    proptest::collection::vec((0u8..6, 1u8..9, proptest::bool::ANY), 0..10)
}

fn pn_counter(actor: u64, ops: &[(u8, u8, bool)]) -> PnCounter {
    let mut c = PnCounter::new();
    for &(_, n, add) in ops {
        if add {
            c.increment(actor, n as u64);
        } else {
            c.decrement(actor, n as u64);
        }
    }
    c
}

fn g_counter(actor: u64, ops: &[(u8, u8, bool)]) -> GCounter {
    let mut c = GCounter::new();
    for &(_, n, _) in ops {
        c.increment(actor, n as u64);
    }
    c
}

fn lww_register(actor: u64, ops: &[(u8, u8, bool)]) -> LwwRegister<u8> {
    let mut clock = LamportClock::new();
    let mut r = LwwRegister::new();
    for &(_, v, _) in ops {
        r.set(clock.tick(actor), v);
    }
    r
}

fn mv_register(actor: u64, ops: &[(u8, u8, bool)]) -> MvRegister<u8> {
    let mut r = MvRegister::new();
    for &(_, v, _) in ops {
        r.set(actor, v);
    }
    r
}

fn g_set(ops: &[(u8, u8, bool)]) -> GSet<u8> {
    let mut s = GSet::new();
    for &(k, _, _) in ops {
        s.insert(k);
    }
    s
}

fn two_p_set(ops: &[(u8, u8, bool)]) -> TwoPSet<u8> {
    let mut s = TwoPSet::new();
    for &(k, _, add) in ops {
        if add {
            s.insert(k);
        } else {
            s.remove(&k);
        }
    }
    s
}

fn or_set(actor: u64, ops: &[(u8, u8, bool)]) -> OrSet<u8> {
    let mut s = OrSet::new();
    for &(k, _, add) in ops {
        if add {
            s.insert(actor, k);
        } else {
            s.remove(&k);
        }
    }
    s
}

fn or_map(actor: u64, ops: &[(u8, u8, bool)]) -> OrMap<u8, PnCounter> {
    let mut m = OrMap::new();
    for &(k, n, add) in ops {
        if add {
            m.update(actor, k, |c: &mut PnCounter| c.increment(actor, n as u64));
        } else {
            m.remove(&k);
        }
    }
    m
}

fn rga(actor: u64, ops: &[(u8, u8, bool)]) -> Rga<u8> {
    let mut r = Rga::new();
    for &(_, v, add) in ops {
        if add || r.is_empty() {
            r.push(actor, v);
        } else {
            r.remove_at(0);
        }
    }
    r
}

proptest! {
    #[test]
    fn counters_are_semilattices(a in arb_ops(), b in arb_ops(), c in arb_ops()) {
        assert_lattice_laws(&pn_counter(0, &a), &pn_counter(1, &b), &pn_counter(2, &c));
        assert_lattice_laws(&g_counter(0, &a), &g_counter(1, &b), &g_counter(2, &c));
    }

    #[test]
    fn registers_are_semilattices(a in arb_ops(), b in arb_ops(), c in arb_ops()) {
        assert_lattice_laws(&lww_register(0, &a), &lww_register(1, &b), &lww_register(2, &c));
    }

    /// MvRegister keeps siblings in arrival order, so the laws hold up to
    /// *observable* state (the sibling value set), not struct equality.
    #[test]
    fn mv_register_is_a_semilattice_observably(a in arb_ops(), b in arb_ops(), c in arb_ops()) {
        fn canon(r: &MvRegister<u8>) -> Vec<u8> {
            let mut v: Vec<u8> = r.get().into_iter().copied().collect();
            v.sort_unstable();
            v
        }
        let (a, b, c) = (mv_register(0, &a), mv_register(1, &b), mv_register(2, &c));
        prop_assert_eq!(canon(&a.clone().merged(&b)), canon(&b.clone().merged(&a)));
        prop_assert_eq!(
            canon(&a.clone().merged(&b).merged(&c)),
            canon(&a.clone().merged(&b.clone().merged(&c)))
        );
        prop_assert_eq!(canon(&a.clone().merged(&a)), canon(&a));
    }

    #[test]
    fn sets_are_semilattices(a in arb_ops(), b in arb_ops(), c in arb_ops()) {
        assert_lattice_laws(&g_set(&a), &g_set(&b), &g_set(&c));
        assert_lattice_laws(&two_p_set(&a), &two_p_set(&b), &two_p_set(&c));
        assert_lattice_laws(&or_set(0, &a), &or_set(1, &b), &or_set(2, &c));
    }

    #[test]
    fn maps_are_semilattices(a in arb_ops(), b in arb_ops(), c in arb_ops()) {
        assert_lattice_laws(&or_map(0, &a), &or_map(1, &b), &or_map(2, &c));
    }

    #[test]
    fn rga_is_a_semilattice(a in arb_ops(), b in arb_ops(), c in arb_ops()) {
        assert_lattice_laws(&rga(0, &a), &rga(1, &b), &rga(2, &c));
    }

    /// The kernel's CrdtMerge store is the same machine as merging the
    /// counter states directly: apply the three replicas' states to a
    /// `ResolvingStore` in two different orders and compare both against
    /// the hand-merged `PnCounter`.
    #[test]
    fn kernel_crdt_merge_matches_direct_merge(a in arb_ops(), b in arb_ops(), c in arb_ops()) {
        let key = 7u64;
        let states = [pn_counter(0, &a), pn_counter(1, &b), pn_counter(2, &c)];

        let direct = states[0].clone().merged(&states[1]).merged(&states[2]);

        let mut clock = LamportClock::new();
        for order in [[0usize, 1, 2], [2, 0, 1]] {
            let mut store = ResolvingStore::new(ResolutionPolicy::CrdtMerge);
            for i in order {
                store.apply(vec![Item::Counter { key, state: states[i].clone() }], &mut clock);
            }
            prop_assert_eq!(store.counter_value(key).unwrap_or(0), direct.value());
        }
    }

    /// `write_local` under CrdtMerge is an increment by the written
    /// amount attributed to the writing node.
    #[test]
    fn kernel_crdt_write_local_is_an_increment(amounts in proptest::collection::vec(1u64..50, 1..8)) {
        let key = 3u64;
        let mut clock = LamportClock::new();
        let mut store = ResolvingStore::new(ResolutionPolicy::CrdtMerge);
        let mut expect = 0i64;
        for (i, &n) in amounts.iter().enumerate() {
            let me = NodeId((i % 3) as u32);
            store.write_local(
                me,
                key,
                n,
                (0, 0),
                &rethinking_ec::clocks::VersionVector::new(),
                0,
                &mut clock,
            );
            expect += n as i64;
        }
        prop_assert_eq!(store.counter_value(key), Some(expect));
    }
}
