//! Property tests: `Histogram::merge` is exact.
//!
//! The profiler (and every parallel grid aggregation before it) relies
//! on merge being a true monoid over histogram contents: merging
//! per-cell histograms in any order or grouping must equal recording
//! every observation serially into one histogram. These tests pin the
//! edges — empty identity, top-bucket saturation at `u64::MAX` — and
//! then check commutativity/associativity/serial-equivalence over
//! arbitrary values and arbitrary splits.

use proptest::prelude::*;
use rethinking_ec::obs::Histogram;

#[test]
fn empty_merge_empty_is_empty() {
    let mut a = Histogram::default();
    a.merge(&Histogram::default());
    assert_eq!(a, Histogram::default());
    let s = a.summary();
    assert_eq!((s.count, s.p50, s.p99, s.max), (0, 0, 0, 0));
    assert_eq!(a.sum(), 0);
}

#[test]
fn top_bucket_saturates_without_overflow() {
    // u64::MAX lands in the last bucket and would overflow any naive
    // sum; record() and merge() must both saturate instead.
    let mut a = Histogram::default();
    a.record(u64::MAX);
    a.record(u64::MAX);
    assert_eq!(a.sum(), u64::MAX, "sum must saturate, not wrap");
    assert_eq!(a.summary().max, u64::MAX);
    assert_eq!(a.quantile(1.0), u64::MAX);

    let b = a.clone();
    a.merge(&b);
    assert_eq!(a.count(), 4);
    assert_eq!(a.sum(), u64::MAX, "merged sums must saturate too");
    assert_eq!(a.quantile(0.5), u64::MAX);
}

/// Record a slice of values into a fresh histogram.
fn recorded(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_commutes_and_equals_serial_recording(
        values in proptest::collection::vec(any::<u64>(), 0..64),
        split in any::<usize>(),
    ) {
        let split = if values.is_empty() { 0 } else { split % (values.len() + 1) };
        let serial = recorded(&values);
        let a = recorded(&values[..split]);
        let b = recorded(&values[split..]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        prop_assert_eq!(&ab, &ba, "merge must commute");
        prop_assert_eq!(&ab, &serial, "merge must equal serial recording");
    }

    #[test]
    fn merge_is_associative_and_order_insensitive(
        values in proptest::collection::vec(any::<u64>(), 3..48),
        cut in (any::<usize>(), any::<usize>()),
        swap in proptest::bool::ANY,
    ) {
        // Two arbitrary cut points -> three chunks; regroup and reorder.
        let (x, y) = (cut.0 % (values.len() + 1), cut.1 % (values.len() + 1));
        let (lo, hi) = (x.min(y), x.max(y));
        let (a, b, c) = (recorded(&values[..lo]), recorded(&values[lo..hi]), recorded(&values[hi..]));

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must associate");

        // Any permutation of the chunks agrees with the serial record,
        // and a permuted serial record agrees as well: histogram
        // contents are order-free.
        let mut permuted = if swap { c.clone() } else { b.clone() };
        permuted.merge(&a);
        permuted.merge(if swap { &b } else { &c });
        let serial = recorded(&values);
        prop_assert_eq!(&permuted, &serial);

        let mut shuffled = values.clone();
        shuffled.reverse();
        prop_assert_eq!(&recorded(&shuffled), &serial, "record order must not matter");
    }
}
