//! Integration: the nemesis fuzzer is deterministic end to end, finds
//! the seeded known-violation (R+W<=N quorum), and shrinks it to a
//! minimal reproducer that replays byte-identically from its JSON.

use rethinking_ec::core::fuzz::{
    campaign, generate_case, run_case, shrink_case, FuzzScheme, Verdict, ViolationKind,
};
use rethinking_ec::simnet::nemesis::{self, IntensityProfile};

/// The whole campaign — schedules, verdicts, shrunk reproducers, JSON —
/// must not depend on the worker count (ISSUE 3 acceptance: `--jobs N`
/// byte-identical for any N).
#[test]
fn campaign_is_byte_identical_across_jobs() {
    let run = |jobs| campaign(&FuzzScheme::ALL, 6, 0, "medium", jobs, true);
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial, parallel);
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
        "campaign JSON must be byte-identical for any --jobs"
    );
    assert_eq!(serial.render(), parallel.render());
}

/// Same (scheme, seed, profile) twice — same generated schedule and the
/// same verdict, across independent campaign invocations.
#[test]
fn repeated_campaigns_agree() {
    let a = campaign(&[FuzzScheme::PartialQuorum], 8, 0, "heavy", 4, false);
    let b = campaign(&[FuzzScheme::PartialQuorum], 8, 0, "heavy", 4, false);
    assert_eq!(a, b);
}

/// The seeded known-violation: a partial quorum (N=3, R=1, W=1) must
/// produce stale reads under generated fault schedules, and the shrunk
/// reproducer must stay minimal (<= 8 compiled fault events) and replay
/// to the same violation after a JSON round trip.
#[test]
fn partial_quorum_violation_found_shrunk_and_replayed() {
    let profile = IntensityProfile::heavy();
    let mut found = None;
    for seed in 0..30u64 {
        let case = generate_case(FuzzScheme::PartialQuorum, seed, &profile);
        if let Verdict::Violation { kind, .. } = run_case(&case) {
            assert_eq!(kind, ViolationKind::StaleReads);
            found = Some(case);
            break;
        }
    }
    let case = found.expect("30 heavy schedules never broke an R+W<=N quorum");

    let shrunk = shrink_case(&case);
    assert!(shrunk.events.len() <= case.events.len());
    let verdict = run_case(&shrunk);
    assert!(
        matches!(verdict, Verdict::Violation { kind: ViolationKind::StaleReads, .. }),
        "shrunk case lost the violation: {verdict:?}"
    );
    let compiled = nemesis::to_schedule(&shrunk.events).compile();
    assert!(
        compiled.len() <= 8,
        "reproducer should be minimal: {} compiled fault events",
        compiled.len()
    );

    // JSON round trip replays byte-identically: same parsed case, same
    // re-encoding, same verdict.
    let json = serde_json::to_string(&shrunk).unwrap();
    let replayed: rethinking_ec::core::fuzz::FuzzCase = serde_json::from_str(&json).unwrap();
    assert_eq!(replayed, shrunk);
    assert_eq!(serde_json::to_string(&replayed).unwrap(), json);
    assert_eq!(run_case(&replayed), verdict);
}

/// Shrinking is deterministic: the same violating case always reduces
/// to the same minimal schedule.
#[test]
fn shrinking_is_deterministic() {
    let profile = IntensityProfile::heavy();
    for seed in 0..30u64 {
        let case = generate_case(FuzzScheme::PartialQuorum, seed, &profile);
        if run_case(&case) != Verdict::Pass {
            assert_eq!(shrink_case(&case), shrink_case(&case));
            return;
        }
    }
    panic!("no violating case found to shrink");
}

/// The guarantees that are supposed to survive the nemesis actually do,
/// on a fixed seed window (the same check CI runs at scale in release
/// mode). Any violation here comes with a shrunk reproducer in the
/// report, so the failure message is actionable.
#[test]
fn strong_schemes_hold_under_medium_nemesis() {
    let report = campaign(
        &[FuzzScheme::Paxos, FuzzScheme::MajorityQuorum, FuzzScheme::PrimarySync],
        4,
        0,
        "medium",
        4,
        true,
    );
    let unexpected = report.unexpected_violations();
    assert!(
        unexpected.is_empty(),
        "guarantees broke under the nemesis: {:?}",
        unexpected
            .iter()
            .map(|c| (c.scheme, c.seed, c.verdict, c.reproducer.clone()))
            .collect::<Vec<_>>()
    );
}
