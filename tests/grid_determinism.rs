//! Integration: the parallel grid runner is bit-for-bit deterministic.
//!
//! The same grid must produce byte-identical results whether it runs on
//! one worker or eight, and two parallel runs must agree with each other
//! (catching scheduling-order leaks, not just serial/parallel drift).
//! Compared artifacts: every cell's operation trace, its serialized
//! metrics report, and its exported JSONL event log — exactly what
//! `--trace-out` and the results JSON are built from.

use rethinking_ec::core::scheme::ClientPlacement;
use rethinking_ec::core::{CellResult, Experiment, Grid, RecorderSpec, Scheme};
use rethinking_ec::simnet::{Duration, FaultSchedule, LatencyModel, NodeId, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn small_workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 8,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 2_000 },
        sessions: 4,
        ops_per_session: 40,
    }
}

/// One variant per protocol family, including a faulty one — different
/// code paths, same determinism obligation.
fn mixed_grid() -> Grid {
    let mk = |scheme: Scheme| {
        Experiment::new(scheme)
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(8),
            })
            .workload(small_workload())
            .seed(11)
            .horizon(SimTime::from_secs(30))
    };
    let mut grid = Grid::new();
    for scheme in [
        Scheme::eventual(3),
        Scheme::Quorum { n: 3, r: 2, w: 2, read_repair: true, placement: ClientPlacement::Sticky },
        Scheme::Causal { replicas: 3 },
        Scheme::Paxos { nodes: 3 },
    ] {
        grid.push(scheme.label(), mk(scheme));
    }
    // A partitioned quorum variant: fault handling must be deterministic
    // too.
    let faults = FaultSchedule::none().partition(
        vec![NodeId(0)],
        SimTime::from_secs(5),
        SimTime::from_secs(10),
    );
    grid.push("quorum+partition".to_string(), mk(Scheme::quorum(3, 2, 2)).faults(faults));
    grid
}

/// Everything observable about a cell, rendered to comparable bytes.
fn fingerprint(cells: &[CellResult]) -> Vec<(String, u64, String, String, String)> {
    cells
        .iter()
        .map(|c| {
            (
                c.label.clone(),
                c.seed,
                serde_json::to_string(c.result.trace.records()).expect("trace serializes"),
                serde_json::to_string(&c.recorder.report()).expect("report serializes"),
                c.recorder.export_jsonl(),
            )
        })
        .collect()
}

#[test]
fn grid_results_identical_across_job_counts() {
    let serial = fingerprint(&mixed_grid().seeds(3).run(1, RecorderSpec::EventLog));
    let parallel = fingerprint(&mixed_grid().seeds(3).run(8, RecorderSpec::EventLog));
    assert_eq!(serial.len(), 15, "5 variants x 3 seeds");
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.0, p.0, "cell {i}: label");
        assert_eq!(s.1, p.1, "cell {i}: derived seed");
        assert_eq!(s.2, p.2, "cell {i} ({}): op trace differs serial vs parallel", s.0);
        assert_eq!(s.3, p.3, "cell {i} ({}): metrics report differs serial vs parallel", s.0);
        assert_eq!(s.4, p.4, "cell {i} ({}): JSONL event log differs serial vs parallel", s.0);
    }
}

#[test]
fn repeated_parallel_runs_are_identical() {
    // Two jobs=8 runs: catches results that depend on *which* worker ran
    // a cell or in what order cells finished, which a serial-vs-parallel
    // comparison can miss when the schedule happens to coincide.
    let a = fingerprint(&mixed_grid().seeds(2).run(8, RecorderSpec::EventLog));
    let b = fingerprint(&mixed_grid().seeds(2).run(8, RecorderSpec::EventLog));
    assert_eq!(a, b, "two parallel runs of the same grid disagree");
}

#[test]
fn oversubscribed_jobs_clamp_and_stay_deterministic() {
    // More workers than cells: the pool clamps, results stay in grid
    // order.
    let a = fingerprint(&mixed_grid().seeds(1).run(64, RecorderSpec::Counters));
    let b = fingerprint(&mixed_grid().seeds(1).run(1, RecorderSpec::Counters));
    assert_eq!(a, b);
}
