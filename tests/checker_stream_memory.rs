//! Flat-memory regression gate for the streaming checkers.
//!
//! `checkerbench --grow-check` (crates/bench/src/bin/checkerbench.rs)
//! re-executes itself at N and 10·N synthetic ops — the simbench
//! subprocess pattern, so `VmHWM` from `/proc/self/status` is a
//! per-run high-water mark — and fails if peak RSS grows by 10% or
//! more. A windowed `StreamVerifier` whose state is genuinely bounded
//! passes trivially; any accumulation that scales with trace length
//! (an unevicted map, a growing sample vector) fails the gate.

use std::process::Command;

#[test]
fn streaming_checker_memory_stays_flat_across_10x_trace_growth() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let build = Command::new(&cargo)
        .args(["build", "-p", "bench", "--bin", "checkerbench"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .status()
        .expect("spawn cargo build");
    assert!(build.success(), "checkerbench failed to build");

    // The test binary lives in target/<profile>/deps/; checkerbench was
    // just built into target/<profile>/.
    let exe = std::env::current_exe().expect("test exe path");
    let profile_dir =
        exe.parent().and_then(|p| p.parent()).expect("target profile dir").to_path_buf();
    let bin = profile_dir.join("checkerbench");
    assert!(bin.exists(), "{} missing after build", bin.display());

    let out = Command::new(&bin).arg("--grow-check").output().expect("run checkerbench");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "flat-memory gate failed:\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
    );
    assert!(stdout.contains("grow-check:"), "unexpected checkerbench output:\n{stdout}");
}
