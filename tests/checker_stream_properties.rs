//! Property tests for the streaming checkers on randomized synthetic
//! op traces, plus corpus regression.
//!
//! For 100 LCG-derived traces (deliberately anomalous: reads may
//! observe arbitrarily old versions, so staleness, session, and
//! monotonicity violations all occur naturally):
//!
//! * **unbounded = exact**: a windowless streaming run reproduces the
//!   batch reports field-for-field;
//! * **bounded = subset**: a windowed run never *invents* a violation —
//!   every flagged violation also appears in the unbounded run
//!   (eviction only drops floors and evidence, it cannot fabricate
//!   them), and violations whose evidence sits inside the watermark
//!   window are still caught;
//! * every checked-in fuzz reproducer in `tests/corpus/` still trips
//!   its streaming checker, in agreement with the batch verdict.

use rethinking_ec::consistency::{
    check_convergence, check_monotonic_values, check_session_guarantees, measure_staleness,
    StreamConfig, StreamVerifier, Watermark,
};
use rethinking_ec::simnet::{Duration, NodeId, OpKind, OpRecord, OpTrace, SimTime};

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// A randomized trace where reads observe a uniformly random *earlier*
/// write to their key — old versions included — so violations of every
/// streaming kind arise across the seed sweep.
fn synth_trace(seed: u64) -> OpTrace {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed | 1);
    let mut t = OpTrace::new();
    let mut history: Vec<Vec<(u64, (u64, u64))>> = vec![Vec::new(); 4];
    let mut now_ms = 0u64;
    for i in 0..60u64 {
        now_ms += 1 + lcg(&mut s) % 25;
        let session = lcg(&mut s) % 4;
        let key = lcg(&mut s) % 4;
        let write = lcg(&mut s).is_multiple_of(2);
        let rec = if write || history[key as usize].is_empty() {
            let value = i + 1;
            let stamp = (i + 1, session);
            history[key as usize].push((value, stamp));
            OpRecord {
                session,
                op_id: i,
                key,
                kind: OpKind::Write,
                value_written: Some(value),
                value_read: vec![],
                invoked: SimTime::from_millis(now_ms),
                completed: SimTime::from_millis(now_ms + 1),
                replica: NodeId((lcg(&mut s) % 3) as u32),
                ok: true,
                version_ts: None,
                stamp: Some(stamp),
            }
        } else {
            let hist = &history[key as usize];
            let (value, stamp) = hist[(lcg(&mut s) as usize) % hist.len()];
            OpRecord {
                session,
                op_id: i,
                key,
                kind: OpKind::Read,
                value_written: None,
                value_read: vec![value],
                invoked: SimTime::from_millis(now_ms),
                completed: SimTime::from_millis(now_ms + 1),
                replica: NodeId((lcg(&mut s) % 3) as u32),
                ok: true,
                version_ts: None,
                stamp: Some(stamp),
            }
        };
        t.push(rec);
    }
    t.sort_by_completion();
    t
}

/// A violation as an identity tuple, for set comparison.
fn key_of(v: &rethinking_ec::consistency::StreamViolation) -> (u8, u64, u64, u64, u64) {
    (v.kind as u8, v.session, v.op_id, v.key, v.t_us)
}

#[test]
fn unbounded_stream_is_exact_on_100_random_traces() {
    let grace = StreamConfig::default().grace;
    let mut total_violations = 0usize;
    for seed in 0..100u64 {
        let trace = synth_trace(seed);
        let mut v = StreamVerifier::new(StreamConfig::default());
        for r in trace.records() {
            v.feed(r);
        }
        let reports = v.finish();
        assert_eq!(reports.session, check_session_guarantees(&trace), "seed {seed}");
        assert_eq!(reports.staleness, measure_staleness(&trace), "seed {seed}");
        assert_eq!(reports.monotonic, check_monotonic_values(&trace), "seed {seed}");
        assert_eq!(reports.convergence, check_convergence(&trace, grace), "seed {seed}");
        total_violations += reports.violations.len();
    }
    // The sweep must actually exercise the checkers, not vacuously pass
    // on 100 clean traces.
    assert!(total_violations > 100, "sweep too clean: {total_violations} violations in 100 traces");
}

#[test]
fn bounded_window_never_invents_violations_on_100_random_traces() {
    let window = Duration::from_millis(120);
    let mut evicted_somewhere = false;
    for seed in 0..100u64 {
        let trace = synth_trace(seed);
        let mut exact = StreamVerifier::new(StreamConfig::default());
        for r in trace.records() {
            exact.feed(r);
        }
        let exact = exact.finish();
        let exact_set: std::collections::BTreeSet<_> =
            exact.violations.iter().map(key_of).collect();

        let mut bounded =
            StreamVerifier::new(StreamConfig { window: Some(window), ..StreamConfig::default() });
        for r in trace.records() {
            bounded.feed(r);
            bounded.advance(Watermark::at(r.completed));
        }
        let bounded = bounded.finish();
        evicted_somewhere |= bounded.events_evicted > 0;
        for v in &bounded.violations {
            assert!(
                exact_set.contains(&key_of(v)),
                "seed {seed}: bounded run invented {v:?} — eviction caused a false verdict"
            );
        }
        // Violations whose evidence sits inside the watermark window
        // are still caught: a stale read observes a version and the
        // fresher write it missed; if both fall within `window` of the
        // read, eviction cannot have dropped the evidence.
        let windowed_staleness: Vec<_> = exact
            .violations
            .iter()
            .filter(|v| {
                v.kind == rethinking_ec::consistency::ViolationKind::StaleRead
                    && v.t_us <= window.as_micros()
            })
            .collect();
        let bounded_set: std::collections::BTreeSet<_> =
            bounded.violations.iter().map(key_of).collect();
        for v in windowed_staleness {
            assert!(
                bounded_set.contains(&key_of(v)),
                "seed {seed}: in-window violation {v:?} was missed by the bounded run"
            );
        }
        assert!(
            bounded.session.ryw_violations <= exact.session.ryw_violations
                && bounded.staleness.stale_reads <= exact.staleness.stale_reads
                && bounded.monotonic.violations <= exact.monotonic.violations,
            "seed {seed}: bounded counts exceeded exact counts"
        );
    }
    assert!(evicted_somewhere, "window never evicted: the bounded property was not exercised");
}

/// Every checked-in fuzz reproducer must still trip its *streaming*
/// checker, and the streaming verdict must agree with the batch verdict
/// it was shrunk against.
#[test]
fn corpus_reproducers_still_trip_the_streaming_checkers() {
    use rethinking_ec::core::fuzz::{run_case_differential, FuzzCase, Verdict};
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let json = std::fs::read_to_string(&path).expect("corpus file reads");
        let case: FuzzCase = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("{} is not a FuzzCase: {e}", path.display()));
        let outcome = run_case_differential(&case);
        assert!(outcome.agree(), "{}: stream diverged from batch: {outcome:?}", path.display());
        assert_ne!(
            outcome.stream,
            Verdict::Pass,
            "{}: reproducer no longer trips the streaming checker",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 3, "corpus shrank to {checked} reproducers");
}
