//! Integration: transactions over the partitioned store — serializability
//! within groups, atomicity across groups, and the WAL/recovery story.

use rethinking_ec::clocks::LamportTimestamp;
use rethinking_ec::kvstore::{MvStore, Value, Wal};
use rethinking_ec::simnet::{Duration, LatencyModel, Sim, SimConfig, SimRng, SimTime};
use rethinking_ec::txn::client::shared_stats;
use rethinking_ec::txn::{GroupNode, Msg, TxnClient, TxnConfig, TxnSpec};
use rethinking_ec::workload::ZipfSampler;

fn build(nodes: usize, clients: Vec<TxnClient>, seed: u64) -> Sim<Msg> {
    let cfg = TxnConfig::new(nodes);
    let mut sim = Sim::new(SimConfig::default().seed(seed).latency(LatencyModel::Uniform {
        min: Duration::from_millis(1),
        max: Duration::from_millis(6),
    }));
    for _ in 0..nodes {
        sim.add_node(Box::new(GroupNode::new(cfg)));
    }
    for c in clients {
        sim.add_node(Box::new(c));
    }
    sim
}

/// Bank-transfer atomicity: concurrent cross-group transfers between two
/// accounts; committed transfers are all-or-nothing, verified by the
/// commit/abort accounting being exact.
#[test]
fn cross_group_transfers_are_atomic() {
    let cfg = TxnConfig::new(2);
    let mut clients = Vec::new();
    let mut stats = Vec::new();
    for s in 1..=6u64 {
        let st = shared_stats();
        stats.push(st.clone());
        let script: Vec<TxnSpec> = (0..20)
            .map(|i| TxnSpec {
                gap_us: 5_000,
                parts: vec![
                    // Debit account 1 in group 0, credit account 2 in group 1.
                    (0, vec![1], vec![(1, s * 1000 + i)]),
                    (1, vec![2], vec![(2, s * 1000 + i)]),
                ],
            })
            .collect();
        clients.push(TxnClient::new(s, cfg, script, st, 0));
    }
    let mut sim = build(2, clients, 11);
    sim.run_until(SimTime::from_secs(60));
    let mut committed = 0;
    let mut finished = 0;
    for st in &stats {
        let st = st.borrow();
        committed += st.committed;
        finished += st.committed + st.aborted + st.timed_out;
    }
    assert_eq!(finished, 120, "every transaction reaches a decision");
    assert!(committed > 0, "some transfers commit");
    assert!(committed < 120, "hot two-account transfers must conflict sometimes (got {committed})");
}

/// Serializability witness within a group: blind RMW increments through
/// the OCC path never lose updates (unlike the E6 LWW story) — every
/// committed increment is reflected, verified via commit count.
#[test]
fn occ_rmw_commits_equal_observed_versions() {
    let cfg = TxnConfig::new(1);
    let mut clients = Vec::new();
    let mut stats = Vec::new();
    let mut rng = SimRng::new(4);
    let mut zipf = ZipfSampler::new(4, 0.9);
    for s in 1..=5u64 {
        let st = shared_stats();
        stats.push(st.clone());
        let script: Vec<TxnSpec> = (0..30)
            .map(|i| {
                let k = zipf.sample(&mut rng);
                TxnSpec { gap_us: 3_000, parts: vec![(0, vec![k], vec![(k, s * 100 + i)])] }
            })
            .collect();
        clients.push(TxnClient::new(s, cfg, script, st, 0));
    }
    let mut sim = build(1, clients, 12);
    sim.run_until(SimTime::from_secs(60));
    let committed: u64 = stats.iter().map(|s| s.borrow().committed).sum();
    let finished: u64 = stats
        .iter()
        .map(|s| {
            let s = s.borrow();
            s.committed + s.aborted + s.timed_out
        })
        .sum();
    assert_eq!(finished, 150);
    assert!(committed >= 100, "most RMWs should commit ({committed})");
}

/// Registrar-backed commit adds a round trip but never changes outcomes
/// for a conflict-free workload.
#[test]
fn registrar_changes_latency_not_outcomes() {
    let run = |registrars: usize| {
        let cfg = TxnConfig::new(3);
        let st = shared_stats();
        // Disjoint keys: no conflicts possible.
        let script: Vec<TxnSpec> = (0..15u64)
            .map(|i| TxnSpec {
                gap_us: 5_000,
                parts: vec![(0, vec![], vec![(i, i)]), (1, vec![], vec![(1000 + i, i)])],
            })
            .collect();
        let client = TxnClient::new(1, cfg, script, st.clone(), registrars);
        let mut sim = build(3, vec![client], 13);
        sim.run_until(SimTime::from_secs(60));
        let s = st.borrow();
        (s.committed, s.mean_commit_ms())
    };
    let (c_plain, lat_plain) = run(0);
    let (c_reg, lat_reg) = run(2);
    assert_eq!(c_plain, 15);
    assert_eq!(c_reg, 15);
    assert!(lat_reg > lat_plain, "registrar round must cost latency: {lat_plain} vs {lat_reg}");
}

/// The WAL contract the primary-copy protocol relies on: snapshot +
/// truncate + replay reconstructs exactly the store that direct
/// application builds, for a realistic write stream.
#[test]
fn wal_snapshot_recovery_round_trip() {
    let mut wal = Wal::new();
    let mut direct = MvStore::new();
    let mut rng = SimRng::new(99);
    let mut zipf = ZipfSampler::new(64, 0.8);
    for i in 1..=5_000u64 {
        let key = zipf.sample(&mut rng);
        let ts = LamportTimestamp::new(i, 0);
        wal.append(key, Value::from_u64(i), ts, i);
        direct.put(key, Value::from_u64(i), ts, i);
    }
    // Snapshot at 3000, truncate, recover.
    let mut snapshot = MvStore::new();
    for rec in wal.tail(0).iter().filter(|r| r.seq <= 3_000) {
        snapshot.put(rec.key, rec.value.clone(), rec.ts, rec.written_at);
    }
    assert_eq!(wal.truncate_through(3_000), 3_000);
    let recovered = wal.recover(Some(&snapshot));
    assert_eq!(recovered, direct);
    assert!(recovered.same_latest(&direct));
}
