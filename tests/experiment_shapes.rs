//! Integration: miniature versions of the E1–E10 experiments asserting
//! the *shapes* EXPERIMENTS.md records (who wins, what grows with what).
//! If one of these fails, the experiment write-up is stale.

use rethinking_ec::consistency::measure_staleness;
use rethinking_ec::core::metrics::latency_summary;
use rethinking_ec::core::scheme::ClientPlacement;
use rethinking_ec::core::{Experiment, Scheme};
use rethinking_ec::simnet::{Duration, LatencyModel, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn pbs_workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 5,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 500 },
        sessions: 10,
        ops_per_session: 100,
    }
}

fn heavy_tail() -> LatencyModel {
    LatencyModel::LogNormal { median: Duration::from_millis(3), sigma: 1.2 }
}

/// E1 shape: staleness decreases as R (or W) grows; zero when R+W>N.
#[test]
fn e1_shape_staleness_monotone_in_quorum_size() {
    let p_stale = |r: usize, w: usize| {
        let res = Experiment::new(Scheme::Quorum {
            n: 3,
            r,
            w,
            read_repair: false,
            placement: ClientPlacement::Random,
        })
        .workload(pbs_workload())
        .latency(heavy_tail())
        .seed(42)
        .horizon(SimTime::from_secs(300))
        .run();
        measure_staleness(&res.trace).p_stale()
    };
    let p11 = p_stale(1, 1);
    let p21 = p_stale(2, 1);
    let p22 = p_stale(2, 2);
    assert!(p11 > 0.0, "R=W=1 must be stale sometimes");
    assert!(p11 >= p21, "raising R cannot increase staleness: {p11} vs {p21}");
    assert_eq!(p22, 0.0, "intersecting quorums read fresh");
}

/// E2 shape: in a geo deployment, local-read schemes beat quorum reads by
/// an order of magnitude; Paxos writes cost at least a WAN majority trip.
#[test]
fn e2_shape_geo_latency_ordering() {
    let workload = WorkloadSpec {
        keys: 20,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 30_000 },
        sessions: 5,
        ops_per_session: 40,
    };
    let read_p50 = |scheme: Scheme| {
        let res = Experiment::new(scheme)
            .workload(workload.clone())
            .latency(LatencyModel::geo_five_regions(5))
            .seed(9)
            .horizon(SimTime::from_secs(300))
            .run();
        latency_summary(&res.trace).reads.p50
    };
    let eventual = read_p50(Scheme::eventual(5));
    let quorum = read_p50(Scheme::quorum(5, 3, 3));
    let paxos = read_p50(Scheme::Paxos { nodes: 5 });
    assert!(
        eventual * 10.0 < quorum,
        "local reads must be >=10x faster than WAN quorum reads: {eventual} vs {quorum}"
    );
    assert!(paxos > 50.0, "paxos reads pay a WAN majority commit: {paxos}ms");
}

/// E9 shape: staleness probability grows monotonically with shipping lag.
#[test]
fn e9_shape_staleness_grows_with_lag() {
    let workload = WorkloadSpec {
        keys: 10,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 10_000 },
        sessions: 6,
        ops_per_session: 80,
    };
    let p = |lag: u64| {
        let res = Experiment::new(Scheme::PrimaryAsync {
            replicas: 3,
            ship_interval: Duration::from_millis(lag),
        })
        .workload(workload.clone())
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(5),
        })
        .seed(13)
        .horizon(SimTime::from_secs(120))
        .run();
        measure_staleness(&res.trace).p_stale()
    };
    let p10 = p(10);
    let p100 = p(100);
    let p400 = p(400);
    assert!(p10 < p100 && p100 < p400, "{p10} < {p100} < {p400} expected");
}

/// E10 shape: async writes ack in ~1 RTT; sync/quorum/paxos pay ~2 RTT.
#[test]
fn e10_shape_synchrony_costs_round_trips() {
    let workload = WorkloadSpec {
        keys: 50,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::write_only(),
        arrival: Arrival::Closed { think_us: 1_000 },
        sessions: 4,
        ops_per_session: 60,
    };
    let write_p50 = |scheme: Scheme| {
        let res = Experiment::new(scheme)
            .workload(workload.clone())
            .latency(LatencyModel::Constant(Duration::from_millis(5)))
            .seed(3)
            .horizon(SimTime::from_secs(120))
            .run();
        latency_summary(&res.trace).writes.p50
    };
    let asynchronous =
        write_p50(Scheme::PrimaryAsync { replicas: 3, ship_interval: Duration::from_millis(50) });
    let sync = write_p50(Scheme::PrimarySync { replicas: 3 });
    let quorum = write_p50(Scheme::quorum(3, 2, 2));
    // 1 RTT = 10ms; 2 RTT = 20ms.
    assert!((9.0..12.0).contains(&asynchronous), "async ~1 RTT, got {asynchronous}");
    assert!(sync >= 19.0, "sync >= 2 RTT, got {sync}");
    assert!(quorum >= 19.0, "majority quorum >= 2 RTT, got {quorum}");
}

/// E6 shape (protocol level): CRDT counters lose nothing; LWW RMW loses
/// under concurrency. (The data-type-level law is in the crdt crate; this
/// exercises the full replication stack.)
#[test]
fn e6_shape_crdt_counters_lose_nothing() {
    use rethinking_ec::replication::common::{ClientCore, Guarantees, ScriptOp};
    use rethinking_ec::replication::eventual::{
        ConflictMode, EventualClient, EventualConfig, EventualReplica, GossipConfig, TargetPolicy,
    };
    use rethinking_ec::simnet::{optrace, NodeId, OpKind, Sim, SimConfig};

    let trace = optrace::shared_trace();
    let cfg = EventualConfig {
        eager: true,
        gossip: Some(GossipConfig { interval: Duration::from_millis(10), fanout: 2 }),
        mode: ConflictMode::Counter,
        ..EventualConfig::default_lww(3)
    };
    let mut sim = Sim::new(SimConfig::default().seed(6).latency(LatencyModel::Uniform {
        min: Duration::from_millis(1),
        max: Duration::from_millis(15),
    }));
    for _ in 0..3 {
        sim.add_node(Box::new(EventualReplica::new(cfg.clone())));
    }
    let mut expected: u64 = 0;
    for s in 1..=4u64 {
        let script: Vec<ScriptOp> =
            (0..10).map(|_| ScriptOp { gap_us: 1_000, kind: OpKind::Write, key: 0 }).collect();
        for op in 1..=10u64 {
            expected += ClientCore::unique_value(s, op);
        }
        sim.add_node(Box::new(EventualClient::new(
            s,
            script,
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId((s as u32 - 1) % 3)),
            Guarantees::none(),
            ConflictMode::Counter,
        )));
    }
    // Late readers at every replica agree on the exact total.
    for (s, home) in [(10u64, 0usize), (11, 1), (12, 2)] {
        sim.add_node(Box::new(EventualClient::new(
            s,
            vec![ScriptOp { gap_us: 2_000_000, kind: OpKind::Read, key: 0 }],
            trace.clone(),
            3,
            TargetPolicy::Sticky(NodeId(home as u32)),
            Guarantees::none(),
            ConflictMode::Counter,
        )));
    }
    sim.run_until(SimTime::from_secs(10));
    let t = trace.borrow();
    for s in [10u64, 11, 12] {
        let read = t
            .records()
            .iter()
            .find(|r| r.session == s && r.ok)
            .unwrap_or_else(|| panic!("reader {s} completed"));
        assert_eq!(read.value_read, vec![expected], "replica behind reader {s} lost increments");
    }
}
