//! Integration: a one-shard ring is the unsharded quorum machine.
//!
//! With `nodes = N` physical nodes, one vnode each, and a preference
//! list of size `N`, every node owns every key — the ring's `homes()`
//! set is `0..N` in ascending order, exactly the classic quorum layout.
//! Running `Scheme::Sharded` in that degenerate configuration must
//! produce byte-identical operation traces, metrics reports, and JSONL
//! event logs to the equivalent unsharded `Scheme::Quorum` — under an
//! amnesia-crash + partition nemesis, not just on a quiet network. Any
//! drift means the ring layer changed protocol behaviour rather than
//! generalizing key placement.

use rethinking_ec::core::scheme::{ChurnPlan, ClientPlacement};
use rethinking_ec::core::{Experiment, Scheme};
use rethinking_ec::obs::Recorder;
use rethinking_ec::replication::Composition;
use rethinking_ec::simnet::{Duration, FaultSchedule, LatencyModel, NodeId, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 8,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 5_000 },
        sessions: 3,
        ops_per_session: 25,
    }
}

/// The scheme-parity nemesis: one replica suffers crash-amnesia
/// mid-run, another is partitioned off for a window.
fn nemesis() -> FaultSchedule {
    FaultSchedule::none()
        .crash_amnesia(NodeId(1), SimTime::from_millis(800), SimTime::from_millis(1_400))
        .partition(vec![NodeId(0)], SimTime::from_secs(3), SimTime::from_secs(5))
}

/// Run a scheme to comparable bytes: `(op trace, metrics, event log)`.
fn run_bytes(scheme: Scheme, seed: u64) -> (String, String, String) {
    let recorder = Recorder::with_event_log();
    let result = Experiment::new(scheme)
        .workload(workload())
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
        })
        .faults(nemesis())
        .seed(seed)
        .horizon(SimTime::from_secs(20))
        .recorder(recorder.clone())
        .run();
    (
        serde_json::to_string(result.trace.records()).expect("trace serializes"),
        serde_json::to_string(&result.metrics).expect("metrics serialize"),
        recorder.export_jsonl(),
    )
}

#[test]
fn one_shard_ring_is_byte_identical_to_unsharded_quorum() {
    let n = 3;
    let unsharded =
        Scheme::Quorum { n, r: 2, w: 2, read_repair: true, placement: ClientPlacement::Sticky };
    let ring = Scheme::Sharded {
        inner: Composition::quorum(n, 2, 2, true, 0),
        nodes: n,
        vnodes: 1,
        churn: ChurnPlan::none(),
    };
    for seed in [11, 42] {
        let a = run_bytes(unsharded.clone(), seed);
        let b = run_bytes(ring.clone(), seed);
        assert_eq!(a.0, b.0, "op trace differs from unsharded quorum (seed {seed})");
        assert_eq!(a.1, b.1, "metrics differ from unsharded quorum (seed {seed})");
        assert_eq!(a.2, b.2, "event log differs from unsharded quorum (seed {seed})");
    }
}

#[test]
fn real_ring_runs_are_deterministic_under_churn() {
    // A genuinely sharded deployment (more nodes than the preference
    // list, many vnodes, rolling churn) has no unsharded twin; pin
    // byte-determinism and liveness instead.
    let scheme = Scheme::Sharded {
        inner: Composition::quorum(3, 2, 2, true, 2),
        nodes: 8,
        vnodes: 16,
        churn: ChurnPlan::rolling(8, Duration::from_secs(4), 3, SimTime::from_secs(2)),
    };
    let a = run_bytes(scheme.clone(), 7);
    let b = run_bytes(scheme, 7);
    assert_eq!(a, b, "same seed must replay byte-identically");
    assert!(a.0.contains("\"ok\":true"), "no operation ever succeeded");
    assert!(a.2.contains("membership_change"), "churn events must appear in the event log");
}
