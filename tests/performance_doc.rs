//! Doc-drift guards for the performance contract (docs/PERFORMANCE.md),
//! in the style of the METRICS.md tests in `tests/observability.rs`:
//! the checked-in `BENCH_simnet.json` must match the schema the doc
//! documents, field for field, and the user-facing docs must reference
//! `simbench` with flags the binary actually accepts.

const DOC: &str = include_str!("../docs/PERFORMANCE.md");
const BENCH: &str = include_str!("../BENCH_simnet.json");

/// Extract the names from the markdown table rows (`| \`name\` | ...`)
/// of the section starting at `heading`.
fn doc_table_names<'a>(doc: &'a str, heading: &str) -> Vec<&'a str> {
    let section = doc
        .split(heading)
        .nth(1)
        .unwrap_or_else(|| panic!("docs/PERFORMANCE.md lost its `{heading}` section"))
        .split("\n## ")
        .next()
        .unwrap();
    section
        .lines()
        .filter_map(|l| l.strip_prefix("| `"))
        .map(|l| l.split('`').next().unwrap())
        .collect()
}

/// Keys of a JSON object, in document order.
fn object_keys(v: &serde::Value) -> Vec<&str> {
    v.as_object().expect("expected a JSON object").iter().map(|(k, _)| k.as_str()).collect()
}

#[test]
fn bench_document_matches_the_documented_top_level_schema() {
    let doc = serde_json::parse_value(BENCH).expect("BENCH_simnet.json parses");
    let documented = doc_table_names(DOC, "\n## Document schema");
    assert_eq!(
        object_keys(&doc),
        documented,
        "BENCH_simnet.json top-level fields must match the `Document schema` \
         table in docs/PERFORMANCE.md, in order — update whichever drifted"
    );
    assert_eq!(doc.get("tool").and_then(|t| t.as_str()), Some("simbench"));
    assert_eq!(doc.get("mode").and_then(|m| m.as_str()), Some("full"));
}

#[test]
fn bench_rows_match_the_documented_row_schema() {
    let doc = serde_json::parse_value(BENCH).expect("BENCH_simnet.json parses");
    let documented = doc_table_names(DOC, "\n## Row schema");
    let configs = doc.get("configs").and_then(|c| c.as_array()).expect("configs array");
    assert!(!configs.is_empty(), "BENCH_simnet.json has no config rows");
    for row in configs {
        assert_eq!(
            object_keys(row),
            documented,
            "every row of BENCH_simnet.json must match the `Row schema` table \
             in docs/PERFORMANCE.md, in order — update whichever drifted"
        );
    }
}

/// The acceptance bar the checked-in baseline must keep clearing: both
/// queue backends present, and at least two large-topology (>=1024
/// node) configurations at >=3x over the heap.
#[test]
fn checked_in_baseline_shows_the_wheel_speedup() {
    let doc = serde_json::parse_value(BENCH).expect("BENCH_simnet.json parses");
    let configs = doc.get("configs").and_then(|c| c.as_array()).expect("configs array");
    let wheel_rows =
        configs.iter().filter(|r| r.get("queue").and_then(|q| q.as_str()) == Some("wheel")).count();
    let heap_rows = configs.len() - wheel_rows;
    assert_eq!(wheel_rows, heap_rows, "every config must have a heap and a wheel row");
    let big_and_fast = configs
        .iter()
        .filter(|r| {
            r.get("nodes").and_then(|n| n.as_u64()).unwrap_or(0) >= 1024
                && r.get("queue").and_then(|q| q.as_str()) == Some("wheel")
                && r.get("speedup_vs_heap").and_then(|s| s.as_f64()).unwrap_or(0.0) >= 3.0
        })
        .count();
    assert!(
        big_and_fast >= 2,
        "baseline must keep >=2 large-topology configs at >=3x over the heap \
         (found {big_and_fast}) — regenerate with `cargo run --release --bin simbench`"
    );
}

#[test]
fn baseline_event_counts_are_backend_independent() {
    let doc = serde_json::parse_value(BENCH).expect("BENCH_simnet.json parses");
    let configs = doc.get("configs").and_then(|c| c.as_array()).expect("configs array");
    for pair in configs.chunks(2) {
        let [heap, wheel] = pair else { panic!("odd number of rows") };
        assert_eq!(
            heap.get("name").and_then(|n| n.as_str()),
            wheel.get("name").and_then(|n| n.as_str()),
            "rows must come in heap/wheel pairs per config"
        );
        assert_eq!(
            heap.get("events").and_then(|e| e.as_u64()),
            wheel.get("events").and_then(|e| e.as_u64()),
            "virtual event counts are machine-independent and must match \
             across backends for {:?} — a mismatch means determinism broke",
            heap.get("name")
        );
    }
}

/// README and EXPERIMENTS.md must point at simbench with flags the
/// binary really accepts (the flag list lives in `parse_args` in
/// `crates/bench/src/bin/simbench.rs` and the table in PERFORMANCE.md).
#[test]
fn user_docs_reference_simbench_with_real_flags() {
    let readme = include_str!("../README.md");
    let experiments = include_str!("../EXPERIMENTS.md");
    for (name, doc) in [("README.md", readme), ("EXPERIMENTS.md", experiments)] {
        assert!(doc.contains("simbench"), "{name} must mention the simbench harness");
    }
    for flag in ["--smoke", "--check", "--determinism-check", "--out"] {
        assert!(
            experiments.contains(flag),
            "EXPERIMENTS.md must document simbench's `{flag}` flag"
        );
        assert!(DOC.contains(flag), "docs/PERFORMANCE.md must document simbench's `{flag}` flag");
    }
}

/// The simbench source must actually accept every flag the docs
/// advertise — the reverse direction of the test above.
#[test]
fn simbench_source_accepts_the_documented_flags() {
    let source = include_str!("../crates/bench/src/bin/simbench.rs");
    for flag in ["--smoke", "--out", "--check", "--determinism-check", "--jobs", "--in-process"] {
        assert!(source.contains(&format!("\"{flag}\"")), "simbench lost its `{flag}` flag");
    }
}

/// The Phase 2 (data-plane) section must exist, carry the before/after
/// `profquery diff` evidence, and quote only handler cells that exist
/// in the checked-in profile artifact — the doc's claims stay tied to
/// measurable reality.
#[test]
fn phase_2_section_quotes_real_profile_cells() {
    let section = DOC
        .split("\n## Phase 2")
        .nth(1)
        .expect("docs/PERFORMANCE.md lost its `Phase 2` data-plane section")
        .split("\n## ")
        .next()
        .unwrap();
    assert!(
        section.contains("profquery diff"),
        "the Phase 2 section must show its profquery diff evidence"
    );
    let profile = serde_json::parse_value(include_str!("../results/profile_protos.json"))
        .expect("results/profile_protos.json parses");
    let schemes = profile
        .get("profile")
        .and_then(|p| p.get("schemes"))
        .and_then(|s| s.as_array())
        .expect("profile.schemes array");
    let mut cells = std::collections::BTreeSet::new();
    for s in schemes {
        let scheme = s.get("scheme").and_then(|v| v.as_str()).expect("scheme name");
        for h in s.get("handlers").and_then(|h| h.as_array()).expect("handlers array") {
            let role = h.get("role").and_then(|v| v.as_str()).expect("role");
            let handler = h.get("handler").and_then(|v| v.as_str()).expect("handler");
            match h.get("variant").and_then(|v| v.as_str()).expect("variant") {
                "-" => cells.insert(format!("{scheme};{role};{handler}")),
                v => cells.insert(format!("{scheme};{role};{handler}:{v}")),
            };
        }
    }
    for cell in section
        .lines()
        .filter(|l| l.contains(";on_message:") || l.contains(";on_timer"))
        .filter_map(|l| l.split_whitespace().last())
    {
        assert!(
            cells.contains(cell),
            "Phase 2 quotes handler cell `{cell}` that is not in \
             results/profile_protos.json — regenerate the profile or fix the doc"
        );
    }
}

/// The hot-path clippy gate the Phase 2 section advertises must exist
/// in CI with the lints it names.
#[test]
fn clippy_hotpath_ci_job_matches_the_doc() {
    let ci = include_str!("../.github/workflows/ci.yml");
    assert!(ci.contains("clippy-hotpath:"), "ci.yml lost the clippy-hotpath job");
    for lint in ["clippy::redundant_clone", "clippy::large_enum_variant"] {
        assert!(
            ci.contains(&format!("-D {lint}")) && DOC.contains(&format!("`{lint}`")),
            "the `{lint}` lint must be denied in ci.yml and documented in PERFORMANCE.md"
        );
    }
}
