//! Integration: the timing-wheel event queue and the reference binary
//! heap are the same simulator.
//!
//! The wheel rebuild (see docs/PERFORMANCE.md) is a pure performance
//! change; the parity bar is byte identity, in the same sense as
//! `tests/scheme_parity.rs`: for each protocol family — under the
//! nemesis schedule, not just on a quiet network — running with
//! `QueueKind::TimingWheel` and with `QueueKind::BinaryHeap` must yield
//! byte-identical operation traces, JSONL event logs, and metrics
//! reports for the same seed. Any drift means the wheel reordered
//! events rather than just scheduling them faster.
//!
//! The final test pins that wheel-backed grid runs stay byte-identical
//! across `--jobs` levels (the property `tests/grid_determinism.rs`
//! establishes for the default backend).

use rethinking_ec::core::grid::{Grid, RecorderSpec};
use rethinking_ec::core::{Experiment, Scheme};
use rethinking_ec::obs::Recorder;
use rethinking_ec::simnet::{Duration, FaultSchedule, LatencyModel, NodeId, QueueKind, SimTime};
use rethinking_ec::workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 8,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 5_000 },
        sessions: 3,
        ops_per_session: 25,
    }
}

/// Crash-amnesia plus a partition window: the schedule from
/// `tests/scheme_parity.rs`, so the queues are compared on recovery
/// paths, fault timers, and redelivery — not only the happy path.
fn nemesis() -> FaultSchedule {
    FaultSchedule::none()
        .crash_amnesia(NodeId(1), SimTime::from_millis(800), SimTime::from_millis(1_400))
        .partition(vec![NodeId(0)], SimTime::from_secs(3), SimTime::from_secs(5))
}

/// Run a scheme on the given queue backend to comparable bytes:
/// `(op trace, metrics, event log)`.
fn run_bytes(scheme: Scheme, seed: u64, queue: QueueKind) -> (String, String, String) {
    let recorder = Recorder::with_event_log();
    let result = Experiment::new(scheme)
        .workload(workload())
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(8),
        })
        .faults(nemesis())
        .seed(seed)
        .horizon(SimTime::from_secs(20))
        .recorder(recorder.clone())
        .queue(queue)
        .run();
    (
        serde_json::to_string(result.trace.records()).expect("trace serializes"),
        serde_json::to_string(&result.metrics).expect("metrics serialize"),
        recorder.export_jsonl(),
    )
}

/// Assert wheel and heap produce the same bytes across two seeds.
fn assert_parity(scheme: Scheme) {
    for seed in [11, 42] {
        let wheel = run_bytes(scheme.clone(), seed, QueueKind::TimingWheel);
        let heap = run_bytes(scheme.clone(), seed, QueueKind::BinaryHeap);
        assert_eq!(wheel.0, heap.0, "{}: op trace differs from heap (seed {seed})", scheme.label());
        assert_eq!(wheel.1, heap.1, "{}: metrics differ from heap (seed {seed})", scheme.label());
        assert_eq!(
            wheel.2,
            heap.2,
            "{}: event log differs from heap (seed {seed})",
            scheme.label()
        );
    }
}

#[test]
fn eventual_runs_identically_on_wheel_and_heap() {
    assert_parity(Scheme::eventual(3));
}

#[test]
fn quorum_runs_identically_on_wheel_and_heap() {
    assert_parity(Scheme::quorum(3, 2, 2));
}

#[test]
fn primary_async_failover_runs_identically_on_wheel_and_heap() {
    assert_parity(Scheme::PrimaryAsyncFailover {
        replicas: 3,
        ship_interval: Duration::from_millis(50),
    });
}

#[test]
fn paxos_runs_identically_on_wheel_and_heap() {
    assert_parity(Scheme::Paxos { nodes: 3 });
}

#[test]
fn causal_runs_identically_on_wheel_and_heap() {
    assert_parity(Scheme::Causal { replicas: 3 });
}

/// Wheel-backed grid runs must be byte-identical across `--jobs` levels:
/// parallelism lives between cells, and each cell's queue is private, so
/// the backend cannot observe scheduling.
#[test]
fn wheel_grid_is_byte_identical_across_jobs_levels() {
    let run = |jobs: usize| {
        let mut grid = Grid::new();
        for scheme in [Scheme::eventual(3), Scheme::quorum(3, 2, 2)] {
            grid.push(
                scheme.label(),
                Experiment::new(scheme)
                    .workload(workload())
                    .faults(nemesis())
                    .seed(11)
                    .horizon(SimTime::from_secs(10))
                    .queue(QueueKind::TimingWheel),
            );
        }
        let grid = grid.seeds(2);
        grid.run(jobs, RecorderSpec::EventLog)
            .into_iter()
            .map(|cell| {
                (
                    serde_json::to_string(cell.result.trace.records()).expect("serializes"),
                    cell.recorder.export_jsonl(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(1), run(4), "wheel grid output depends on --jobs");
}
