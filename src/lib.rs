//! # rethinking-ec — an executable taxonomy of eventual consistency
//!
//! A reproduction, as a working system, of the design space surveyed in
//! Philip A. Bernstein and Sudipto Das, *"Rethinking Eventual
//! Consistency"* (SIGMOD 2013 tutorial). The tutorial has no artifact of
//! its own, so this workspace builds the laboratory it describes:
//!
//! * [`simnet`] — a deterministic discrete-event simulator (virtual time,
//!   seeded randomness, latency models, partitions, crashes),
//! * [`obs`] — the structured observability layer: typed simulation
//!   event log, causal operation spans, per-node protocol counters,
//!   latency histograms, windowed time series (the metrics contract is
//!   documented in `docs/METRICS.md`, the span model in
//!   `docs/TRACING.md`),
//! * [`obs_tools`] — offline trace analysis and the `tracequery` CLI:
//!   span-tree reconstruction, violation explanation, span
//!   conservation checking, Chrome `trace_event` export,
//! * [`clocks`] — Lamport/vector/dotted-version-vector/hybrid clocks,
//! * [`crdt`] — convergent replicated data types with lattice-law tests,
//! * [`kvstore`] — the per-replica storage substrate (MVCC + WAL +
//!   DVV sibling store),
//! * [`replication`] — the protocols: eventual (anti-entropy), quorums,
//!   primary-copy, Multi-Paxos, causal broadcast,
//! * [`consistency`] — trace checkers: session guarantees, staleness,
//!   linearizability, causal anomalies,
//! * [`sla`] — Pileus-style consistency SLAs,
//! * [`txn`] — entity-group transactions with 2PC / registrar commit,
//! * [`workload`] — YCSB-style workload generation,
//! * [`core`] (the `rec-core` crate) — the one-stop API:
//!   `Experiment::new(Scheme::…).run()`.
//!
//! Start with `examples/quickstart.rs`; the experiment suite lives in
//! `crates/bench/src/bin/` (one binary per table/figure in
//! EXPERIMENTS.md).

pub use clocks;
pub use consistency;
pub use crdt;
pub use kvstore;
pub use obs;
pub use obs_tools;
pub use rec_core as core;
pub use replication;
pub use simnet;
pub use sla;
pub use txn;
pub use workload;
