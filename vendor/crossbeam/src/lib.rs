//! Offline-vendored `crossbeam`-compatible channel module.
//!
//! Implements an unbounded MPMC channel (both [`channel::Sender`] and
//! [`channel::Receiver`] are cloneable) over a `Mutex<VecDeque>` +
//! `Condvar`. Far simpler than crossbeam's lock-free implementation, but
//! API-compatible for the workspace's usage and correct under
//! concurrency.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        available: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely (messages go to one receiver each).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner { items: VecDeque::new(), senders: 1 }),
            available: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue a message. Never blocks (the channel is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Receiver liveness: if the only Arcs left are senders', every
            // receiver has been dropped.
            if Arc::strong_count(&self.shared) == inner.senders {
                return Err(SendError(value));
            }
            inner.items.push_back(value);
            drop(inner);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders += 1;
            drop(inner);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = inner.items.pop_front() {
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.available.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Take a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match inner.items.pop_front() {
                Some(item) => Ok(item),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: self.shared.clone() }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;

    #[test]
    fn send_and_receive_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for j in 0..100 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got.len(), 400);
        assert_eq!(got[0], 0);
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
