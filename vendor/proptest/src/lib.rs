//! Offline-vendored mini property-testing harness.
//!
//! Mimics the slice of the `proptest` API this workspace's tests use —
//! `proptest!`, integer-range strategies, tuples, `collection::{vec,
//! btree_map, btree_set}`, `option::of`, `bool::ANY`, `any::<T>()`,
//! `prop_map`, `prop_oneof!`, and the `prop_assert*` macros — on top of a
//! small deterministic RNG.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the sampled inputs via the assertion message), and a fixed number
//! of cases ([`CASES`]) derived deterministically from the test name, so
//! failures reproduce exactly.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test runs.
pub const CASES: u64 = 128;

/// Deterministic test RNG (SplitMix64).
pub struct TestRng {
    state: u64,
    base: u64,
}

impl TestRng {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed, base: seed }
    }

    /// Re-derive the stream for case number `case` (so each case is a pure
    /// function of `(seed, case)`).
    pub fn reseed_case(&mut self, case: u64) {
        self.state = self.base ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Hash a test name into an RNG seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (used by `prop_oneof!`).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A:0);
impl_tuple_strategy!(A:0, B:1);
impl_tuple_strategy!(A:0, B:1, C:2);
impl_tuple_strategy!(A:0, B:1, C:2, D:3);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the whole domain of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed strategies (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from boxed alternatives (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The fair-coin boolean strategy.
    pub struct AnyBool;

    /// Fair coin.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy produced by [`of`].
    pub struct OptionStrategy<S>(S);

    /// Produce `Some(inner)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Collection strategies with size ranges.
pub mod collection {
    use super::*;

    /// A size range for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` (see [`vec()`]).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` (see [`btree_map`]).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Maps with up to `size` entries (duplicate keys collapse, as in the
    /// real crate).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| (self.key.sample(rng), self.value.sample(rng))).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` (see [`btree_set`]).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Sets with up to `size` elements (duplicates collapse).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    /// Re-export so `proptest::prelude::*` brings the crate root in scope
    /// under its own name, like the real crate.
    pub use crate as proptest;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        Strategy,
    };
}

/// Run each declared test body against [`CASES`] sampled inputs.
///
/// Supports the `fn name(pat in strategy, ...) { body }` form used in this
/// workspace. Attributes (including `#[test]` and doc comments) pass
/// through.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __seed = $crate::seed_from_name(stringify!($name));
                let mut __rng = $crate::TestRng::new(__seed);
                for __case in 0..$crate::CASES {
                    __rng.reseed_case(__case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..10, y in 1usize..=4) {
            prop_assert!(x < 10);
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vecs_have_requested_len(xs in proptest::collection::vec(0u8..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn maps_and_oneof(
            m in proptest::collection::btree_map(0u64..4, 0u64..100, 0..5),
            v in prop_oneof![(0u64..10).prop_map(|x| x * 2), Just(1u64)],
        ) {
            prop_assert!(m.len() <= 4);
            prop_assert!(v == 1u64 || v % 2u64 == 0u64);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::new(1);
        let mut b = super::TestRng::new(1);
        a.reseed_case(5);
        b.reseed_case(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
