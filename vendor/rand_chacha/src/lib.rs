//! Offline-vendored ChaCha8 random number generator.
//!
//! Implements a genuine ChaCha8 block function (IETF-style layout: 4
//! constant words, 8 key words, a 64-bit block counter, and a 64-bit
//! stream id) against the workspace's vendored `rand` traits. The
//! workspace relies on this generator being *deterministic, portable,
//! and forkable via streams* — not on matching the upstream
//! `rand_chacha` byte stream.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha RNG with 8 rounds: fast, portable, and stable across platforms
/// and compiler versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    /// 64-bit stream id (words 14–15); [`ChaCha8Rng::set_stream`] selects
    /// an independent output stream under the same key.
    stream: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "buffer exhausted".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha8_block(key: &[u32; 8], counter: u64, stream: u64) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = stream as u32;
    state[15] = (stream >> 32) as u32;
    let initial = state;
    for _ in 0..4 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

impl ChaCha8Rng {
    /// Select the output stream. Distinct streams under the same key are
    /// statistically independent. Resets the position to the start of the
    /// current block so the switch is deterministic regardless of how many
    /// words were consumed before it.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.idx = 16; // Force a refill from the current counter.
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        self.buf = chacha8_block(&self.key, self.counter, self.stream);
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, stream: 0, buf: [0; 16], idx: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn streams_diverge() {
        let base = ChaCha8Rng::seed_from_u64(7);
        let mut s1 = base.clone();
        s1.set_stream(1);
        let mut s2 = base.clone();
        s2.set_stream(2);
        let a: Vec<u64> = (0..16).map(|_| s1.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| s2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn output_is_balanced() {
        // Cheap sanity check on the block function: bit frequency ~50%.
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "bit frequency {frac}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = ChaCha8Rng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
