//! Offline-vendored minimal benchmark harness with a criterion-compatible
//! surface.
//!
//! Runs each benchmark for a fixed, small number of iterations and prints
//! mean wall-clock time per iteration. No statistical analysis, warm-up
//! tuning, or HTML reports — just enough to keep `cargo bench` (and the
//! compilation of bench targets under `cargo test`) working offline.

use std::time::Instant;

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility;
/// ignored by this implementation).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; drives the measured iterations.
pub struct Bencher {
    iters: u64,
    last_mean_ns: f64,
}

impl Bencher {
    /// Measure `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Measure `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.last_mean_ns = total_ns as f64 / self.iters as f64;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { iters, last_mean_ns: 0.0 };
    f(&mut bencher);
    println!("bench {label:<48} {:>12.1} ns/iter", bencher.last_mean_ns);
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate throughput (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Override the sample count (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.iters, &mut f);
        self
    }

    /// Finish the group (no-op).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 30 }
    }
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.iters, &mut f);
        self
    }
}

/// Declare a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closures() {
        let mut c = Criterion { iters: 3 };
        let mut calls = 0u64;
        c.bench_function("t", |b| b.iter(|| calls += 1));
        assert!(calls >= 3);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("u", |b| b.iter_batched(|| 2u64, |x| x * 2, BatchSize::SmallInput));
        g.finish();
    }
}
