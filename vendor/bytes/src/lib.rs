//! Offline-vendored minimal [`Bytes`]: an immutable, cheaply clonable byte
//! string backed by `Arc<[u8]>`.
//!
//! Covers the subset of the real `bytes` crate this workspace uses:
//! construction from slices/vecs/strings, `Deref` to `[u8]`, and serde
//! support (serialized as an array of numbers, like the real crate).

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte string with O(1) clone.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty byte string.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Construct from a static slice (the copy is kept for simplicity).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.0.iter().map(|&b| serde::Value::U64(b as u64)).collect())
    }
}

impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let items = v.as_array().ok_or_else(|| serde::Error::custom("expected byte array"))?;
        let bytes: Result<Vec<u8>, serde::Error> = items
            .iter()
            .map(|item| {
                item.as_u64()
                    .and_then(|x| u8::try_from(x).ok())
                    .ok_or_else(|| serde::Error::custom("expected byte"))
            })
            .collect();
        Ok(Bytes::from(bytes?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(&*b, b"hello");
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn serde_round_trip() {
        use serde::{Deserialize, Serialize};
        let b = Bytes::copy_from_slice(&[1, 2, 255]);
        let v = b.to_value();
        assert_eq!(Bytes::from_value(&v).unwrap(), b);
    }

    #[test]
    fn slice_conversion() {
        let arr: [u8; 8] = 7u64.to_le_bytes();
        let b = Bytes::copy_from_slice(&arr);
        let back: [u8; 8] = b.as_ref().try_into().unwrap();
        assert_eq!(u64::from_le_bytes(back), 7);
    }
}
