//! Offline-vendored `parking_lot`-compatible locks.
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! poison-free API (`lock()` returns the guard directly). A poisoned std
//! lock is recovered into its inner guard, matching parking_lot's
//! behavior of ignoring panics in other threads.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get the inner value with exclusive access.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5u64);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
