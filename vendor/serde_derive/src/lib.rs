//! Offline-vendored `#[derive(Serialize, Deserialize)]` for the
//! workspace's minimal `serde`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available in this hermetic build environment, so this macro parses the
//! item declaration directly from the raw [`proc_macro::TokenStream`] and
//! emits impl blocks as strings. It supports what the workspace actually
//! uses: plain structs (named, tuple, unit) and enums (unit, tuple, and
//! struct variants), with ordinary generic parameters and optional `where`
//! clauses. Field-level `#[serde(...)]` attributes are *not* supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    /// Raw generics text, without the angle brackets (e.g. `K: Ord, V`).
    generics: String,
    /// Bare parameter names for the type position (e.g. `K, V`).
    params: String,
    /// Type-parameter identifiers that get `Serialize`/`Deserialize` bounds.
    type_params: Vec<String>,
    /// Raw `where` clause predicates from the declaration, if any.
    where_preds: String,
    body: Body,
}

/// Render a token slice back to source text.
fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// modifiers (`pub`, `pub(...)`) starting at `i`; returns the new index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: `#` followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super) / ...
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Collect the generics token run following `<` (exclusive) up to its
/// matching `>`; returns `(tokens_inside, index_after_closing_gt)`.
fn collect_generics(tokens: &[TokenTree], mut i: usize) -> (Vec<TokenTree>, usize) {
    let mut depth = 1usize;
    let mut inner = Vec::new();
    while depth > 0 {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                inner.push(tokens[i].clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    inner.push(tokens[i].clone());
                }
            }
            t => inner.push(t.clone()),
        }
        i += 1;
    }
    (inner, i)
}

/// Split a token run on top-level commas (angle-bracket aware; groups are
/// atomic so parens/brackets/braces never leak commas).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0isize;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}

/// Extract `(param_names_for_type_position, type_param_idents)` from the
/// inside of a generics declaration.
fn analyze_generics(inner: &[TokenTree]) -> (String, Vec<String>) {
    let mut names = Vec::new();
    let mut type_params = Vec::new();
    for part in split_top_level_commas(inner) {
        let mut j = 0;
        // Lifetime parameter: `'a` (possibly with bounds) — keep the tick.
        if let Some(TokenTree::Punct(p)) = part.first() {
            if p.as_char() == '\'' {
                if let Some(TokenTree::Ident(id)) = part.get(1) {
                    names.push(format!("'{id}"));
                }
                continue;
            }
        }
        // Const parameter: `const N: usize`.
        if let Some(TokenTree::Ident(id)) = part.first() {
            if id.to_string() == "const" {
                j = 1;
                if let Some(TokenTree::Ident(n)) = part.get(j) {
                    names.push(n.to_string());
                }
                continue;
            }
        }
        // Plain type parameter: first ident is the name.
        if let Some(TokenTree::Ident(id)) = part.get(j) {
            let name = id.to_string();
            names.push(name.clone());
            type_params.push(name);
        }
    }
    (names.join(", "), type_params)
}

/// Parse named fields from the tokens inside a brace group: returns the
/// field identifiers in declaration order.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        fields.push(id.to_string());
        i += 1;
        // Skip `:` then the type up to the next top-level comma.
        let mut angle = 0isize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_variant_fields(group: &proc_macro::Group) -> Fields {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match group.delimiter() {
        Delimiter::Brace => Fields::Named(parse_named_fields(&tokens)),
        Delimiter::Parenthesis => Fields::Tuple(split_top_level_commas(&tokens).len()),
        _ => Fields::Unit,
    }
}

fn parse_enum_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        let name = id.to_string();
        i += 1;
        let mut fields = Fields::Unit;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            fields = parse_variant_fields(g);
            i += 1;
        }
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    if kind != "struct" && kind != "enum" {
        panic!("serde_derive: only structs and enums are supported, found `{kind}`");
    }

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected type name, found {t}"),
    };
    i += 1;

    let mut generics = String::new();
    let mut params = String::new();
    let mut type_params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let (inner, next) = collect_generics(&tokens, i + 1);
            i = next;
            generics = tokens_to_string(&inner);
            let (ps, tps) = analyze_generics(&inner);
            params = ps;
            type_params = tps;
        }
    }

    // Optional where clause (between generics and the body).
    let mut where_preds = String::new();
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "where" {
            i += 1;
            let mut preds = Vec::new();
            while i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Group(g)
                        if g.delimiter() == Delimiter::Brace
                            || g.delimiter() == Delimiter::Parenthesis =>
                    {
                        break;
                    }
                    TokenTree::Punct(p) if p.as_char() == ';' => break,
                    t => {
                        preds.push(t.clone());
                        i += 1;
                    }
                }
            }
            where_preds = tokens_to_string(&preds);
        }
    }

    let body = if kind == "enum" {
        let TokenTree::Group(g) = &tokens[i] else {
            panic!("serde_derive: expected enum body");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        Body::Enum(parse_enum_variants(&inner))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::Struct(Fields::Named(parse_named_fields(&inner)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::Struct(Fields::Tuple(split_top_level_commas(&inner).len()))
            }
            _ => Body::Struct(Fields::Unit),
        }
    };

    Input { name, generics, params, type_params, where_preds, body }
}

/// `impl<G> Trait for Name<P> where preds, T1: Trait, T2: Trait`.
fn impl_header(input: &Input, trait_path: &str) -> String {
    let mut s = String::from("impl");
    if !input.generics.is_empty() {
        s.push('<');
        s.push_str(&input.generics);
        s.push('>');
    }
    s.push_str(&format!(" {trait_path} for {}", input.name));
    if !input.params.is_empty() {
        s.push('<');
        s.push_str(&input.params);
        s.push('>');
    }
    let mut preds: Vec<String> = Vec::new();
    if !input.where_preds.is_empty() {
        preds.push(input.where_preds.trim_end_matches(',').to_string());
    }
    for tp in &input.type_params {
        preds.push(format!("{tp}: {trait_path}"));
    }
    if !preds.is_empty() {
        s.push_str(" where ");
        s.push_str(&preds.join(", "));
    }
    s
}

fn serialize_fields_expr(fields: &Fields, accessor: &dyn Fn(&str) -> String) -> String {
    match fields {
        Fields::Named(names) => {
            let pairs: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&{}))",
                        accessor(f)
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Fields::Tuple(1) => {
            format!("::serde::Serialize::to_value(&{})", accessor("0"))
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&{})", accessor(&k.to_string())))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

fn gen_serialize(input: &Input) -> String {
    let header = impl_header(input, "::serde::Serialize");
    let body = match &input.body {
        Body::Struct(fields) => {
            let expr = serialize_fields_expr(fields, &|f| format!("self.{f}"));
            expr.to_string()
        }
        Body::Enum(variants) => {
            let name = &input.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?})),"
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let expr = serialize_fields_expr(
                                &Fields::Tuple(*n),
                                &|f| format!("__f{f}"),
                            );
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), {expr})]),",
                                binders.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binders = fs.join(", ");
                            let expr = serialize_fields_expr(
                                &Fields::Named(fs.clone()),
                                &|f| f.to_string(),
                            );
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), {expr})]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!("{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}")
}

/// Expression that deserializes the fields of `fields` from `__v` and
/// constructs `ctor`.
fn deserialize_ctor(ctor: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__v, {f:?})?"))
                .collect();
            format!(
                "{{ let __v = ::serde::__private::as_object(__v)?; ::std::result::Result::Ok({ctor} {{ {} }}) }}",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({ctor}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> =
                (0..*n).map(|k| format!("::serde::__private::element(__v, {k})?")).collect();
            format!("::std::result::Result::Ok({ctor}({}))", inits.join(", "))
        }
        Fields::Unit => format!("::std::result::Result::Ok({ctor})"),
    }
}

fn gen_deserialize(input: &Input) -> String {
    let header = impl_header(input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(fields) => deserialize_ctor(name, fields),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let ctor = format!("{name}::{}", v.name);
                    let expr = deserialize_ctor(&ctor, &v.fields);
                    format!("{:?} => {expr},", v.name)
                })
                .collect();
            format!(
                "match __v {{
                    ::serde::Value::String(__s) => match __s.as_str() {{
                        {unit}
                        __other => ::std::result::Result::Err(::serde::Error::custom(
                            ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),
                    }},
                    ::serde::Value::Object(__entries) if __entries.len() == 1 => {{
                        let (__tag, __v) = &__entries[0];
                        match __tag.as_str() {{
                            {data}
                            __other => ::std::result::Result::Err(::serde::Error::custom(
                                ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),
                        }}
                    }}
                    _ => ::std::result::Result::Err(::serde::Error::custom(
                        \"expected enum representation for {name}\")),
                }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
                name = name,
            )
        }
    };
    format!(
        "{header} {{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}

/// Derive the workspace-minimal `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive the workspace-minimal `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
