//! Offline-vendored minimal `serde_json`.
//!
//! Provides [`to_string`], [`to_string_pretty`], and [`from_str`] over the
//! workspace's value-tree `serde`, plus a spec-complete JSON parser
//! (strings with escapes and surrogate pairs, numbers, nesting). Output is
//! deterministic: struct fields keep declaration order and map keys are
//! sorted.

pub use serde::{Error, Value};

/// Serialize `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serialize `value` as pretty-printed JSON (2-space indentation).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Serialize `value` as compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::custom)?;
    from_str(s)
}

/// Parse JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { input: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `]` at byte {}", self.pos)))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `}}` at byte {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.input.len() {
                        return Err(Error::custom("truncated UTF-8"));
                    }
                    let chunk =
                        std::str::from_utf8(&self.input[start..end]).map_err(Error::custom)?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.input.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.input[self.pos..self.pos + 4]).map_err(Error::custom)?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(Error::custom)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).map_err(Error::custom)?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(Error::custom)
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer.
            stripped
                .parse::<u64>()
                .map_err(Error::custom)
                .and_then(|x| i64::try_from(x).map_err(Error::custom))
                .map(|x| Value::I64(-x))
        } else {
            match text.parse::<u64>() {
                Ok(x) => Ok(Value::U64(x)),
                Err(_) => text.parse::<f64>().map(Value::F64).map_err(Error::custom),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse_value("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse_value("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse_value(r#"{"a": [1, {"b": null}], "c": "x\ny"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "x\ny");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse_value(r#""Aé😀""#).unwrap(), Value::String("Aé😀".into()));
    }

    #[test]
    fn round_trips_through_text() {
        let v = parse_value(r#"{"n": 1, "s": "a\"b", "xs": [1.25, -2, true]}"#).unwrap();
        let text = v.to_json();
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
