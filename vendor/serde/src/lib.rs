//! Offline-vendored minimal `serde`.
//!
//! The real `serde` is unavailable in this hermetic build environment, so
//! this crate provides the slice of its surface the workspace uses:
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::{to_string,
//! to_string_pretty, from_str}`.
//!
//! Instead of serde's zero-copy visitor architecture, everything funnels
//! through an owned JSON-like [`Value`] tree: `Serialize` renders a value
//! into a [`Value`], `Deserialize` reads one back out. Object fields keep
//! declaration order, and map keys are emitted in sorted order, so the
//! rendered output of a given value is deterministic — a property the
//! workspace's trace/metrics exports rely on.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; entries keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` if this is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(x) => Some(x as f64),
            Value::I64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// Numeric value as `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// Look up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON with 2-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(x) => out.push_str(&x.to_string()),
            Value::I64(x) => out.push_str(&x.to_string()),
            Value::F64(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write_json(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Render into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the serialization data model.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent. Defaults to an error;
    /// `Option<T>` overrides it to produce `None` (mirroring serde's
    /// treatment of missing optional fields).
    fn missing_field(name: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{name}`")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(x).map_err(Error::custom)
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = match *v {
                    Value::U64(x) => i64::try_from(x).map_err(Error::custom)?,
                    Value::I64(x) => x,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(x).map_err(Error::custom)
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Forwarding impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
    fn missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T, S> Serialize for HashSet<T, S>
where
    T: Serialize + Ord,
{
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}
impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        items.iter().map(T::from_value).collect()
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                if items.len() != $len {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(A:0; 1);
impl_tuple!(A:0, B:1; 2);
impl_tuple!(A:0, B:1, C:2; 3);
impl_tuple!(A:0, B:1, C:2, D:3; 4);
impl_tuple!(A:0, B:1, C:2, D:3, E:4; 5);
impl_tuple!(A:0, B:1, C:2, D:3, E:4, F:5; 6);

// ---------------------------------------------------------------------------
// Maps
// ---------------------------------------------------------------------------

// Maps serialize as arrays of `[key, value]` pairs so that any
// `Serialize` key type works (real serde_json restricts object keys to
// strings/integers; the workspace keys maps by structs like `Dot`).
// Output order is deterministic: BTreeMap iterates in key order and
// HashMap entries are sorted by their encoded key.

fn map_pairs(v: &Value) -> Result<&[Value], Error> {
    v.as_array().ok_or_else(|| Error::custom("expected array of map entries"))
}

fn map_pair<K: Deserialize, V: Deserialize>(entry: &Value) -> Result<(K, V), Error> {
    match entry.as_array() {
        Some([k, v]) => Ok((K::from_value(k)?, V::from_value(v)?)),
        _ => Err(Error::custom("expected [key, value] map entry")),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v)?.iter().map(map_pair).collect()
    }
}

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Sorted by encoded key for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = k.to_value();
                (key.to_json(), Value::Array(vec![key, v.to_value()]))
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Array(entries.into_iter().map(|(_, pair)| pair).collect())
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v)?.iter().map(map_pair).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive-macro support
// ---------------------------------------------------------------------------

/// Helpers called by the generated code of `#[derive(Serialize,
/// Deserialize)]`. Not part of the public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Borrow an object's entries or fail.
    pub fn as_object(v: &Value) -> Result<&[(String, Value)], Error> {
        v.as_object().ok_or_else(|| Error::custom("expected object"))
    }

    /// Deserialize a named field, falling back to `missing_field` when
    /// absent (which yields `None` for `Option` fields).
    pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => T::missing_field(name),
        }
    }

    /// Deserialize the `idx`-th element of an array value.
    pub fn element<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
        let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
        let item =
            items.get(idx).ok_or_else(|| Error::custom(format!("missing tuple element {idx}")))?;
        T::from_value(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(3u64, "x".to_string());
        assert_eq!(BTreeMap::<u64, String>::from_value(&m.to_value()).unwrap(), m);
        let t = (1u64, -2i64, true);
        assert_eq!(<(u64, i64, bool)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn json_rendering_is_deterministic() {
        let mut m = HashMap::new();
        for i in 0..16u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.to_value().to_json(), m.to_value().to_json());
        // Entries sorted by encoded key (lexicographic on the JSON text).
        assert!(m.to_value().to_json().starts_with("[[0,0],[1,2],[10,20]"));
        assert_eq!(HashMap::<u64, u64>::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn string_escaping() {
        let s = "a\"b\\c\nd\u{1}".to_string();
        assert_eq!(s.to_value().to_json(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
