//! Offline-vendored minimal subset of the [`rand`](https://crates.io/crates/rand)
//! 0.9 API.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the handful of `rand` items the code actually uses are
//! reimplemented here: [`RngCore`], [`Rng`] (with `random` /
//! `random_range`), [`SeedableRng`], and the uniform sampling plumbing
//! backing them. Algorithms are intentionally simple (widening-multiply
//! range reduction, 53-bit float construction); the workspace only relies
//! on *determinism*, not on matching upstream `rand` streams.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of raw random words.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A distribution that can produce values of type `T` given an RNG.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over the whole domain for integers,
/// uniform in `[0, 1)` for floats, fair coin for `bool`.
pub struct StandardUniform;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for StandardUniform {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits: uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range of values that supports uniform sampling (`Rng::random_range`).
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via 128-bit widening multiply (Lemire-style
/// without the rejection step; the bias is ≪ 2⁻⁶⁴ and irrelevant here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64).wrapping_sub(lo as u64) + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = StandardUniform.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution for `T`.
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Sample uniformly from `range`. Panics if the range is empty.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = StandardUniform.sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded into a full seed with SplitMix64
    /// (matching upstream `rand`'s approach, though not bit-for-bit).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream looks uniform.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let x: u64 = r.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.random_range(0..=3);
            assert!(y <= 3);
            let z: i64 = r.random_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Counter(2);
        for _ in 0..1000 {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..100)
        }
        let mut r = Counter(3);
        assert!(sample(&mut r) < 100);
    }
}
