//! # simnet — deterministic discrete-event simulation for replication protocols
//!
//! This crate is the substrate every experiment in the workspace runs on. It
//! provides:
//!
//! * a virtual clock ([`SimTime`]) with microsecond resolution,
//! * a deterministic event queue driven by a seeded RNG ([`rng::SimRng`]),
//! * an actor runtime ([`Actor`], [`Sim`]) in which replicas **and** clients
//!   are state machines that exchange messages and set timers,
//! * pluggable message latency models ([`latency::LatencyModel`]),
//! * scripted fault injection ([`faults::FaultSchedule`]): network
//!   partitions, message loss, and node crashes/recoveries,
//! * an operation trace ([`optrace::OpTrace`]) that consistency checkers in
//!   the `consistency` crate consume, and
//! * small statistics helpers ([`stats`]) shared by the benchmark harnesses.
//!
//! ## Determinism
//!
//! A simulation run is a pure function of its configuration and seed: events
//! are ordered by `(virtual time, insertion sequence)`, and all randomness
//! flows from one [`rng::SimRng`]. Re-running with the same seed reproduces
//! every message ordering, latency sample, and fault — which is what makes
//! consistency-violation reports in the experiment suite reproducible.
//!
//! ## Example
//!
//! ```
//! use simnet::{Actor, Context, NodeId, Sim, SimConfig, SimTime};
//!
//! /// A node that forwards a counter around a ring until it reaches 10.
//! struct Ring { n: u32 }
//! impl Actor<u64> for Ring {
//!     fn on_start(&mut self, ctx: &mut Context<u64>) {
//!         if ctx.self_id().0 == 0 {
//!             ctx.send(NodeId(1 % self.n), 1);
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<u64>, _from: NodeId, msg: u64) {
//!         if msg < 10 {
//!             let next = NodeId((ctx.self_id().0 + 1) % self.n);
//!             ctx.send(next, msg + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::default().seed(7));
//! for _ in 0..3 {
//!     sim.add_node(Box::new(Ring { n: 3 }));
//! }
//! sim.run_until(SimTime::from_millis(100));
//! assert!(sim.now() > SimTime::ZERO);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod faults;
pub mod latency;
pub mod nemesis;
pub mod optrace;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
mod wheel;

pub use event::{Event, EventPayload, QueueKind};
pub use faults::{FaultEvent, FaultSchedule, Partition};
pub use latency::LatencyModel;
pub use nemesis::{IntensityProfile, NemesisEvent};
pub use optrace::{OpKind, OpRecord, OpTrace, SharedTrace};
pub use rng::SimRng;
pub use sim::{Actor, Context, MsgMeta, NodeId, Sim, SimConfig};
pub use time::{Duration, SimTime};

// Trace/span vocabulary used by the `Context` tracing API, re-exported
// so actor implementations need not depend on `obs` directly.
pub use obs::{SpanId, SpanStatus, TraceId};

/// Compile-time audit of the crate's Send/Sync surface, relied on by the
/// parallel grid runner in `rec-core`.
///
/// The *descriptions* of a simulation — config, RNG, fault schedule,
/// latency model, and the finished trace — must be `Send` so a grid cell
/// can be shipped to a worker thread and its results shipped back. The
/// running [`Sim`] itself is intentionally **not** `Send`: it hands
/// actors `Rc<RefCell<..>>` trace handles, so a simulation must start and
/// finish on one thread. Parallelism lives *between* cells, never inside
/// one — see DESIGN.md.
#[cfg(test)]
mod send_audit {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn simulation_descriptions_are_send() {
        assert_send::<SimConfig>();
        assert_send::<SimRng>();
        assert_send::<FaultSchedule>();
        assert_send::<LatencyModel>();
        assert_send::<OpTrace>();
        assert_send::<OpRecord>();
        assert_sync::<SimConfig>();
        assert_sync::<FaultSchedule>();
        assert_sync::<LatencyModel>();
    }

    /// `Sim` and `SharedTrace` are deliberately !Send (`Rc<RefCell<..>>`
    /// inside); this is a documentation anchor, not an assertion — the
    /// compiler enforces it at every cross-thread use site.
    #[test]
    fn shared_trace_is_thread_local_by_construction() {
        let trace: SharedTrace = optrace::shared_trace();
        assert_eq!(trace.borrow().records().len(), 0);
    }
}
