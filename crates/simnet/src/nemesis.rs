//! Seeded adversarial fault-schedule generation — the *nemesis*.
//!
//! Hand-scripted [`FaultSchedule`]s only exercise the failures someone
//! thought to write down. The nemesis instead *generates* schedules from
//! a seed: partition flaps with overlapping sides, crash/restart storms
//! (optionally with amnesia), message-loss bursts, and latency-skew
//! windows, all parameterized by an [`IntensityProfile`]. A generated
//! schedule is a pure function of `(seed, nodes, horizon, profile)`, so
//! any schedule the fuzz harness finds interesting can be regenerated —
//! or checked into a regression corpus as plain JSON — and replayed
//! byte-identically.
//!
//! Two structural guarantees keep generated schedules well-formed:
//!
//! * every fault window closes by two thirds of the horizon (the *quiet
//!   tail*), so convergence-style checkers get a fault-free suffix to
//!   judge;
//! * per-node crash windows never overlap, so a `Recover` always matches
//!   the most recent `Crash` of that node.
//!
//! The shrinking step in the fuzz harness (`rec-core`) deletes whole
//! [`NemesisEvent`] windows, never individual transitions — any subset of
//! a generated event list is itself a well-formed schedule.

use crate::faults::FaultSchedule;
use crate::rng::SimRng;
use crate::sim::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One generated fault window.
///
/// All fields are integers (milliseconds, percent) so the JSON encoding
/// of a schedule is byte-stable across platforms — reproducer files in
/// `tests/corpus/` depend on this.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NemesisEvent {
    /// Cut `side_a` off from everyone else during `[from_ms, to_ms)`.
    Partition {
        /// Node indices on side A (sorted).
        side_a: Vec<usize>,
        /// Window start, in ms of virtual time.
        from_ms: u64,
        /// Window end (heal), in ms of virtual time.
        to_ms: u64,
    },
    /// Crash one node during `[from_ms, to_ms)`.
    Crash {
        /// The node to crash.
        node: usize,
        /// Crash time, in ms.
        from_ms: u64,
        /// Recovery time, in ms.
        to_ms: u64,
        /// Whether recovery wipes volatile state (WAL replay required).
        amnesia: bool,
    },
    /// Set global message loss to `pct`% during `[from_ms, to_ms)`.
    LossBurst {
        /// Loss probability in percent.
        pct: u64,
        /// Burst start, in ms.
        from_ms: u64,
        /// Burst end (loss back to 0), in ms.
        to_ms: u64,
    },
    /// Scale all latencies by `factor_pct`% during `[from_ms, to_ms)`.
    LatencySkew {
        /// Latency multiplier in percent (e.g. 400 = 4× slower).
        factor_pct: u64,
        /// Skew start, in ms.
        from_ms: u64,
        /// Skew end (back to nominal), in ms.
        to_ms: u64,
    },
}

impl NemesisEvent {
    /// The window start in milliseconds.
    pub fn from_ms(&self) -> u64 {
        match self {
            NemesisEvent::Partition { from_ms, .. }
            | NemesisEvent::Crash { from_ms, .. }
            | NemesisEvent::LossBurst { from_ms, .. }
            | NemesisEvent::LatencySkew { from_ms, .. } => *from_ms,
        }
    }

    /// The window end in milliseconds.
    pub fn to_ms(&self) -> u64 {
        match self {
            NemesisEvent::Partition { to_ms, .. }
            | NemesisEvent::Crash { to_ms, .. }
            | NemesisEvent::LossBurst { to_ms, .. }
            | NemesisEvent::LatencySkew { to_ms, .. } => *to_ms,
        }
    }
}

/// How hard the nemesis leans on the system.
///
/// Each `max_*` field caps a per-category draw of `0..=max` windows;
/// window lengths are drawn from `[min_window_ms, max_window_ms)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntensityProfile {
    /// Maximum number of partition windows.
    pub max_partitions: u64,
    /// Maximum number of crash windows.
    pub max_crashes: u64,
    /// Maximum number of loss bursts.
    pub max_loss_bursts: u64,
    /// Maximum number of latency-skew windows.
    pub max_latency_skews: u64,
    /// Chance (percent) that a crash recovers with amnesia.
    pub amnesia_pct: u64,
    /// Cap on burst loss probability, in percent.
    pub max_loss_pct: u64,
    /// Cap on the latency multiplier, in percent (minimum draw is 150).
    pub max_latency_factor_pct: u64,
    /// Shortest fault window, in ms.
    pub min_window_ms: u64,
    /// Longest fault window, in ms.
    pub max_window_ms: u64,
}

impl IntensityProfile {
    /// Gentle: at most one fault per category, no amnesia.
    pub fn light() -> Self {
        IntensityProfile {
            max_partitions: 1,
            max_crashes: 1,
            max_loss_bursts: 1,
            max_latency_skews: 1,
            amnesia_pct: 0,
            max_loss_pct: 15,
            max_latency_factor_pct: 300,
            min_window_ms: 300,
            max_window_ms: 2_000,
        }
    }

    /// The default fuzzing diet: a few overlapping faults, amnesia on
    /// half the crashes.
    pub fn medium() -> Self {
        IntensityProfile {
            max_partitions: 2,
            max_crashes: 2,
            max_loss_bursts: 2,
            max_latency_skews: 1,
            amnesia_pct: 50,
            max_loss_pct: 30,
            max_latency_factor_pct: 500,
            min_window_ms: 300,
            max_window_ms: 4_000,
        }
    }

    /// Storms: many overlapping partitions and crash/restart cycles,
    /// every recovery amnesiac.
    pub fn heavy() -> Self {
        IntensityProfile {
            max_partitions: 4,
            max_crashes: 5,
            max_loss_bursts: 3,
            max_latency_skews: 2,
            amnesia_pct: 100,
            max_loss_pct: 40,
            max_latency_factor_pct: 800,
            min_window_ms: 200,
            max_window_ms: 5_000,
        }
    }

    /// Parse a profile name as used by the `fuzz_nemesis` CLI.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "light" => Some(Self::light()),
            "medium" => Some(Self::medium()),
            "heavy" => Some(Self::heavy()),
            _ => None,
        }
    }
}

/// Fraction of the horizon after which all faults have healed: windows
/// close by `horizon_ms * QUIET_NUM / QUIET_DEN`, leaving a quiet tail.
const QUIET_NUM: u64 = 2;
const QUIET_DEN: u64 = 3;

/// Generate an adversarial fault-event list.
///
/// Pure function of its arguments: the same `(seed, nodes, horizon_ms,
/// profile)` always yields the same events (a property the determinism
/// tests pin down). Only nodes `0..nodes` (the servers) are targeted;
/// clients live at higher indices and fail only by implication.
pub fn generate(
    seed: u64,
    nodes: usize,
    horizon_ms: u64,
    profile: &IntensityProfile,
) -> Vec<NemesisEvent> {
    assert!(nodes >= 2, "nemesis needs at least two nodes to disrupt");
    let mut rng = SimRng::new(seed ^ 0x6e65_6d65_7369_7321); // "nemesis!"
    let fault_end = (horizon_ms * QUIET_NUM / QUIET_DEN).max(profile.min_window_ms + 2);
    let mut events = Vec::new();

    let window = |rng: &mut SimRng, profile: &IntensityProfile| -> (u64, u64) {
        let latest_start = fault_end.saturating_sub(profile.min_window_ms).max(2);
        let from = rng.range(1, latest_start);
        let len =
            rng.range(profile.min_window_ms, profile.max_window_ms.max(profile.min_window_ms + 1));
        (from, (from + len).min(fault_end))
    };

    // Partition flaps: sides may overlap across windows, which is the
    // interesting case (a node can be in the minority of one cut and the
    // majority of another).
    for _ in 0..rng.below(profile.max_partitions + 1) {
        let side_len = 1 + rng.below(nodes as u64 - 1) as usize;
        let mut ids: Vec<usize> = (0..nodes).collect();
        rng.shuffle(&mut ids);
        let mut side_a: Vec<usize> = ids.into_iter().take(side_len).collect();
        side_a.sort_unstable();
        let (from_ms, to_ms) = window(&mut rng, profile);
        events.push(NemesisEvent::Partition { side_a, from_ms, to_ms });
    }

    // Crash storms: per-node windows are kept disjoint so every Recover
    // pairs with the latest Crash of that node.
    let mut node_free_at = vec![0u64; nodes];
    for _ in 0..rng.below(profile.max_crashes + 1) {
        let node = rng.index(nodes);
        let (from_ms, to_ms) = window(&mut rng, profile);
        let from_ms = from_ms.max(node_free_at[node]);
        let to_ms = to_ms.max(from_ms);
        if from_ms >= fault_end || from_ms == to_ms {
            continue; // no room left for this node; drop the crash
        }
        node_free_at[node] = to_ms + 1;
        let amnesia = rng.below(100) < profile.amnesia_pct;
        events.push(NemesisEvent::Crash { node, from_ms, to_ms, amnesia });
    }

    // Loss bursts and latency skews set *global* knobs, so their windows
    // are laid out sequentially (an overlap would heal its predecessor
    // early and make shrinking semantics murky).
    let mut cursor = 1u64;
    for _ in 0..rng.below(profile.max_loss_bursts + 1) {
        if cursor + profile.min_window_ms >= fault_end {
            break;
        }
        let from_ms = rng.range(cursor, fault_end - profile.min_window_ms);
        let len =
            rng.range(profile.min_window_ms, profile.max_window_ms.max(profile.min_window_ms + 1));
        let to_ms = (from_ms + len).min(fault_end);
        let pct = rng.range(1, profile.max_loss_pct.max(2));
        events.push(NemesisEvent::LossBurst { pct, from_ms, to_ms });
        cursor = to_ms + 1;
    }
    let mut cursor = 1u64;
    for _ in 0..rng.below(profile.max_latency_skews + 1) {
        if cursor + profile.min_window_ms >= fault_end {
            break;
        }
        let from_ms = rng.range(cursor, fault_end - profile.min_window_ms);
        let len =
            rng.range(profile.min_window_ms, profile.max_window_ms.max(profile.min_window_ms + 1));
        let to_ms = (from_ms + len).min(fault_end);
        let factor_pct = rng.range(150, profile.max_latency_factor_pct.max(151));
        events.push(NemesisEvent::LatencySkew { factor_pct, from_ms, to_ms });
        cursor = to_ms + 1;
    }

    events
}

/// Compile a nemesis event list (or any subset of one — shrinking relies
/// on this) into a runnable [`FaultSchedule`].
pub fn to_schedule(events: &[NemesisEvent]) -> FaultSchedule {
    let mut schedule = FaultSchedule::none();
    for ev in events {
        schedule = match ev {
            NemesisEvent::Partition { side_a, from_ms, to_ms } => schedule.partition(
                side_a.iter().map(|&n| NodeId::from_index(n)).collect(),
                SimTime::from_millis(*from_ms),
                SimTime::from_millis(*to_ms),
            ),
            NemesisEvent::Crash { node, from_ms, to_ms, amnesia } => {
                let (at, until) = (SimTime::from_millis(*from_ms), SimTime::from_millis(*to_ms));
                if *amnesia {
                    schedule.crash_amnesia(NodeId::from_index(*node), at, until)
                } else {
                    schedule.crash(NodeId::from_index(*node), at, until)
                }
            }
            NemesisEvent::LossBurst { pct, from_ms, to_ms } => schedule
                .loss_rate(SimTime::from_millis(*from_ms), *pct as f64 / 100.0)
                .loss_rate(SimTime::from_millis(*to_ms), 0.0),
            NemesisEvent::LatencySkew { factor_pct, from_ms, to_ms } => schedule
                .latency_factor(SimTime::from_millis(*from_ms), *factor_pct)
                .latency_factor(SimTime::from_millis(*to_ms), 100),
        };
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        for seed in [0u64, 1, 7, 0xdead_beef] {
            let a = generate(seed, 5, 30_000, &IntensityProfile::medium());
            let b = generate(seed, 5, 30_000, &IntensityProfile::medium());
            assert_eq!(a, b);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "JSON encoding must be byte-identical"
            );
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let schedules: Vec<_> =
            (0..20u64).map(|s| generate(s, 5, 30_000, &IntensityProfile::heavy())).collect();
        let first = &schedules[0];
        assert!(schedules.iter().any(|s| s != first), "20 seeds produced identical schedules");
    }

    #[test]
    fn all_windows_close_before_the_quiet_tail() {
        for seed in 0..50u64 {
            for profile in
                [IntensityProfile::light(), IntensityProfile::medium(), IntensityProfile::heavy()]
            {
                let horizon = 30_000;
                let fault_end = horizon * QUIET_NUM / QUIET_DEN;
                for ev in generate(seed, 4, horizon, &profile) {
                    assert!(ev.from_ms() <= ev.to_ms(), "inverted window {ev:?}");
                    assert!(ev.to_ms() <= fault_end, "window leaks past quiet tail: {ev:?}");
                }
            }
        }
    }

    #[test]
    fn per_node_crash_windows_never_overlap() {
        for seed in 0..100u64 {
            let events = generate(seed, 3, 30_000, &IntensityProfile::heavy());
            let mut windows: Vec<(usize, u64, u64)> = events
                .iter()
                .filter_map(|e| match e {
                    NemesisEvent::Crash { node, from_ms, to_ms, .. } => {
                        Some((*node, *from_ms, *to_ms))
                    }
                    _ => None,
                })
                .collect();
            windows.sort_unstable();
            for pair in windows.windows(2) {
                if pair[0].0 == pair[1].0 {
                    assert!(
                        pair[0].2 < pair[1].1,
                        "seed {seed}: overlapping crash windows {pair:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn heavy_profile_produces_amnesia_crashes() {
        let found = (0..50u64).any(|seed| {
            generate(seed, 3, 30_000, &IntensityProfile::heavy())
                .iter()
                .any(|e| matches!(e, NemesisEvent::Crash { amnesia: true, .. }))
        });
        assert!(found, "heavy profile never produced an amnesia crash in 50 seeds");
    }

    #[test]
    fn subsets_compile_to_runnable_schedules() {
        let events = generate(11, 4, 30_000, &IntensityProfile::heavy());
        // Every prefix/suffix/single-element subset must compile (this is
        // what delta-debugging leans on).
        for i in 0..=events.len() {
            let _ = to_schedule(&events[..i]).compile();
            let _ = to_schedule(&events[i..]).compile();
        }
        for ev in &events {
            let _ = to_schedule(std::slice::from_ref(ev)).compile();
        }
    }

    #[test]
    fn events_roundtrip_through_json() {
        let events = generate(23, 5, 30_000, &IntensityProfile::heavy());
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<NemesisEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
