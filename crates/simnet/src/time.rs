//! Virtual time.
//!
//! All simulation time is a [`SimTime`]: microseconds since the start of the
//! run. Durations are plain microsecond counts wrapped in [`Duration`].
//! Keeping both as `u64` newtypes (rather than `std::time` types) makes the
//! arithmetic explicit, total, and serializable.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This time as microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Construct from fractional milliseconds (rounds to microseconds).
    pub fn from_millis_f64(ms: f64) -> Self {
        Duration((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// This duration as microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is uncertain.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), Duration::from_millis(5));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_millis(8));
    }

    #[test]
    fn fractional_conversions() {
        assert_eq!(Duration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(Duration::from_millis_f64(-3.0), Duration::ZERO);
        assert!((SimTime::from_micros(2_500).as_millis_f64() - 2.5).abs() < 1e-9);
        assert!((Duration::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(format!("{}", SimTime::from_micros(1_234)), "1.234ms");
        assert_eq!(format!("{}", Duration::from_micros(10)), "0.010ms");
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(Duration::from_millis(2).saturating_mul(3), Duration::from_millis(6));
        assert_eq!(Duration(u64::MAX).saturating_mul(2), Duration(u64::MAX));
    }
}
