//! Operation traces.
//!
//! Every experiment records the client-visible history of the run — one
//! [`OpRecord`] per completed (or failed) operation — into an [`OpTrace`].
//! The consistency checkers in the `consistency` crate consume *only* this
//! trace, never protocol internals, so a buggy protocol cannot hide from
//! its checker.
//!
//! Values are `u64`s; experiments give every write a globally unique value
//! so that reads unambiguously identify which write they observed (the
//! standard trick in linearizability checking).

use crate::sim::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// The kind of a client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read a key.
    Read,
    /// Write a key.
    Write,
}

/// One completed client operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    /// The session (client) that issued the operation.
    pub session: u64,
    /// Per-trace unique operation id, in issue order per session.
    pub op_id: u64,
    /// Key operated on.
    pub key: u64,
    /// Read or write.
    pub kind: OpKind,
    /// For writes: the (globally unique) value written.
    pub value_written: Option<u64>,
    /// For reads: the observed value(s). Multiple values = siblings returned
    /// by a multi-value register under concurrent writes; empty = key absent.
    pub value_read: Vec<u64>,
    /// When the client invoked the operation.
    pub invoked: SimTime,
    /// When the response arrived at the client.
    pub completed: SimTime,
    /// The replica that served the operation.
    pub replica: NodeId,
    /// Whether the operation succeeded (false = timeout / unavailable).
    pub ok: bool,
    /// For reads: the write-timestamp of the version returned, if the
    /// protocol exposes one (used for staleness measurement).
    pub version_ts: Option<SimTime>,
    /// Logical version stamp as a `(counter, actor)` Lamport pair: for
    /// writes, the stamp the replica assigned; for reads, the stamp of the
    /// version returned (maximum across siblings). Session-guarantee
    /// checkers compare these under the Lamport total order.
    pub stamp: Option<(u64, u64)>,
}

impl OpRecord {
    /// Client-observed latency of this operation.
    pub fn latency(&self) -> crate::time::Duration {
        self.completed.saturating_since(self.invoked)
    }
}

/// A full run's operation history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OpTrace {
    records: Vec<OpRecord>,
}

impl OpTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn push(&mut self, r: OpRecord) {
        self.records.push(r);
    }

    /// All records, in append order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one session, in issue order.
    pub fn session(&self, session: u64) -> impl Iterator<Item = &OpRecord> {
        self.records.iter().filter(move |r| r.session == session)
    }

    /// All successful records.
    pub fn successful(&self) -> impl Iterator<Item = &OpRecord> {
        self.records.iter().filter(|r| r.ok)
    }

    /// Distinct session ids present in the trace, ascending.
    pub fn sessions(&self) -> Vec<u64> {
        let mut s: Vec<u64> = self.records.iter().map(|r| r.session).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Sort records by completion time (checkers want real-time order).
    pub fn sort_by_completion(&mut self) {
        self.records.sort_by_key(|r| (r.completed, r.session, r.op_id));
    }

    /// Staleness of a read against the writes committed before it was
    /// invoked: how many acknowledged writes to `key` (completed at or
    /// before `at`) are newer than the version the read returned, and
    /// how long ago (µs) the newest such missed write was acknowledged.
    /// Returns `(0, 0)` for a perfectly fresh read.
    ///
    /// Records are appended at completion time, so `completed` is
    /// non-decreasing and the committed prefix is found by binary
    /// search; the per-key walk then runs newest-first and stops at the
    /// version the read observed, so fresh reads are cheap.
    pub fn read_staleness(&self, key: u64, at: SimTime, values_read: &[u64]) -> (u64, u64) {
        let prefix = self.records.partition_point(|r| r.completed <= at);
        let mut missed = 0u64;
        let mut newest_missed: Option<SimTime> = None;
        for r in self.records[..prefix].iter().rev() {
            if r.kind != OpKind::Write || !r.ok || r.key != key {
                continue;
            }
            if r.value_written.map(|v| values_read.contains(&v)).unwrap_or(false) {
                break; // writes older than the version read were superseded, not missed
            }
            missed += 1;
            if newest_missed.is_none() {
                newest_missed = Some(r.completed);
            }
        }
        let lag_us = newest_missed.map(|c| at.saturating_since(c).as_micros()).unwrap_or(0);
        (missed, lag_us)
    }

    /// Fraction of operations that succeeded.
    pub fn success_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.ok).count() as f64 / self.records.len() as f64
    }
}

/// A trace shared between client actors in a single-threaded simulation.
pub type SharedTrace = Rc<RefCell<OpTrace>>;

/// Create an empty shared trace.
pub fn shared_trace() -> SharedTrace {
    Rc::new(RefCell::new(OpTrace::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(session: u64, op_id: u64, kind: OpKind, ok: bool) -> OpRecord {
        OpRecord {
            session,
            op_id,
            key: 1,
            kind,
            value_written: (kind == OpKind::Write).then_some(op_id),
            value_read: if kind == OpKind::Read { vec![42] } else { vec![] },
            invoked: SimTime::from_millis(op_id),
            completed: SimTime::from_millis(op_id + 5),
            replica: NodeId(0),
            ok,
            version_ts: None,
            stamp: None,
        }
    }

    #[test]
    fn latency_is_completion_minus_invocation() {
        let r = rec(0, 3, OpKind::Read, true);
        assert_eq!(r.latency(), crate::time::Duration::from_millis(5));
    }

    #[test]
    fn session_filter() {
        let mut t = OpTrace::new();
        t.push(rec(0, 0, OpKind::Write, true));
        t.push(rec(1, 1, OpKind::Read, true));
        t.push(rec(0, 2, OpKind::Read, true));
        assert_eq!(t.session(0).count(), 2);
        assert_eq!(t.session(1).count(), 1);
        assert_eq!(t.sessions(), vec![0, 1]);
    }

    #[test]
    fn success_rate() {
        let mut t = OpTrace::new();
        assert_eq!(t.success_rate(), 1.0);
        t.push(rec(0, 0, OpKind::Write, true));
        t.push(rec(0, 1, OpKind::Write, false));
        assert_eq!(t.success_rate(), 0.5);
        assert_eq!(t.successful().count(), 1);
    }

    #[test]
    fn sort_by_completion_orders_records() {
        let mut t = OpTrace::new();
        t.push(rec(0, 9, OpKind::Read, true));
        t.push(rec(0, 1, OpKind::Read, true));
        t.sort_by_completion();
        assert!(t.records()[0].completed <= t.records()[1].completed);
        assert_eq!(t.records()[0].op_id, 1);
    }

    #[test]
    fn shared_trace_is_shared() {
        let s = shared_trace();
        let s2 = s.clone();
        s.borrow_mut().push(rec(0, 0, OpKind::Write, true));
        assert_eq!(s2.borrow().len(), 1);
    }
}
