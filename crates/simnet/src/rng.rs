//! Deterministic randomness.
//!
//! Every random choice in a simulation — latency samples, message loss,
//! workload keys — flows from a single [`SimRng`] seeded at construction.
//! [`SimRng::fork`] derives independent child streams so that, e.g., the
//! workload generator and the network can be reseeded independently without
//! perturbing each other's sequences when one of them changes.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded, forkable random number generator.
///
/// Backed by ChaCha8: fast, portable, and stable across platforms and rustc
/// versions (unlike `StdRng`, whose algorithm is unspecified). Stability
/// matters because `EXPERIMENTS.md` records concrete numbers for given seeds.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Derive an independent child stream.
    ///
    /// The child is keyed by the parent's seed material plus `stream`, so
    /// forks with distinct stream ids are statistically independent and
    /// reproducible.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut child = self.inner.clone();
        child.set_stream(stream.wrapping_add(1)); // stream 0 is the parent's
        SimRng { inner: child }
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below called with bound 0");
        self.inner.random_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range called with empty range");
        self.inner.random_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random::<f64>() < p
        }
    }

    /// Standard normal sample via the Box–Muller transform.
    ///
    /// `rand_distr` is not among the approved offline crates, so we carry
    /// our own two-line implementation; it is exercised by the statistical
    /// tests below.
    pub fn std_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1: f64 = 1.0 - self.inner.random::<f64>();
        let u2: f64 = self.inner.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal sample with the given median and shape `sigma`.
    ///
    /// `median` is the 50th percentile of the resulting distribution (the
    /// underlying normal has `mu = ln(median)`).
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        (median.max(f64::MIN_POSITIVE).ln() + sigma * self.std_normal()).exp()
    }

    /// Exponential sample with the given mean (inter-arrival times).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.inner.random::<f64>();
        -mean * u.ln()
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "SimRng::index called with empty slice length");
        self.inner.random_range(0..len)
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.random_range(0..=i);
            xs.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let parent = SimRng::new(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let mut c1_again = parent.fork(1);
        let s1: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let s2: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        let s1_again: Vec<u64> = (0..16).map(|_| c1_again.next_u64()).collect();
        assert_eq!(s1, s1_again);
        assert_ne!(s1, s2);
    }

    #[test]
    fn chance_edges() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn std_normal_moments() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.std_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut r = SimRng::new(13);
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| r.log_normal(10.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 10.0).abs() < 0.5, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(17);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(19);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(xs, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "bound 0")]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }
}
