//! The event queue.
//!
//! ## Ordering contract
//!
//! Every queue backend must pop events in strictly ascending
//! `(time, seq)` order, where `seq` is the monotonically increasing
//! insertion counter assigned by [`EventQueue::push`]. The time key
//! orders the simulation; the seq key breaks same-instant ties
//! deterministically: two events scheduled for the same microsecond
//! fire in the order they were scheduled, independent of the backend's
//! internal layout (heap sift order, wheel slot order, batch buffers).
//! The conformance suite in `tests/queue_conformance.rs` runs the same
//! schedules against every [`QueueKind`] and requires identical pop
//! sequences; `tests/queue_parity.rs` (workspace root) extends that to
//! byte-identical traces for whole protocol runs under nemesis.
//!
//! Two backends uphold the contract:
//!
//! * [`QueueKind::TimingWheel`] (default) — hierarchical timing wheel
//!   with slab-allocated envelopes and a far-future overflow heap; the
//!   hot path (see `docs/PERFORMANCE.md`).
//! * [`QueueKind::BinaryHeap`] — the original `std::collections`
//!   max-heap, kept as the reference implementation and the benchmark
//!   baseline `simbench` measures speedups against.

use crate::sim::NodeId;
use crate::time::SimTime;
use crate::wheel::TimingWheel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Debug)]
pub enum EventPayload<M> {
    /// Deliver a message to `to` (sent by `from`).
    Deliver {
        /// The sender.
        from: NodeId,
        /// The destination.
        to: NodeId,
        /// The message payload.
        msg: M,
        /// Trace active when the message was sent (0 = untraced). The
        /// envelope — not the payload type `M` — carries the causal
        /// context, so protocols get tracing without changing their
        /// message enums.
        trace: u64,
        /// Span active when the message was sent (0 = none).
        span: u64,
    },
    /// Fire timer `timer_id` (carrying an actor-chosen `tag`) at `node`.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Simulator-assigned timer id (for cancellation).
        timer_id: u64,
        /// Actor-chosen tag distinguishing timer purposes.
        tag: u64,
        /// Trace active when the timer was set (0 = untraced), restored
        /// as the active context when the timer fires.
        trace: u64,
        /// Span active when the timer was set (0 = none).
        span: u64,
    },
    /// Apply a scripted fault (crash, recover, partition change, ...).
    Fault(crate::faults::FaultEvent),
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event<M> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-breaking insertion sequence number.
    pub seq: u64,
    /// The action to perform.
    pub payload: EventPayload<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    /// The heap backend's view of the ordering contract: `BinaryHeap`
    /// is a max-heap, so the comparison is inverted — the "greatest"
    /// event is the one with the *smallest* `(time, seq)` key, which
    /// makes the heap pop the contract's ascending order. Backends that
    /// do not compare events (the timing wheel buckets by time and
    /// sorts ticks by seq) must derive the same schedule structurally.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which event-queue backend a simulation runs on. Both are
/// observationally identical (same pop schedule, hence byte-identical
/// traces); they differ only in speed. See `docs/PERFORMANCE.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Hierarchical timing wheel + slab envelopes (the fast default).
    #[default]
    TimingWheel,
    /// The reference `std::collections::BinaryHeap` (benchmark baseline).
    BinaryHeap,
}

impl QueueKind {
    /// Both kinds, for conformance/parity sweeps.
    pub const ALL: [QueueKind; 2] = [QueueKind::TimingWheel, QueueKind::BinaryHeap];

    /// Stable lowercase label (`"wheel"` / `"heap"`), used in benchmark
    /// output and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            QueueKind::TimingWheel => "wheel",
            QueueKind::BinaryHeap => "heap",
        }
    }

    /// Parse a [`QueueKind::label`] string.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "wheel" => Some(QueueKind::TimingWheel),
            "heap" => Some(QueueKind::BinaryHeap),
            _ => None,
        }
    }
}

#[derive(Debug)]
enum Backend<M> {
    Heap(BinaryHeap<Event<M>>),
    Wheel(TimingWheel<M>),
}

/// A deterministic priority queue of simulation events.
///
/// `push` assigns each event the next value of a monotonically
/// increasing insertion counter (`seq`); `pop` returns events in the
/// ascending `(time, seq)` order of the module-level contract,
/// whichever backend is in use.
#[derive(Debug)]
pub struct EventQueue<M> {
    backend: Backend<M>,
    next_seq: u64,
    /// Incremental count of pending `Deliver` events, maintained on
    /// push/pop so [`EventQueue::deliver_count`] is O(1) instead of a
    /// whole-heap/slab walk (debug builds assert it against the walked
    /// count).
    delivers: usize,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Create an empty queue on the default backend (the timing wheel).
    pub fn new() -> Self {
        Self::with_kind(QueueKind::default())
    }

    /// Create an empty queue on the given backend.
    pub fn with_kind(kind: QueueKind) -> Self {
        let backend = match kind {
            QueueKind::BinaryHeap => Backend::Heap(BinaryHeap::new()),
            QueueKind::TimingWheel => Backend::Wheel(TimingWheel::new()),
        };
        EventQueue { backend, next_seq: 0, delivers: 0 }
    }

    /// Schedule `payload` to fire at `at`. The event is stamped with the
    /// next insertion sequence number, which is what makes same-instant
    /// events fire in scheduling order on every backend.
    pub fn push(&mut self, at: SimTime, payload: EventPayload<M>) {
        if matches!(payload, EventPayload::Deliver { .. }) {
            self.delivers += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Event { at, seq, payload }),
            Backend::Wheel(wheel) => wheel.push(at, seq, payload),
        }
    }

    /// Debit the incremental deliver count for an event leaving the queue.
    fn note_popped(&mut self, ev: Option<Event<M>>) -> Option<Event<M>> {
        if let Some(ev) = &ev {
            if matches!(ev.payload, EventPayload::Deliver { .. }) {
                self.delivers -= 1;
            }
        }
        ev
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        let ev = match &mut self.backend {
            Backend::Heap(heap) => heap.pop(),
            Backend::Wheel(wheel) => wheel.pop(),
        };
        self.note_popped(ev)
    }

    /// Pop the earliest event if it fires at or before `deadline`. One
    /// queue probe instead of a peek-then-pop pair — the shape of the
    /// simulator's `run_until` hot loop.
    pub fn pop_if_at_most(&mut self, deadline: SimTime) -> Option<Event<M>> {
        let ev = match &mut self.backend {
            Backend::Heap(heap) => {
                if heap.peek().is_some_and(|e| e.at <= deadline) {
                    heap.pop()
                } else {
                    None
                }
            }
            Backend::Wheel(wheel) => {
                if wheel.peek_time().is_some_and(|t| t <= deadline) {
                    wheel.pop()
                } else {
                    None
                }
            }
        };
        self.note_popped(ev)
    }

    /// Time of the earliest pending event. (The wheel may pre-drain its
    /// next tick into the batch buffer to answer; that is invisible to
    /// callers.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.peek().map(|e| e.at),
            Backend::Wheel(wheel) => wheel.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Wheel(wheel) => wheel.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pending `Deliver` events — the messages currently "in
    /// flight" in the simulated network. O(1): maintained incrementally
    /// on push/pop (debug builds cross-check it against a full walk of
    /// the backend).
    pub fn deliver_count(&self) -> usize {
        debug_assert_eq!(
            self.delivers,
            match &self.backend {
                Backend::Heap(heap) => heap
                    .iter()
                    .filter(|e| matches!(e.payload, EventPayload::Deliver { .. }))
                    .count(),
                Backend::Wheel(wheel) => wheel.walk_deliver_count(),
            },
            "incremental deliver count diverged from the walked count"
        );
        self.delivers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer_at<M>(q: &mut EventQueue<M>, t: u64, tag: u64) {
        q.push(
            SimTime::from_micros(t),
            EventPayload::Timer { node: NodeId(0), timer_id: 0, tag, trace: 0, span: 0 },
        );
    }

    fn drain_tags(q: &mut EventQueue<()>) -> Vec<u64> {
        let mut tags = Vec::new();
        while let Some(e) = q.pop() {
            if let EventPayload::Timer { tag, .. } = e.payload {
                tags.push(tag);
            }
        }
        tags
    }

    /// The per-backend conformance suite: every `QueueKind` must pass
    /// every check. Cross-backend equivalence over randomized schedules
    /// lives in `tests/queue_conformance.rs`.
    fn for_each_kind(check: impl Fn(EventQueue<()>, QueueKind)) {
        for kind in QueueKind::ALL {
            check(EventQueue::with_kind(kind), kind);
        }
    }

    #[test]
    fn pops_in_time_order() {
        for_each_kind(|mut q, kind| {
            timer_at(&mut q, 30, 3);
            timer_at(&mut q, 10, 1);
            timer_at(&mut q, 20, 2);
            assert_eq!(drain_tags(&mut q), vec![1, 2, 3], "{kind:?}");
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for_each_kind(|mut q, kind| {
            for tag in 0..10 {
                timer_at(&mut q, 5, tag);
            }
            assert_eq!(drain_tags(&mut q), (0..10).collect::<Vec<_>>(), "{kind:?}");
        });
    }

    #[test]
    fn peek_time_tracks_min() {
        for_each_kind(|mut q, kind| {
            assert_eq!(q.peek_time(), None, "{kind:?}");
            timer_at(&mut q, 50, 0);
            timer_at(&mut q, 7, 1);
            assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)), "{kind:?}");
            q.pop();
            assert_eq!(q.peek_time(), Some(SimTime::from_micros(50)), "{kind:?}");
        });
    }

    #[test]
    fn pop_if_at_most_respects_the_deadline() {
        for_each_kind(|mut q, kind| {
            timer_at(&mut q, 40, 0);
            assert!(q.pop_if_at_most(SimTime::from_micros(39)).is_none(), "{kind:?}");
            assert_eq!(q.len(), 1, "{kind:?}");
            let ev = q.pop_if_at_most(SimTime::from_micros(40)).expect("due event pops");
            assert_eq!(ev.at, SimTime::from_micros(40), "{kind:?}");
            assert!(q.pop_if_at_most(SimTime::MAX).is_none(), "{kind:?}");
        });
    }

    #[test]
    fn deliver_count_tracks_in_flight_messages() {
        for_each_kind(|mut q, kind| {
            assert_eq!(q.deliver_count(), 0, "{kind:?}");
            q.push(
                SimTime::from_micros(1),
                EventPayload::Deliver {
                    from: NodeId(0),
                    to: NodeId(1),
                    msg: (),
                    trace: 0,
                    span: 0,
                },
            );
            timer_at(&mut q, 2, 0);
            assert_eq!(q.deliver_count(), 1, "{kind:?}");
            q.pop(); // the deliver fires first
            assert_eq!(q.deliver_count(), 0, "{kind:?}");
            assert_eq!(q.len(), 1, "{kind:?}");
        });
    }

    #[test]
    fn len_and_is_empty() {
        for_each_kind(|mut q, kind| {
            assert!(q.is_empty(), "{kind:?}");
            timer_at(&mut q, 1, 0);
            assert_eq!(q.len(), 1, "{kind:?}");
            q.pop();
            assert!(q.is_empty(), "{kind:?}");
        });
    }
}
