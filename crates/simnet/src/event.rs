//! The event queue.
//!
//! Events are ordered by `(time, seq)` where `seq` is a monotonically
//! increasing insertion counter. The counter breaks ties deterministically:
//! two events scheduled for the same instant fire in the order they were
//! scheduled, independent of heap internals.

use crate::sim::NodeId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Debug)]
pub enum EventPayload<M> {
    /// Deliver a message to `to` (sent by `from`).
    Deliver {
        /// The sender.
        from: NodeId,
        /// The destination.
        to: NodeId,
        /// The message payload.
        msg: M,
        /// Trace active when the message was sent (0 = untraced). The
        /// envelope — not the payload type `M` — carries the causal
        /// context, so protocols get tracing without changing their
        /// message enums.
        trace: u64,
        /// Span active when the message was sent (0 = none).
        span: u64,
    },
    /// Fire timer `timer_id` (carrying an actor-chosen `tag`) at `node`.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Simulator-assigned timer id (for cancellation).
        timer_id: u64,
        /// Actor-chosen tag distinguishing timer purposes.
        tag: u64,
        /// Trace active when the timer was set (0 = untraced), restored
        /// as the active context when the timer fires.
        trace: u64,
        /// Span active when the timer was set (0 = none).
        span: u64,
    },
    /// Apply a scripted fault (crash, recover, partition change, ...).
    Fault(crate::faults::FaultEvent),
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event<M> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-breaking insertion sequence number.
    pub seq: u64,
    /// The action to perform.
    pub payload: EventPayload<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of simulation events.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: EventPayload<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, payload });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending `Deliver` events — the messages currently "in
    /// flight" in the simulated network. O(len); used by low-frequency
    /// telemetry probes, not the hot path.
    pub fn deliver_count(&self) -> usize {
        self.heap.iter().filter(|e| matches!(e.payload, EventPayload::Deliver { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer_at<M>(q: &mut EventQueue<M>, t: u64, tag: u64) {
        q.push(
            SimTime::from_micros(t),
            EventPayload::Timer { node: NodeId(0), timer_id: 0, tag, trace: 0, span: 0 },
        );
    }

    fn drain_tags(q: &mut EventQueue<()>) -> Vec<u64> {
        let mut tags = Vec::new();
        while let Some(e) = q.pop() {
            if let EventPayload::Timer { tag, .. } = e.payload {
                tags.push(tag);
            }
        }
        tags
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        timer_at(&mut q, 30, 3);
        timer_at(&mut q, 10, 1);
        timer_at(&mut q, 20, 2);
        assert_eq!(drain_tags(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        for tag in 0..10 {
            timer_at(&mut q, 5, tag);
        }
        assert_eq!(drain_tags(&mut q), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_min() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        timer_at(&mut q, 50, 0);
        timer_at(&mut q, 7, 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(50)));
    }

    #[test]
    fn deliver_count_tracks_in_flight_messages() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.deliver_count(), 0);
        q.push(
            SimTime::from_micros(1),
            EventPayload::Deliver { from: NodeId(0), to: NodeId(1), msg: (), trace: 0, span: 0 },
        );
        timer_at(&mut q, 2, 0);
        assert_eq!(q.deliver_count(), 1);
        q.pop(); // the deliver fires first
        assert_eq!(q.deliver_count(), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        timer_at(&mut q, 1, 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
