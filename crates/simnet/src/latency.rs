//! Message latency models.
//!
//! The tutorial's latency/consistency trade-off results depend on the
//! *relative* cost of intra- vs. inter-datacenter messages, so the model
//! that matters most is [`LatencyModel::GeoMatrix`], seeded from published
//! inter-region round-trip times. The simpler models support unit tests and
//! microbenchmarks.

use crate::rng::SimRng;
use crate::sim::NodeId;
use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// How long a message takes from one node to another.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(Duration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Minimum one-way latency.
        min: Duration,
        /// Maximum one-way latency.
        max: Duration,
    },
    /// Log-normal with the given one-way median and shape; heavy-tailed,
    /// the standard model for datacenter RPC latency.
    LogNormal {
        /// Median one-way latency.
        median: Duration,
        /// Shape parameter of the log-normal (larger = heavier tail).
        sigma: f64,
    },
    /// Geo-replicated deployment: each node lives in a region; one-way
    /// latency is half the region-pair RTT plus log-normal jitter.
    GeoMatrix {
        /// `region_of[node]` = region index of that node.
        region_of: Vec<usize>,
        /// `rtt_ms[a][b]` = round-trip time between regions `a` and `b`, in
        /// milliseconds. Must be square and at least `max(region_of)+1` wide.
        rtt_ms: Vec<Vec<f64>>,
        /// Multiplicative jitter shape (log-normal sigma); 0 disables jitter.
        jitter_sigma: f64,
    },
}

impl LatencyModel {
    /// A typical intra-datacenter link: 0.5 ms median, mild tail.
    pub fn lan() -> Self {
        LatencyModel::LogNormal { median: Duration::from_micros(500), sigma: 0.3 }
    }

    /// A five-region global deployment with RTTs shaped like published
    /// us-east / us-west / eu / ap-southeast / ap-northeast numbers.
    ///
    /// `region_of` is built round-robin for `n` nodes.
    pub fn geo_five_regions(n: usize) -> Self {
        // Approximate public inter-region RTT matrix (milliseconds).
        const RTT: [[f64; 5]; 5] = [
            //  use    usw    eu     apse   apne
            [1.0, 65.0, 75.0, 230.0, 160.0],  // us-east
            [65.0, 1.0, 140.0, 175.0, 110.0], // us-west
            [75.0, 140.0, 1.0, 300.0, 220.0], // eu-west
            [230.0, 175.0, 300.0, 1.0, 70.0], // ap-southeast
            [160.0, 110.0, 220.0, 70.0, 1.0], // ap-northeast
        ];
        LatencyModel::GeoMatrix {
            region_of: (0..n).map(|i| i % 5).collect(),
            rtt_ms: RTT.iter().map(|row| row.to_vec()).collect(),
            jitter_sigma: 0.1,
        }
    }

    /// Sample the one-way latency for a message from `from` to `to`.
    pub fn sample(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> Duration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                if min >= max {
                    *min
                } else {
                    Duration::from_micros(rng.range(min.as_micros(), max.as_micros() + 1))
                }
            }
            LatencyModel::LogNormal { median, sigma } => {
                let us = rng.log_normal(median.as_micros() as f64, *sigma);
                Duration::from_micros(us.round().max(1.0) as u64)
            }
            LatencyModel::GeoMatrix { region_of, rtt_ms, jitter_sigma } => {
                let ra = region_of[from.index() % region_of.len()];
                let rb = region_of[to.index() % region_of.len()];
                let one_way_ms = rtt_ms[ra][rb] / 2.0;
                let jittered = if *jitter_sigma > 0.0 {
                    rng.log_normal(one_way_ms, *jitter_sigma)
                } else {
                    one_way_ms
                };
                Duration::from_millis_f64(jittered.max(0.001))
            }
        }
    }

    /// The region a node belongs to, if this is a geo model.
    pub fn region_of(&self, node: NodeId) -> Option<usize> {
        match self {
            LatencyModel::GeoMatrix { region_of, .. } => {
                Some(region_of[node.index() % region_of.len()])
            }
            _ => None,
        }
    }

    /// Deterministic *expected* one-way latency between two nodes (no
    /// jitter); used by SLA monitors to seed their predictions.
    pub fn expected(&self, from: NodeId, to: NodeId) -> Duration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                Duration::from_micros((min.as_micros() + max.as_micros()) / 2)
            }
            LatencyModel::LogNormal { median, .. } => *median,
            LatencyModel::GeoMatrix { region_of, rtt_ms, .. } => {
                let ra = region_of[from.index() % region_of.len()];
                let rb = region_of[to.index() % region_of.len()];
                Duration::from_millis_f64(rtt_ms[ra][rb] / 2.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(Duration::from_millis(3));
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(m.sample(NodeId(0), NodeId(1), &mut rng), Duration::from_millis(3));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let m = LatencyModel::Uniform {
            min: Duration::from_micros(100),
            max: Duration::from_micros(200),
        };
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let d = m.sample(NodeId(0), NodeId(1), &mut rng);
            assert!((100..=200).contains(&d.as_micros()), "{d:?}");
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let m = LatencyModel::Uniform {
            min: Duration::from_micros(50),
            max: Duration::from_micros(50),
        };
        let mut rng = SimRng::new(3);
        assert_eq!(m.sample(NodeId(0), NodeId(1), &mut rng), Duration::from_micros(50));
    }

    #[test]
    fn lognormal_positive_and_near_median() {
        let m = LatencyModel::LogNormal { median: Duration::from_millis(10), sigma: 0.4 };
        let mut rng = SimRng::new(4);
        let mut samples: Vec<u64> =
            (0..4001).map(|_| m.sample(NodeId(0), NodeId(1), &mut rng).as_micros()).collect();
        samples.sort_unstable();
        assert!(samples[0] >= 1);
        let median = samples[samples.len() / 2] as f64;
        assert!((median - 10_000.0).abs() < 1_000.0, "median {median}");
    }

    #[test]
    fn geo_local_faster_than_remote() {
        let m = LatencyModel::geo_five_regions(10);
        let mut rng = SimRng::new(5);
        // Nodes 0 and 5 share region 0; node 3 is in region 3 (ap-southeast).
        let mut local = 0.0;
        let mut remote = 0.0;
        for _ in 0..200 {
            local += m.sample(NodeId(0), NodeId(5), &mut rng).as_millis_f64();
            remote += m.sample(NodeId(0), NodeId(3), &mut rng).as_millis_f64();
        }
        assert!(local / 200.0 < 2.0, "local mean {}", local / 200.0);
        assert!(remote / 200.0 > 80.0, "remote mean {}", remote / 200.0);
    }

    #[test]
    fn geo_expected_matches_matrix() {
        let m = LatencyModel::geo_five_regions(5);
        // us-east <-> eu-west RTT is 75ms, so expected one-way is 37.5ms.
        let d = m.expected(NodeId(0), NodeId(2));
        assert_eq!(d, Duration::from_micros(37_500));
        assert_eq!(m.region_of(NodeId(2)), Some(2));
        assert_eq!(m.region_of(NodeId(7)), Some(2));
    }

    #[test]
    fn expected_for_simple_models() {
        assert_eq!(
            LatencyModel::Constant(Duration::from_millis(4)).expected(NodeId(0), NodeId(1)),
            Duration::from_millis(4)
        );
        assert_eq!(
            LatencyModel::Uniform {
                min: Duration::from_micros(10),
                max: Duration::from_micros(30)
            }
            .expected(NodeId(0), NodeId(1)),
            Duration::from_micros(20)
        );
        assert_eq!(LatencyModel::lan().expected(NodeId(0), NodeId(1)), Duration::from_micros(500));
    }
}
