//! Scripted fault injection.
//!
//! CAP-style availability results (experiment E4) hinge on *exactly when*
//! which nodes can talk; a [`FaultSchedule`] scripts that: timed network
//! partitions, per-window message-loss probability, and node
//! crashes/recoveries. The schedule is compiled into plain events on the
//! simulation queue, so faults interleave deterministically with protocol
//! messages.

use crate::sim::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A network partition: nodes in `side_a` cannot exchange messages with any
/// node *not* in `side_a` while the partition is active. (Messages within a
/// side flow normally.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    /// One side of the cut.
    pub side_a: Vec<NodeId>,
    /// When the cut happens.
    pub start: SimTime,
    /// When the cut heals.
    pub end: SimTime,
}

/// A single scripted fault transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Begin a partition with the given side-A membership.
    PartitionStart {
        /// Identifier used to heal this partition later.
        id: usize,
        /// Nodes on side A; everyone else is side B.
        side_a: Vec<NodeId>,
    },
    /// Heal the partition with the given id.
    PartitionEnd {
        /// The id given at `PartitionStart`.
        id: usize,
    },
    /// Crash a node: it loses in-flight timers and drops incoming messages
    /// until recovery.
    Crash {
        /// The node to crash.
        node: NodeId,
    },
    /// Recover a crashed node (volatile state intact; protocols that need
    /// amnesia semantics model it themselves).
    Recover {
        /// The node to recover.
        node: NodeId,
    },
    /// Set the global message-loss probability.
    SetLossRate {
        /// Probability in `[0, 1]` that any message is dropped.
        p: f64,
    },
}

/// A declarative schedule of faults for one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    partitions: Vec<Partition>,
    crashes: Vec<(SimTime, NodeId)>,
    recoveries: Vec<(SimTime, NodeId)>,
    loss_changes: Vec<(SimTime, f64)>,
}

impl FaultSchedule {
    /// An empty (fault-free) schedule.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a partition window.
    pub fn partition(mut self, side_a: Vec<NodeId>, start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "partition must end after it starts");
        self.partitions.push(Partition { side_a, start, end });
        self
    }

    /// Crash `node` at `at`, recovering at `until`.
    pub fn crash(mut self, node: NodeId, at: SimTime, until: SimTime) -> Self {
        assert!(at <= until, "crash must recover after it happens");
        self.crashes.push((at, node));
        self.recoveries.push((until, node));
        self
    }

    /// Set the message-loss probability to `p` from `at` onward.
    pub fn loss_rate(mut self, at: SimTime, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss rate must be a probability");
        self.loss_changes.push((at, p));
        self
    }

    /// Flatten the schedule into `(time, event)` pairs for the event queue.
    pub fn compile(&self) -> Vec<(SimTime, FaultEvent)> {
        let mut out = Vec::new();
        for (id, p) in self.partitions.iter().enumerate() {
            out.push((p.start, FaultEvent::PartitionStart { id, side_a: p.side_a.clone() }));
            out.push((p.end, FaultEvent::PartitionEnd { id }));
        }
        for &(t, n) in &self.crashes {
            out.push((t, FaultEvent::Crash { node: n }));
        }
        for &(t, n) in &self.recoveries {
            out.push((t, FaultEvent::Recover { node: n }));
        }
        for &(t, p) in &self.loss_changes {
            out.push((t, FaultEvent::SetLossRate { p }));
        }
        // Stable order: by time, then by construction order (Vec is stable).
        out.sort_by_key(|(t, _)| *t);
        out
    }
}

/// Live fault state maintained by the simulator while running.
#[derive(Debug, Default)]
pub struct FaultState {
    /// Active partitions, by id, as the side-A membership set.
    active_partitions: Vec<(usize, HashSet<usize>)>,
    /// Currently crashed nodes.
    crashed: HashSet<usize>,
    /// Current message-loss probability.
    pub loss_rate: f64,
}

impl FaultState {
    /// Apply a fault transition.
    pub fn apply(&mut self, ev: &FaultEvent) {
        match ev {
            FaultEvent::PartitionStart { id, side_a } => {
                self.active_partitions.push((*id, side_a.iter().map(|n| n.0).collect()));
            }
            FaultEvent::PartitionEnd { id } => {
                self.active_partitions.retain(|(pid, _)| pid != id);
            }
            FaultEvent::Crash { node } => {
                self.crashed.insert(node.0);
            }
            FaultEvent::Recover { node } => {
                self.crashed.remove(&node.0);
            }
            FaultEvent::SetLossRate { p } => {
                self.loss_rate = *p;
            }
        }
    }

    /// Whether a message from `a` to `b` is cut by any active partition.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.active_partitions.iter().any(|(_, side)| side.contains(&a.0) != side.contains(&b.0))
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn compile_orders_by_time() {
        let s = FaultSchedule::none()
            .crash(NodeId(2), t(50), t(90))
            .partition(vec![NodeId(0)], t(10), t(60))
            .loss_rate(t(5), 0.1);
        let evs = s.compile();
        let times: Vec<u64> = evs.iter().map(|(t, _)| t.as_micros() / 1000).collect();
        assert_eq!(times, vec![5, 10, 50, 60, 90]);
    }

    #[test]
    fn partition_cuts_across_but_not_within() {
        let mut st = FaultState::default();
        st.apply(&FaultEvent::PartitionStart { id: 0, side_a: vec![NodeId(0), NodeId(1)] });
        assert!(st.is_partitioned(NodeId(0), NodeId(2)));
        assert!(st.is_partitioned(NodeId(2), NodeId(1)));
        assert!(!st.is_partitioned(NodeId(0), NodeId(1)));
        assert!(!st.is_partitioned(NodeId(2), NodeId(3)));
        st.apply(&FaultEvent::PartitionEnd { id: 0 });
        assert!(!st.is_partitioned(NodeId(0), NodeId(2)));
    }

    #[test]
    fn overlapping_partitions() {
        let mut st = FaultState::default();
        st.apply(&FaultEvent::PartitionStart { id: 0, side_a: vec![NodeId(0)] });
        st.apply(&FaultEvent::PartitionStart { id: 1, side_a: vec![NodeId(1)] });
        assert!(st.is_partitioned(NodeId(0), NodeId(1)));
        st.apply(&FaultEvent::PartitionEnd { id: 0 });
        // Partition 1 still isolates node 1.
        assert!(st.is_partitioned(NodeId(0), NodeId(1)));
        st.apply(&FaultEvent::PartitionEnd { id: 1 });
        assert!(!st.is_partitioned(NodeId(0), NodeId(1)));
    }

    #[test]
    fn crash_and_recover() {
        let mut st = FaultState::default();
        assert!(!st.is_crashed(NodeId(3)));
        st.apply(&FaultEvent::Crash { node: NodeId(3) });
        assert!(st.is_crashed(NodeId(3)));
        st.apply(&FaultEvent::Recover { node: NodeId(3) });
        assert!(!st.is_crashed(NodeId(3)));
    }

    #[test]
    fn loss_rate_applies() {
        let mut st = FaultState::default();
        assert_eq!(st.loss_rate, 0.0);
        st.apply(&FaultEvent::SetLossRate { p: 0.25 });
        assert_eq!(st.loss_rate, 0.25);
    }

    #[test]
    #[should_panic(expected = "must end after")]
    fn bad_partition_window_panics() {
        let _ = FaultSchedule::none().partition(vec![NodeId(0)], t(10), t(5));
    }
}
