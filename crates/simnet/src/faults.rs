//! Scripted fault injection.
//!
//! CAP-style availability results (experiment E4) hinge on *exactly when*
//! which nodes can talk; a [`FaultSchedule`] scripts that: timed network
//! partitions, per-window message-loss probability, and node
//! crashes/recoveries. The schedule is compiled into plain events on the
//! simulation queue, so faults interleave deterministically with protocol
//! messages.

use crate::sim::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A network partition: nodes in `side_a` cannot exchange messages with any
/// node *not* in `side_a` while the partition is active. (Messages within a
/// side flow normally.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    /// One side of the cut.
    pub side_a: Vec<NodeId>,
    /// When the cut happens.
    pub start: SimTime,
    /// When the cut heals.
    pub end: SimTime,
}

/// A single scripted fault transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Begin a partition with the given side-A membership.
    PartitionStart {
        /// Identifier used to heal this partition later.
        id: usize,
        /// Nodes on side A; everyone else is side B.
        side_a: Vec<NodeId>,
    },
    /// Heal the partition with the given id.
    PartitionEnd {
        /// The id given at `PartitionStart`.
        id: usize,
    },
    /// Crash a node: it loses in-flight timers and drops incoming messages
    /// until recovery.
    Crash {
        /// The node to crash.
        node: NodeId,
    },
    /// Recover a crashed node.
    Recover {
        /// The node to recover.
        node: NodeId,
        /// With `amnesia: false` (the default every existing builder
        /// uses, preserving historical behavior) volatile state survives
        /// the crash untouched. With `amnesia: true` the node restarts
        /// *empty*: the actor's `on_recover` hook must rebuild state from
        /// durable storage (WAL replay) — the semantics a real process
        /// restart has.
        amnesia: bool,
    },
    /// Set the global message-loss probability.
    SetLossRate {
        /// Probability in `[0, 1]` that any message is dropped.
        p: f64,
    },
    /// Scale all sampled network latencies by `factor_pct / 100` from now
    /// on (100 = nominal; 400 = 4× skew). Integer percent keeps fault
    /// schedules byte-stable under JSON round-trips.
    SetLatencyFactor {
        /// Latency multiplier in percent (clamped to at least 1).
        factor_pct: u64,
    },
    /// Cluster membership change: `node` joins (or leaves) the logical
    /// cluster. The node's actor stays deployed either way — membership
    /// is a routing-layer notion. Every actor's `on_membership` hook is
    /// invoked so ring-aware protocols rebalance ownership
    /// deterministically. (Appended last so existing corpus JSON
    /// round-trips unchanged.)
    MembershipChange {
        /// The node joining or leaving.
        node: NodeId,
        /// `true` = join, `false` = leave.
        join: bool,
    },
}

/// A declarative schedule of faults for one run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FaultSchedule {
    partitions: Vec<Partition>,
    crashes: Vec<(SimTime, NodeId)>,
    recoveries: Vec<(SimTime, NodeId, bool)>,
    loss_changes: Vec<(SimTime, f64)>,
    latency_changes: Vec<(SimTime, u64)>,
    /// `(time, node, join)` membership transitions. Defaults to empty
    /// when absent from JSON (hand-written `Deserialize` below) so
    /// pre-ring corpus reproducers keep loading.
    membership: Vec<(SimTime, NodeId, bool)>,
}

// Hand-written so the `membership` field — added after the reproducer
// corpus was pinned — defaults to empty instead of failing on corpus
// JSON that predates it. Every other field stays required, preserving
// the derive's strictness.
impl serde::Deserialize for FaultSchedule {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v.as_object().ok_or_else(|| serde::Error::custom("expected object"))?;
        fn req<T: serde::Deserialize>(
            obj: &[(String, serde::Value)],
            name: &str,
        ) -> Result<T, serde::Error> {
            match obj.iter().find(|(k, _)| k == name) {
                Some((_, v)) => T::from_value(v),
                None => Err(serde::Error::custom(format!("missing field `{name}`"))),
            }
        }
        let membership = match obj.iter().find(|(k, _)| k == "membership") {
            Some((_, v)) => Vec::from_value(v)?,
            None => Vec::new(),
        };
        Ok(FaultSchedule {
            partitions: req(obj, "partitions")?,
            crashes: req(obj, "crashes")?,
            recoveries: req(obj, "recoveries")?,
            loss_changes: req(obj, "loss_changes")?,
            latency_changes: req(obj, "latency_changes")?,
            membership,
        })
    }
}

impl FaultSchedule {
    /// An empty (fault-free) schedule.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a partition window.
    pub fn partition(mut self, side_a: Vec<NodeId>, start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "partition must end after it starts");
        self.partitions.push(Partition { side_a, start, end });
        self
    }

    /// Crash `node` at `at`, recovering at `until` with volatile state
    /// intact (fail-pause semantics).
    pub fn crash(mut self, node: NodeId, at: SimTime, until: SimTime) -> Self {
        assert!(at <= until, "crash must recover after it happens");
        self.crashes.push((at, node));
        self.recoveries.push((until, node, false));
        self
    }

    /// Crash `node` at `at`, recovering at `until` with **amnesia**: the
    /// node restarts empty and must rebuild from durable state (WAL
    /// replay) in its `on_recover` hook — fail-recover semantics.
    pub fn crash_amnesia(mut self, node: NodeId, at: SimTime, until: SimTime) -> Self {
        assert!(at <= until, "crash must recover after it happens");
        self.crashes.push((at, node));
        self.recoveries.push((until, node, true));
        self
    }

    /// Set the message-loss probability to `p` from `at` onward.
    pub fn loss_rate(mut self, at: SimTime, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss rate must be a probability");
        self.loss_changes.push((at, p));
        self
    }

    /// Scale all sampled latencies by `factor_pct / 100` from `at` onward
    /// (100 restores nominal latency).
    pub fn latency_factor(mut self, at: SimTime, factor_pct: u64) -> Self {
        self.latency_changes.push((at, factor_pct.max(1)));
        self
    }

    /// At `at`, have `node` join (`join = true`) or leave (`join =
    /// false`) the logical cluster. Ring-aware actors rebalance key
    /// ownership in their `on_membership` hook.
    pub fn membership(mut self, at: SimTime, node: NodeId, join: bool) -> Self {
        self.membership.push((at, node, join));
        self
    }

    /// Flatten the schedule into `(time, event)` pairs for the event queue.
    pub fn compile(&self) -> Vec<(SimTime, FaultEvent)> {
        let mut out = Vec::new();
        for (id, p) in self.partitions.iter().enumerate() {
            out.push((p.start, FaultEvent::PartitionStart { id, side_a: p.side_a.clone() }));
            out.push((p.end, FaultEvent::PartitionEnd { id }));
        }
        for &(t, n) in &self.crashes {
            out.push((t, FaultEvent::Crash { node: n }));
        }
        for &(t, n, amnesia) in &self.recoveries {
            out.push((t, FaultEvent::Recover { node: n, amnesia }));
        }
        for &(t, p) in &self.loss_changes {
            out.push((t, FaultEvent::SetLossRate { p }));
        }
        for &(t, factor_pct) in &self.latency_changes {
            out.push((t, FaultEvent::SetLatencyFactor { factor_pct }));
        }
        for &(t, node, join) in &self.membership {
            out.push((t, FaultEvent::MembershipChange { node, join }));
        }
        // Stable order: by time, then by construction order (Vec is stable).
        out.sort_by_key(|(t, _)| *t);
        out
    }
}

/// Live fault state maintained by the simulator while running.
#[derive(Debug)]
pub struct FaultState {
    /// Active partitions, by id, as the side-A membership set.
    active_partitions: Vec<(usize, HashSet<u32>)>,
    /// Currently crashed nodes.
    crashed: HashSet<u32>,
    /// Current message-loss probability.
    pub loss_rate: f64,
    /// Current latency multiplier in percent (100 = nominal).
    pub latency_factor_pct: u64,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState {
            active_partitions: Vec::new(),
            crashed: HashSet::new(),
            loss_rate: 0.0,
            latency_factor_pct: 100,
        }
    }
}

impl FaultState {
    /// Apply a fault transition.
    pub fn apply(&mut self, ev: &FaultEvent) {
        match ev {
            FaultEvent::PartitionStart { id, side_a } => {
                self.active_partitions.push((*id, side_a.iter().map(|n| n.0).collect()));
            }
            FaultEvent::PartitionEnd { id } => {
                self.active_partitions.retain(|(pid, _)| pid != id);
            }
            FaultEvent::Crash { node } => {
                self.crashed.insert(node.0);
            }
            FaultEvent::Recover { node, .. } => {
                self.crashed.remove(&node.0);
            }
            FaultEvent::SetLossRate { p } => {
                self.loss_rate = *p;
            }
            FaultEvent::SetLatencyFactor { factor_pct } => {
                self.latency_factor_pct = (*factor_pct).max(1);
            }
            // Membership is a routing-layer notion consumed by actors'
            // `on_membership` hooks; the network itself is unaffected.
            FaultEvent::MembershipChange { .. } => {}
        }
    }

    /// Whether a message from `a` to `b` is cut by any active partition.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.active_partitions.iter().any(|(_, side)| side.contains(&a.0) != side.contains(&b.0))
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn compile_orders_by_time() {
        let s = FaultSchedule::none()
            .crash(NodeId(2), t(50), t(90))
            .partition(vec![NodeId(0)], t(10), t(60))
            .loss_rate(t(5), 0.1);
        let evs = s.compile();
        let times: Vec<u64> = evs.iter().map(|(t, _)| t.as_micros() / 1000).collect();
        assert_eq!(times, vec![5, 10, 50, 60, 90]);
    }

    #[test]
    fn partition_cuts_across_but_not_within() {
        let mut st = FaultState::default();
        st.apply(&FaultEvent::PartitionStart { id: 0, side_a: vec![NodeId(0), NodeId(1)] });
        assert!(st.is_partitioned(NodeId(0), NodeId(2)));
        assert!(st.is_partitioned(NodeId(2), NodeId(1)));
        assert!(!st.is_partitioned(NodeId(0), NodeId(1)));
        assert!(!st.is_partitioned(NodeId(2), NodeId(3)));
        st.apply(&FaultEvent::PartitionEnd { id: 0 });
        assert!(!st.is_partitioned(NodeId(0), NodeId(2)));
    }

    #[test]
    fn overlapping_partitions() {
        let mut st = FaultState::default();
        st.apply(&FaultEvent::PartitionStart { id: 0, side_a: vec![NodeId(0)] });
        st.apply(&FaultEvent::PartitionStart { id: 1, side_a: vec![NodeId(1)] });
        assert!(st.is_partitioned(NodeId(0), NodeId(1)));
        st.apply(&FaultEvent::PartitionEnd { id: 0 });
        // Partition 1 still isolates node 1.
        assert!(st.is_partitioned(NodeId(0), NodeId(1)));
        st.apply(&FaultEvent::PartitionEnd { id: 1 });
        assert!(!st.is_partitioned(NodeId(0), NodeId(1)));
    }

    #[test]
    fn crash_and_recover() {
        let mut st = FaultState::default();
        assert!(!st.is_crashed(NodeId(3)));
        st.apply(&FaultEvent::Crash { node: NodeId(3) });
        assert!(st.is_crashed(NodeId(3)));
        st.apply(&FaultEvent::Recover { node: NodeId(3), amnesia: false });
        assert!(!st.is_crashed(NodeId(3)));
    }

    #[test]
    fn loss_rate_applies() {
        let mut st = FaultState::default();
        assert_eq!(st.loss_rate, 0.0);
        st.apply(&FaultEvent::SetLossRate { p: 0.25 });
        assert_eq!(st.loss_rate, 0.25);
    }

    #[test]
    fn latency_factor_applies_and_clamps() {
        let mut st = FaultState::default();
        assert_eq!(st.latency_factor_pct, 100);
        st.apply(&FaultEvent::SetLatencyFactor { factor_pct: 400 });
        assert_eq!(st.latency_factor_pct, 400);
        st.apply(&FaultEvent::SetLatencyFactor { factor_pct: 0 });
        assert_eq!(st.latency_factor_pct, 1, "factor clamps to at least 1%");
    }

    #[test]
    fn crash_amnesia_compiles_to_amnesiac_recover() {
        let s = FaultSchedule::none().crash(NodeId(1), t(10), t(20)).crash_amnesia(
            NodeId(2),
            t(30),
            t(40),
        );
        let evs = s.compile();
        assert!(evs
            .iter()
            .any(|(_, e)| *e == FaultEvent::Recover { node: NodeId(1), amnesia: false }));
        assert!(evs
            .iter()
            .any(|(_, e)| *e == FaultEvent::Recover { node: NodeId(2), amnesia: true }));
    }

    #[test]
    fn fault_events_roundtrip_through_json() {
        // Reproducer corpus files serialize fault events; the round trip
        // must preserve the amnesia knob and the latency factor exactly.
        for ev in [
            FaultEvent::Recover { node: NodeId(3), amnesia: true },
            FaultEvent::Recover { node: NodeId(1), amnesia: false },
            FaultEvent::SetLatencyFactor { factor_pct: 400 },
            FaultEvent::Crash { node: NodeId(2) },
            FaultEvent::MembershipChange { node: NodeId(7), join: false },
            FaultEvent::MembershipChange { node: NodeId(7), join: true },
        ] {
            let json = serde_json::to_string(&ev).unwrap();
            let back: FaultEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ev, "{json}");
        }
    }

    #[test]
    #[should_panic(expected = "must end after")]
    fn bad_partition_window_panics() {
        let _ = FaultSchedule::none().partition(vec![NodeId(0)], t(10), t(5));
    }

    #[test]
    fn membership_compiles_in_time_order() {
        let s = FaultSchedule::none()
            .membership(t(20), NodeId(4), false)
            .membership(t(40), NodeId(4), true)
            .crash(NodeId(1), t(30), t(35));
        let evs = s.compile();
        let times: Vec<u64> = evs.iter().map(|(t, _)| t.as_micros() / 1000).collect();
        assert_eq!(times, vec![20, 30, 35, 40]);
        assert_eq!(evs[0].1, FaultEvent::MembershipChange { node: NodeId(4), join: false });
        assert_eq!(evs[3].1, FaultEvent::MembershipChange { node: NodeId(4), join: true });
    }

    #[test]
    fn pre_ring_schedule_json_still_deserializes() {
        // Corpus files written before the membership field existed must
        // keep loading (serde default).
        let json = r#"{"partitions":[],"crashes":[],"recoveries":[],"loss_changes":[],"latency_changes":[]}"#;
        let s: FaultSchedule = serde_json::from_str(json).unwrap();
        assert!(s.compile().is_empty());
    }
}
