//! Small statistics helpers shared by the experiment harnesses.
//!
//! Nothing here is clever: percentiles use the nearest-rank method on a
//! sorted copy, histograms are fixed-width. The experiment binaries print
//! these as the "rows" of each table.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50, nearest rank).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// An all-zero summary for an empty sample.
    pub fn empty() -> Self {
        Summary { count: 0, mean: 0.0, min: 0.0, p50: 0.0, p90: 0.0, p99: 0.0, max: 0.0 }
    }
}

/// Compute summary statistics. Returns [`Summary::empty`] on empty input.
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary::empty();
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    Summary {
        count: sorted.len(),
        mean,
        min: sorted[0],
        p50: percentile_sorted(&sorted, 50.0),
        p90: percentile_sorted(&sorted, 90.0),
        p99: percentile_sorted(&sorted, 99.0),
        max: sorted[sorted.len() - 1],
    }
}

/// Nearest-rank percentile of an already-sorted sample. `p` in `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if p <= 0.0 {
        return sorted[0];
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Nearest-rank percentile of an unsorted sample (sorts a copy).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    percentile_sorted(&sorted, p)
}

/// An empirical CDF at the given probe points: for each probe `x`, the
/// fraction of samples `<= x`.
pub fn ecdf(samples: &[f64], probes: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    probes
        .iter()
        .map(|&x| {
            let cnt = sorted.partition_point(|&s| s <= x);
            (x, if sorted.is_empty() { 0.0 } else { cnt as f64 / sorted.len() as f64 })
        })
        .collect()
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets; values
/// outside the range clamp into the first/last bucket.
pub fn histogram(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<u64> {
    assert!(bins > 0 && hi > lo, "bad histogram shape");
    let mut counts = vec![0u64; bins];
    let width = (hi - lo) / bins as f64;
    for &s in samples {
        let idx = (((s - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = summarize(&xs);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn summary_empty() {
        assert_eq!(summarize(&[]), Summary::empty());
    }

    #[test]
    fn percentile_singleton() {
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
    }

    #[test]
    fn ecdf_monotone_and_bounded() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let cdf = ecdf(&xs, &[0.0, 1.0, 2.5, 4.0, 9.0]);
        let ps: Vec<f64> = cdf.iter().map(|&(_, p)| p).collect();
        assert_eq!(ps, vec![0.0, 0.25, 0.5, 1.0, 1.0]);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = vec![-1.0, 0.5, 1.5, 2.5, 99.0];
        let h = histogram(&xs, 0.0, 3.0, 3);
        assert_eq!(h, vec![2, 1, 2]);
        assert_eq!(h.iter().sum::<u64>() as usize, xs.len());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}
