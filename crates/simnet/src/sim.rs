//! The actor runtime.
//!
//! A [`Sim`] owns a set of actors (replicas and clients alike), the event
//! queue, the latency model, and the fault state. Actors never see wall
//! clocks, threads, or real sockets: they receive callbacks and emit
//! *effects* (sends, timers) through a [`Context`], which the simulator
//! turns into future events. This is what makes every run a pure function
//! of `(config, seed)`.

use crate::event::{Event, EventPayload, EventQueue, QueueKind};
use crate::faults::{FaultSchedule, FaultState};
use crate::latency::LatencyModel;
use crate::rng::SimRng;
use crate::time::{Duration, SimTime};
use obs::{
    Counter, DropReason, EventKind, HandlerKind, Probe, Recorder, SpanId, SpanStatus, TraceId,
    NO_VARIANT,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Identifies an actor in the simulation (replica or client).
///
/// Ids are compact `u32`s: actor tables are dense and start at 0, so
/// four billion nodes is not a practical limit, while halving the id
/// width shrinks every message envelope, fault record, and per-op
/// trace record on the hot path. Use [`NodeId::index`] to index
/// node-keyed slots and [`NodeId::from_index`] to build an id from a
/// table position (it panics loudly on overflow instead of silently
/// truncating).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// This id as a dense table index (node-keyed `Vec` slots).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The id for dense table position `i`. Panics when `i` exceeds
    /// `u32::MAX` — compact addressing is a hard limit, never a silent
    /// truncation.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        assert!(
            i <= u32::MAX as usize,
            "node index {i} exceeds compact u32 NodeId addressing (max {})",
            u32::MAX
        );
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol state machine.
///
/// All methods take a [`Context`] through which the actor reads the virtual
/// clock, sends messages, and manages timers. Implementations must not hold
/// wall-clock state; determinism depends on it.
pub trait Actor<M> {
    /// Called once when the simulation starts (before any event fires).
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// A message from `from` has been delivered.
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M);

    /// A timer set via [`Context::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Context<M>, _timer_id: u64, _tag: u64) {}

    /// The node has crashed (informational; the simulator already suppresses
    /// its messages and timers).
    fn on_crash(&mut self, _ctx: &mut Context<M>) {}

    /// The node has recovered from a crash. With `amnesia == false` the
    /// actor's in-memory state survived (fail-pause); with `amnesia ==
    /// true` the actor must treat its volatile state as lost and rebuild
    /// from whatever it models as durable (typically a WAL replay).
    /// Either way the simulator has already dropped the node's pending
    /// timers, so periodic timer chains must be re-armed here.
    fn on_recover(&mut self, _ctx: &mut Context<M>, _amnesia: bool) {}

    /// Cluster membership changed: `node` joined (`join == true`) or
    /// left (`join == false`) the logical cluster. Every actor observes
    /// every membership event (in node-id order), so ring-aware
    /// protocols keep identical ownership views and rebalance
    /// deterministically. Crashed actors observe it too — a down node
    /// must not wake up with a stale ring — but their effects are
    /// discarded. The default ignores membership (fixed-replica-set
    /// protocols and clients).
    fn on_membership(&mut self, _ctx: &mut Context<M>, _node: NodeId, _join: bool) {}

    /// The simulation is being torn down (horizon reached). Effects
    /// requested here are discarded — the run is over — but recorder
    /// access works, so actors can account for still-held state (e.g.
    /// undrained hinted-handoff hints) and keep conservation identities
    /// exact. The default does nothing.
    fn on_shutdown(&mut self, _ctx: &mut Context<M>) {}

    /// The versions of keys this actor currently stores, as `(key,
    /// version)` pairs, for replica-divergence telemetry probes: the
    /// driver counts distinct versions of each key across replicas at
    /// sampling instants. Version numbers only need to distinguish
    /// distinct states of a key (timestamps, sequence numbers, and
    /// stamps all qualify). The default (empty) opts an actor out of
    /// divergence probing — clients and non-storage actors keep it.
    fn key_versions(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }

    /// Stable role name the profiler keys this actor's handler samples
    /// by (e.g. `"replica"`, `"client"`; see `docs/PROFILING.md`).
    /// Purely observational — the simulator never branches on it.
    fn role(&self) -> &'static str {
        "node"
    }
}

/// Message-variant metadata the profiler uses to attribute handler
/// samples to message kinds.
///
/// Protocol `Msg` enums implement [`MsgMeta::variant_name`] with a
/// `match` returning each variant's name; driving a [`Sim`]
/// ([`Sim::step`]/[`Sim::run_until`]) requires the bound. The default
/// (`"msg"`) suits opaque message types, and blanket impls cover the
/// primitive message types tests and microbenchmarks use.
pub trait MsgMeta {
    /// Stable, static name of this message's variant, used as the
    /// profiler's `variant` key (see `docs/PROFILING.md`).
    fn variant_name(&self) -> &'static str {
        "msg"
    }
}

macro_rules! msg_meta_opaque {
    ($($t:ty),*) => {
        $(impl MsgMeta for $t {})*
    };
}
msg_meta_opaque!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, (), String);

/// Effects an actor requests during a callback; applied by the simulator
/// afterwards (sampling latencies, assigning timer ids). Sends and
/// timers capture the trace/span context active at the moment the
/// effect was requested, which is how causal context propagates without
/// touching the protocol message types.
enum Effect<M> {
    Send { to: NodeId, msg: M, trace: u64, span: u64 },
    SendLocal { to: NodeId, msg: M, after: Duration, trace: u64, span: u64 },
    Timer { id: u64, after: Duration, tag: u64, trace: u64, span: u64 },
    CancelTimer { id: u64 },
}

/// One currently-open trace span (value of the open-span table).
struct OpenSpan {
    trace: u64,
    parent: u64,
    node: u64,
}

/// Per-run span/trace bookkeeping: serial id allocators plus the table
/// of open spans. Ids are allocated in event-processing order, which is
/// deterministic, so traces are byte-identical across `--jobs` levels.
struct SpanBook {
    next_trace_id: u64,
    next_span_id: u64,
    /// Open spans by span id (`BTreeMap` so shutdown abandonment walks
    /// them in a deterministic order).
    open: BTreeMap<u64, OpenSpan>,
}

impl SpanBook {
    fn new(base: u64) -> Self {
        // 0 is reserved for "no trace/span"; `base` offsets a grid
        // cell's ids into its own range so a concatenated multi-cell
        // trace file still has globally unique trace/span ids.
        SpanBook { next_trace_id: base + 1, next_span_id: base + 1, open: BTreeMap::new() }
    }
}

/// The actor's window into the simulator during a callback.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: NodeId,
    rng: &'a mut SimRng,
    recorder: &'a Recorder,
    next_timer_id: &'a mut u64,
    effects: Vec<Effect<M>>,
    /// Trace/span context this callback runs under: the envelope of the
    /// delivered message or fired timer, updated by
    /// [`Context::start_trace`]/[`Context::span_open`]/[`Context::span_close`].
    active_trace: u64,
    active_span: u64,
    spans: &'a mut SpanBook,
}

impl<'a, M> Context<'a, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The simulation RNG (deterministic; shared by all actors).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The observability recorder, for protocol-level events (quorum
    /// waits, anti-entropy rounds, conflicts). Disabled recorders make
    /// every call a no-op, so actors can record unconditionally.
    pub fn recorder(&self) -> &Recorder {
        self.recorder
    }

    /// Record a protocol event at the current virtual time (shorthand
    /// for `ctx.recorder().record(ctx.now().as_micros(), kind)`).
    pub fn record(&self, kind: EventKind) {
        self.recorder.record(self.now.as_micros(), kind);
    }

    /// Send `msg` to `to`; it arrives after a latency sampled from the
    /// network model (or never, under loss/partition). The message
    /// envelope carries the currently active trace/span, so the
    /// receiver's callback resumes this causal context.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let (trace, span) = (self.active_trace, self.active_span);
        self.effects.push(Effect::Send { to, msg, trace, span });
    }

    /// Deliver `msg` to `to` after exactly `after`, bypassing the network
    /// model and faults. Used for intra-process handoff (e.g. a client
    /// co-located with its replica) and for self-messages.
    pub fn send_local(&mut self, to: NodeId, msg: M, after: Duration) {
        let (trace, span) = (self.active_trace, self.active_span);
        self.effects.push(Effect::SendLocal { to, msg, after, trace, span });
    }

    /// Set a one-shot timer; returns its id (usable with
    /// [`Context::cancel_timer`]). `tag` is an arbitrary actor-chosen value
    /// passed back to [`Actor::on_timer`]. The timer carries the
    /// currently active trace/span, restored when it fires (so e.g. a
    /// timeout handler runs in the context of the operation it guards).
    pub fn set_timer(&mut self, after: Duration, tag: u64) -> u64 {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        let (trace, span) = (self.active_trace, self.active_span);
        self.effects.push(Effect::Timer { id, after, tag, trace, span });
        id
    }

    /// Cancel a pending timer. Cancelling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: u64) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// The trace this callback currently runs under
    /// ([`TraceId::NONE`] outside any traced operation).
    pub fn active_trace(&self) -> TraceId {
        TraceId(self.active_trace)
    }

    /// The span this callback currently runs under
    /// ([`SpanId::NONE`] outside any traced operation).
    pub fn active_span(&self) -> SpanId {
        SpanId(self.active_span)
    }

    /// Begin a new trace with a root span named `name`, making it the
    /// active context: subsequent sends/timers in this callback carry
    /// it. Returns the root span's id; pair it with
    /// [`Context::active_trace`] if the trace id is needed too. The
    /// span stays open across callbacks until
    /// [`Context::span_close`] — store the id wherever the operation's
    /// pending state lives.
    pub fn start_trace(&mut self, name: &'static str) -> SpanId {
        let trace = self.spans.next_trace_id;
        self.spans.next_trace_id += 1;
        self.active_trace = trace;
        self.active_span = 0;
        self.open_span(name)
    }

    /// Open a child span of the active span (becoming the new active
    /// span). Returns [`SpanId::NONE`] and does nothing when no trace is
    /// active, so replicas can instrument handlers unconditionally —
    /// untraced background traffic (gossip, heartbeats) creates no
    /// orphan spans.
    pub fn span_open(&mut self, name: &'static str) -> SpanId {
        if self.active_trace == 0 {
            return SpanId::NONE;
        }
        self.open_span(name)
    }

    fn open_span(&mut self, name: &'static str) -> SpanId {
        let span = self.spans.next_span_id;
        self.spans.next_span_id += 1;
        let parent = self.active_span;
        let node = self.self_id.0 as u64;
        self.spans.open.insert(span, OpenSpan { trace: self.active_trace, parent, node });
        self.recorder.record(
            self.now.as_micros(),
            EventKind::SpanOpen { trace: self.active_trace, span, parent, node, name },
        );
        self.active_span = span;
        SpanId(span)
    }

    /// Make a previously-opened span the active context again (e.g. a
    /// client re-issuing a timed-out request from an untraced callback,
    /// so the retry's sends still carry the operation's trace). A
    /// closed, unknown, or [`SpanId::NONE`] span is a no-op.
    pub fn resume_span(&mut self, span: SpanId) {
        if let Some(open) = self.spans.open.get(&span.0) {
            self.active_trace = open.trace;
            self.active_span = span.0;
        }
    }

    /// Close an open span with the given status. Closing
    /// [`SpanId::NONE`] or an already-closed span is a no-op, so
    /// failure paths can close defensively. If the closed span is the
    /// active one, its parent becomes active again.
    pub fn span_close(&mut self, span: SpanId, status: SpanStatus) {
        let Some(open) = self.spans.open.remove(&span.0) else {
            return;
        };
        self.recorder.record(
            self.now.as_micros(),
            EventKind::SpanClose { trace: open.trace, span: span.0, node: open.node, status },
        );
        if self.active_span == span.0 {
            self.active_span = open.parent;
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; the run is a pure function of the config including this.
    pub seed: u64,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Scripted faults.
    pub faults: FaultSchedule,
    /// Observability sink; defaults to disabled (zero overhead).
    pub recorder: Recorder,
    /// Trace/span ids are allocated serially starting at `trace_base +
    /// 1`. A grid runner gives each cell a disjoint base so ids stay
    /// unique across a concatenated multi-run trace file; the base is a
    /// pure function of the cell's grid position, never of scheduling,
    /// so traces remain byte-identical across `--jobs` levels.
    pub trace_base: u64,
    /// Event-queue backend. Both kinds produce byte-identical runs
    /// (`tests/queue_parity.rs`); the timing wheel is the fast default,
    /// the binary heap the benchmark baseline. See `docs/PERFORMANCE.md`.
    pub queue: QueueKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: LatencyModel::lan(),
            faults: FaultSchedule::none(),
            recorder: Recorder::disabled(),
            trace_base: 0,
            queue: QueueKind::default(),
        }
    }
}

impl SimConfig {
    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Set the fault schedule.
    pub fn faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Attach an observability recorder (see [`obs::Recorder`]).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Set the first trace/span id range offset (see
    /// [`SimConfig::trace_base`]).
    pub fn trace_base(mut self, base: u64) -> Self {
        self.trace_base = base;
        self
    }

    /// Select the event-queue backend (see [`SimConfig::queue`]).
    pub fn queue(mut self, kind: QueueKind) -> Self {
        self.queue = kind;
        self
    }
}

/// The deterministic simulator.
pub struct Sim<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    queue: EventQueue<M>,
    now: SimTime,
    rng: SimRng,
    latency: LatencyModel,
    faults: FaultState,
    next_timer_id: u64,
    cancelled_timers: HashSet<u64>,
    /// Reusable effects buffer handed to each [`Context`]: callbacks
    /// append into it and the drained capacity is kept, so the steady
    /// state of the event loop performs no per-callback allocation.
    effects_scratch: Vec<Effect<M>>,
    started: bool,
    /// Count of messages dropped by partitions or loss (for availability
    /// accounting in experiments).
    pub dropped_messages: u64,
    /// Count of messages delivered.
    pub delivered_messages: u64,
    recorder: Recorder,
    spans: SpanBook,
    /// Cached `recorder.profiling_enabled()` (checked per handler call;
    /// enable profiling on the recorder *before* building the `Sim`).
    prof: bool,
}

impl<M> Sim<M> {
    /// Create a simulator from a config. Add actors with
    /// [`Sim::add_node`], then drive it with [`Sim::run_until`].
    pub fn new(config: SimConfig) -> Self {
        let mut queue = EventQueue::with_kind(config.queue);
        for (at, ev) in config.faults.compile() {
            queue.push(at, EventPayload::Fault(ev));
        }
        Sim {
            actors: Vec::new(),
            queue,
            now: SimTime::ZERO,
            rng: SimRng::new(config.seed),
            latency: config.latency,
            faults: FaultState::default(),
            next_timer_id: 0,
            cancelled_timers: HashSet::new(),
            effects_scratch: Vec::new(),
            started: false,
            dropped_messages: 0,
            delivered_messages: 0,
            prof: config.recorder.profiling_enabled(),
            recorder: config.recorder,
            spans: SpanBook::new(config.trace_base),
        }
    }

    /// Approximate in-memory payload size used for `bytes` fields in
    /// recorded message events.
    fn msg_bytes() -> u64 {
        std::mem::size_of::<M>() as u64
    }

    /// The observability recorder attached to this simulation.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Add an actor; returns its [`NodeId`] (assigned densely from 0).
    /// Panics with a clear message when the node count would exceed
    /// compact `u32` addressing (see [`NodeId::from_index`]).
    pub fn add_node(&mut self, actor: Box<dyn Actor<M>>) -> NodeId {
        assert!(!self.started, "cannot add nodes after the simulation started");
        let id = NodeId::from_index(self.actors.len());
        self.actors.push(actor);
        id
    }

    /// Number of actors.
    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.faults.is_crashed(node)
    }

    /// Inject a message into `to`'s mailbox at absolute time `at`
    /// (appearing to come from `from`). Used by experiment drivers to start
    /// client operations at scripted times.
    pub fn inject_at(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot inject into the past");
        self.recorder.record(
            at.as_micros(),
            EventKind::MessageSent {
                from: from.0 as u64,
                to: to.0 as u64,
                bytes: Self::msg_bytes(),
                trace: 0,
                span: 0,
            },
        );
        self.queue.push(at, EventPayload::Deliver { from, to, msg, trace: 0, span: 0 });
    }

    /// Messages currently in flight in the simulated network (pending
    /// deliveries, including ones that will be dropped on arrival).
    /// O(queue length); intended for low-frequency telemetry probes.
    pub fn inflight_messages(&self) -> u64 {
        self.queue.deliver_count() as u64
    }

    /// The `(key, version)` pairs every actor reports via
    /// [`Actor::key_versions`], as `(node, key, version)` triples in
    /// node order. Telemetry probes fold these into per-key
    /// replica-divergence samples.
    pub fn key_versions(&self) -> Vec<(NodeId, u64, u64)> {
        let mut out = Vec::new();
        for (i, actor) in self.actors.iter().enumerate() {
            for (key, version) in actor.key_versions() {
                out.push((NodeId(i as u32), key, version));
            }
        }
        out
    }

    /// Borrow an actor (e.g. to read results after the run).
    pub fn node(&self, id: NodeId) -> &dyn Actor<M> {
        self.actors[id.index()].as_ref()
    }

    /// Borrow an actor mutably.
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Actor<M> {
        self.actors[id.index()].as_mut()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            self.call_actor(
                NodeId(i as u32),
                0,
                0,
                self.prof_key(HandlerKind::Start, NO_VARIANT),
                |actor, ctx| actor.on_start(ctx),
            );
        }
    }

    /// The profiler key for a handler about to run, or `None` when
    /// profiling is off (the probe then costs nothing).
    fn prof_key(
        &self,
        kind: HandlerKind,
        variant: &'static str,
    ) -> Option<(HandlerKind, &'static str)> {
        if self.prof {
            Some((kind, variant))
        } else {
            None
        }
    }

    /// Run a callback on one actor — under the trace/span context the
    /// triggering event carried — and apply the effects it produced.
    fn call_actor<F>(
        &mut self,
        id: NodeId,
        trace: u64,
        span: u64,
        prof: Option<(HandlerKind, &'static str)>,
        f: F,
    ) where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<M>),
    {
        self.call_actor_inner(id, trace, span, false, prof, f)
    }

    /// Like [`Sim::call_actor`] but throws the produced effects away:
    /// used for hooks on crashed nodes (they observe, e.g., membership
    /// changes but cannot send or arm timers while down).
    fn call_actor_discard<F>(&mut self, id: NodeId, prof: Option<(HandlerKind, &'static str)>, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<M>),
    {
        self.call_actor_inner(id, 0, 0, true, prof, f)
    }

    fn call_actor_inner<F>(
        &mut self,
        id: NodeId,
        trace: u64,
        span: u64,
        discard: bool,
        prof: Option<(HandlerKind, &'static str)>,
        f: F,
    ) where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<M>),
    {
        // The probe brackets only the actor callback itself: effect
        // application below (latency sampling, queue pushes, network
        // bookkeeping) is simulator cost, not handler cost.
        let probe = prof.map(|_| Probe::start());
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            rng: &mut self.rng,
            recorder: &self.recorder,
            next_timer_id: &mut self.next_timer_id,
            effects: std::mem::take(&mut self.effects_scratch),
            active_trace: trace,
            active_span: span,
            spans: &mut self.spans,
        };
        f(self.actors[id.index()].as_mut(), &mut ctx);
        let mut effects = ctx.effects;
        if let (Some((kind, variant)), Some(probe)) = (prof, probe) {
            let sample = probe.finish();
            self.recorder.prof_record(self.actors[id.index()].role(), kind, variant, sample);
        }
        if discard {
            effects.clear();
            self.effects_scratch = effects;
            return;
        }
        for eff in effects.drain(..) {
            match eff {
                Effect::Send { to, msg, trace, span } => {
                    let now_us = self.now.as_micros();
                    self.recorder.record(
                        now_us,
                        EventKind::MessageSent {
                            from: id.0 as u64,
                            to: to.0 as u64,
                            bytes: Self::msg_bytes(),
                            trace,
                            span,
                        },
                    );
                    if self.faults.is_partitioned(id, to) {
                        self.dropped_messages += 1;
                        self.recorder.record(
                            now_us,
                            EventKind::MessageDropped {
                                from: id.0 as u64,
                                to: to.0 as u64,
                                reason: DropReason::Partition,
                                trace,
                                span,
                            },
                        );
                        continue;
                    }
                    if self.faults.loss_rate > 0.0 && self.rng.chance(self.faults.loss_rate) {
                        self.dropped_messages += 1;
                        self.recorder.record(
                            now_us,
                            EventKind::MessageDropped {
                                from: id.0 as u64,
                                to: to.0 as u64,
                                reason: DropReason::Loss,
                                trace,
                                span,
                            },
                        );
                        continue;
                    }
                    let delay = if to == id {
                        Duration::from_micros(1)
                    } else {
                        let base = self.latency.sample(id, to, &mut self.rng);
                        // Latency-skew fault: scale by the active factor
                        // (integer percent arithmetic keeps runs exactly
                        // reproducible).
                        if self.faults.latency_factor_pct == 100 {
                            base
                        } else {
                            Duration::from_micros(
                                (base.as_micros() * self.faults.latency_factor_pct / 100).max(1),
                            )
                        }
                    };
                    self.queue.push(
                        self.now + delay,
                        EventPayload::Deliver { from: id, to, msg, trace, span },
                    );
                }
                Effect::SendLocal { to, msg, after, trace, span } => {
                    self.recorder.record(
                        self.now.as_micros(),
                        EventKind::MessageSent {
                            from: id.0 as u64,
                            to: to.0 as u64,
                            bytes: Self::msg_bytes(),
                            trace,
                            span,
                        },
                    );
                    self.queue.push(
                        self.now + after,
                        EventPayload::Deliver { from: id, to, msg, trace, span },
                    );
                }
                Effect::Timer { id: tid, after, tag, trace, span } => {
                    self.queue.push(
                        self.now + after,
                        EventPayload::Timer { node: id, timer_id: tid, tag, trace, span },
                    );
                }
                Effect::CancelTimer { id: tid } => {
                    self.cancelled_timers.insert(tid);
                }
            }
        }
        self.effects_scratch = effects;
    }

    /// Consume the simulator and return the actors (to extract results).
    pub fn into_actors(mut self) -> Vec<Box<dyn Actor<M>>> {
        std::mem::take(&mut self.actors)
    }
}

/// The run loop. Dispatching a delivery asks the message for its
/// variant name (profiler attribution), hence the [`MsgMeta`] bound —
/// construction and inspection ([`Sim::new`], [`Sim::add_node`],
/// [`Sim::inject_at`]) stay unbounded.
impl<M: MsgMeta> Sim<M> {
    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.dispatch(ev);
        true
    }

    /// Apply one popped event: advance the clock and run the handler.
    fn dispatch(&mut self, ev: Event<M>) {
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        match ev.payload {
            EventPayload::Deliver { from, to, msg, trace, span } => {
                if self.faults.is_crashed(to) {
                    self.dropped_messages += 1;
                    self.recorder.record(
                        self.now.as_micros(),
                        EventKind::MessageDropped {
                            from: from.0 as u64,
                            to: to.0 as u64,
                            reason: DropReason::CrashedDestination,
                            trace,
                            span,
                        },
                    );
                } else {
                    self.delivered_messages += 1;
                    self.recorder.record(
                        self.now.as_micros(),
                        EventKind::MessageDelivered {
                            from: from.0 as u64,
                            to: to.0 as u64,
                            bytes: Self::msg_bytes(),
                            trace,
                            span,
                        },
                    );
                    // Read the variant name before the message moves
                    // into the callback closure.
                    let prof = self.prof_key(HandlerKind::Message, msg.variant_name());
                    self.call_actor(to, trace, span, prof, |actor, ctx| {
                        actor.on_message(ctx, from, msg)
                    });
                }
            }
            EventPayload::Timer { node, timer_id, tag, trace, span } => {
                if self.cancelled_timers.remove(&timer_id) || self.faults.is_crashed(node) {
                    // Cancelled, or the node is down: timers are soft state.
                } else {
                    self.recorder.count_node(node.0 as u64, Counter::TimersFired, 1);
                    let prof = self.prof_key(HandlerKind::Timer, NO_VARIANT);
                    self.call_actor(node, trace, span, prof, |actor, ctx| {
                        actor.on_timer(ctx, timer_id, tag)
                    });
                }
            }
            EventPayload::Fault(fev) => {
                use crate::faults::FaultEvent::*;
                let now_us = self.now.as_micros();
                match &fev {
                    Crash { node } => {
                        let node = *node;
                        self.recorder.record(now_us, EventKind::Crash { node: node.0 as u64 });
                        self.faults.apply(&fev);
                        let prof = self.prof_key(HandlerKind::Crash, NO_VARIANT);
                        self.call_actor(node, 0, 0, prof, |actor, ctx| actor.on_crash(ctx));
                    }
                    Recover { node, amnesia } => {
                        let (node, amnesia) = (*node, *amnesia);
                        self.recorder.record(now_us, EventKind::Recover { node: node.0 as u64 });
                        if amnesia {
                            self.recorder.count_node(node.0 as u64, Counter::AmnesiaRecoveries, 1);
                        }
                        self.faults.apply(&fev);
                        let prof = self.prof_key(HandlerKind::Recover, NO_VARIANT);
                        self.call_actor(node, 0, 0, prof, |actor, ctx| {
                            actor.on_recover(ctx, amnesia)
                        });
                    }
                    PartitionStart { side_a, .. } => {
                        self.recorder.record(
                            now_us,
                            EventKind::PartitionStart {
                                island: side_a.iter().map(|n| n.0 as u64).collect(),
                            },
                        );
                        self.faults.apply(&fev);
                    }
                    PartitionEnd { .. } => {
                        self.recorder.record(now_us, EventKind::PartitionHeal);
                        self.faults.apply(&fev);
                    }
                    MembershipChange { node, join } => {
                        let (node, join) = (*node, *join);
                        self.recorder.record(
                            now_us,
                            EventKind::MembershipChange { node: node.0 as u64, join },
                        );
                        self.faults.apply(&fev);
                        // Every actor observes the change in id order so
                        // ownership views stay identical; crashed nodes
                        // observe it with their effects discarded (a
                        // down node cannot send or arm timers).
                        let prof = self.prof_key(HandlerKind::Membership, NO_VARIANT);
                        for i in 0..self.actors.len() {
                            let id = NodeId(i as u32);
                            if self.faults.is_crashed(id) {
                                self.call_actor_discard(id, prof, |actor, ctx| {
                                    actor.on_membership(ctx, node, join)
                                });
                            } else {
                                self.call_actor(id, 0, 0, prof, |actor, ctx| {
                                    actor.on_membership(ctx, node, join)
                                });
                            }
                        }
                    }
                    _ => self.faults.apply(&fev),
                }
            }
        }
    }

    /// Run until the queue drains or virtual time passes `deadline`.
    /// Returns the number of events processed.
    ///
    /// The loop pops due events with a single combined probe
    /// ([`EventQueue::pop_if_at_most`]); the wheel backend answers it
    /// from its same-tick batch buffer, so a burst of simultaneous
    /// deliveries costs one wheel walk for the whole tick.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_if_needed();
        let mut n = 0;
        while let Some(ev) = self.queue.pop_if_at_most(deadline) {
            self.dispatch(ev);
            n += 1;
        }
        // Advance the clock to the deadline even if the queue drained early,
        // so back-to-back `run_until` calls observe monotonic time.
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Run until the event queue is fully drained (use only with workloads
    /// that terminate; gossip protocols with periodic timers never drain).
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.start_if_needed();
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

impl<M> Drop for Sim<M> {
    /// Account for work still outstanding when the simulation is torn
    /// down (horizon reached mid-delivery): each in-flight message is
    /// recorded as dropped with reason `shutdown`, and each still-open
    /// trace span is closed with status `abandoned`. Without this,
    /// truncated runs would break the conservation identities
    /// `messages_sent == messages_delivered + messages_dropped` and
    /// `spans_opened == spans_closed` (see `docs/METRICS.md`).
    fn drop(&mut self) {
        let now_us = self.now.as_micros();
        // Let every actor account for state it still holds (undrained
        // hints, unshipped batches) before the queue drain below; the
        // hook's effects are discarded — the run is over.
        for i in 0..self.actors.len() {
            let probe = if self.prof { Some(Probe::start()) } else { None };
            let mut ctx = Context {
                now: self.now,
                self_id: NodeId(i as u32),
                rng: &mut self.rng,
                recorder: &self.recorder,
                next_timer_id: &mut self.next_timer_id,
                effects: Vec::new(),
                active_trace: 0,
                active_span: 0,
                spans: &mut self.spans,
            };
            self.actors[i].on_shutdown(&mut ctx);
            if let Some(probe) = probe {
                let sample = probe.finish();
                self.recorder.prof_record(
                    self.actors[i].role(),
                    HandlerKind::Shutdown,
                    NO_VARIANT,
                    sample,
                );
            }
        }
        while let Some(ev) = self.queue.pop() {
            if let EventPayload::Deliver { from, to, trace, span, .. } = ev.payload {
                self.dropped_messages += 1;
                self.recorder.record(
                    now_us,
                    EventKind::MessageDropped {
                        from: from.0 as u64,
                        to: to.0 as u64,
                        reason: DropReason::Shutdown,
                        trace,
                        span,
                    },
                );
            }
        }
        // BTreeMap order: abandonment closes fire in span-id order,
        // keeping shutdown tails byte-identical across runs.
        for (span, open) in std::mem::take(&mut self.spans.open) {
            self.recorder.record(
                now_us,
                EventKind::SpanClose {
                    trace: open.trace,
                    span,
                    node: open.node,
                    status: SpanStatus::Abandoned,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn node_id_round_trips_at_u32_boundary() {
        let id = NodeId::from_index(u32::MAX as usize);
        assert_eq!(id, NodeId(u32::MAX));
        assert_eq!(id.index(), u32::MAX as usize);
    }

    #[test]
    #[should_panic(expected = "exceeds compact u32 NodeId addressing")]
    fn node_id_from_index_rejects_indices_above_u32() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    /// Echoes every message back to its sender, once.
    struct Echo {
        log: Rc<RefCell<Vec<(SimTime, NodeId, u32)>>>,
    }

    impl Actor<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Context<u32>, from: NodeId, msg: u32) {
            self.log.borrow_mut().push((ctx.now(), from, msg));
            if msg < 100 {
                ctx.send(from, msg + 100);
            }
        }
    }

    type EchoLog = Rc<RefCell<Vec<(SimTime, NodeId, u32)>>>;

    fn two_node_sim(latency: LatencyModel, faults: FaultSchedule) -> (Sim<u32>, EchoLog) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default().seed(1).latency(latency).faults(faults));
        sim.add_node(Box::new(Echo { log: log.clone() }));
        sim.add_node(Box::new(Echo { log: log.clone() }));
        (sim, log)
    }

    #[test]
    fn request_reply_round_trip() {
        let (mut sim, log) =
            two_node_sim(LatencyModel::Constant(Duration::from_millis(5)), FaultSchedule::none());
        sim.inject_at(SimTime::from_millis(1), NodeId(0), NodeId(1), 7);
        sim.run_until(SimTime::from_millis(100));
        let log = log.borrow();
        // Node 1 receives 7 at t=1ms, echoes 107 which node 0 receives at 6ms.
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], (SimTime::from_millis(1), NodeId(0), 7));
        assert_eq!(log[1], (SimTime::from_millis(6), NodeId(1), 107));
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new(SimConfig::default().seed(seed).latency(LatencyModel::lan()));
            sim.add_node(Box::new(Echo { log: log.clone() }));
            sim.add_node(Box::new(Echo { log: log.clone() }));
            for i in 0..20 {
                sim.inject_at(SimTime::from_millis(i), NodeId(0), NodeId(1), i as u32);
            }
            sim.run_until(SimTime::from_secs(1));
            let v = log.borrow().clone();
            v
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn partition_drops_messages() {
        let faults = FaultSchedule::none().partition(
            vec![NodeId(0)],
            SimTime::ZERO,
            SimTime::from_millis(50),
        );
        let (mut sim, log) = two_node_sim(LatencyModel::Constant(Duration::from_millis(1)), faults);
        sim.inject_at(SimTime::from_millis(10), NodeId(0), NodeId(1), 1);
        sim.run_until(SimTime::from_millis(40));
        // The injected message is delivered (injection bypasses the network),
        // but node 1's echo back to node 0 is dropped by the partition.
        assert_eq!(log.borrow().len(), 1);
        assert!(sim.dropped_messages >= 1);
    }

    #[test]
    fn crashed_node_drops_messages_then_recovers() {
        let faults = FaultSchedule::none().crash(
            NodeId(1),
            SimTime::from_millis(0),
            SimTime::from_millis(20),
        );
        let (mut sim, log) = two_node_sim(LatencyModel::Constant(Duration::from_millis(1)), faults);
        sim.inject_at(SimTime::from_millis(10), NodeId(0), NodeId(1), 1); // dropped: crashed
        sim.inject_at(SimTime::from_millis(30), NodeId(0), NodeId(1), 2); // delivered
        sim.run_until(SimTime::from_millis(100));
        let log = log.borrow();
        let received: Vec<u32> = log.iter().map(|&(_, _, m)| m).collect();
        assert!(received.contains(&2));
        assert!(!received.contains(&1));
    }

    #[test]
    fn full_loss_drops_everything() {
        let faults = FaultSchedule::none().loss_rate(SimTime::ZERO, 1.0);
        let (mut sim, log) = two_node_sim(LatencyModel::Constant(Duration::from_millis(1)), faults);
        sim.inject_at(SimTime::from_millis(1), NodeId(0), NodeId(1), 1);
        sim.run_until(SimTime::from_millis(100));
        // Injection is delivered; the echo reply is lost.
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(sim.dropped_messages, 1);
    }

    struct TimerUser {
        fired: Rc<RefCell<Vec<u64>>>,
        cancel_second: bool,
    }

    impl Actor<u32> for TimerUser {
        fn on_start(&mut self, ctx: &mut Context<u32>) {
            ctx.set_timer(Duration::from_millis(10), 1);
            let second = ctx.set_timer(Duration::from_millis(20), 2);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<u32>, _from: NodeId, _msg: u32) {}
        fn on_timer(&mut self, _ctx: &mut Context<u32>, _timer_id: u64, tag: u64) {
            self.fired.borrow_mut().push(tag);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<u32> = Sim::new(SimConfig::default());
        sim.add_node(Box::new(TimerUser { fired: fired.clone(), cancel_second: false }));
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(*fired.borrow(), vec![1, 2]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<u32> = Sim::new(SimConfig::default());
        sim.add_node(Box::new(TimerUser { fired: fired.clone(), cancel_second: true }));
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(*fired.borrow(), vec![1]);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim: Sim<u32> = Sim::new(SimConfig::default());
        sim.add_node(Box::new(Echo { log: Rc::new(RefCell::new(Vec::new())) }));
        sim.run_until(SimTime::from_millis(250));
        assert_eq!(sim.now(), SimTime::from_millis(250));
    }

    /// Client starts a trace on start, the server opens/closes a child
    /// span and replies, the client closes the root span on the reply.
    struct TracedPing {
        server: NodeId,
        root: Option<SpanId>,
    }

    impl Actor<u32> for TracedPing {
        fn on_start(&mut self, ctx: &mut Context<u32>) {
            self.root = Some(ctx.start_trace("op"));
            ctx.send(self.server, 1);
        }
        fn on_message(&mut self, ctx: &mut Context<u32>, _from: NodeId, _msg: u32) {
            assert!(!ctx.active_trace().is_none(), "reply must carry the trace");
            ctx.span_close(self.root.take().expect("one reply"), SpanStatus::Ok);
        }
    }

    struct TracedServer;

    impl Actor<u32> for TracedServer {
        fn on_message(&mut self, ctx: &mut Context<u32>, from: NodeId, msg: u32) {
            assert!(!ctx.active_trace().is_none(), "request must carry the trace");
            let span = ctx.span_open("serve");
            assert!(!span.is_none());
            ctx.send(from, msg + 1);
            ctx.span_close(span, SpanStatus::Ok);
        }
    }

    #[test]
    fn spans_propagate_through_message_envelopes() {
        let rec = Recorder::with_event_log();
        let mut sim: Sim<u32> = Sim::new(SimConfig::default().recorder(rec.clone()));
        let server = NodeId(1);
        sim.add_node(Box::new(TracedPing { server, root: None }));
        sim.add_node(Box::new(TracedServer));
        sim.run_until(SimTime::from_secs(1));
        drop(sim);
        let report = rec.report();
        assert_eq!(report.counter(Counter::SpansOpened), 2);
        assert_eq!(report.counter(Counter::SpansClosed), 2);
        assert_eq!(report.counter(Counter::SpansAbandoned), 0);
        // Both message sends carried the trace.
        let mut traced_sends = 0;
        rec.for_each_event(|ev| {
            if let EventKind::MessageSent { trace, .. } = ev.kind {
                if trace != 0 {
                    traced_sends += 1;
                }
            }
        });
        assert_eq!(traced_sends, 2);
    }

    struct OpensAndForgets;

    impl Actor<u32> for OpensAndForgets {
        fn on_start(&mut self, ctx: &mut Context<u32>) {
            ctx.start_trace("never_closed");
        }
        fn on_message(&mut self, _ctx: &mut Context<u32>, _from: NodeId, _msg: u32) {}
    }

    #[test]
    fn open_spans_are_abandoned_at_shutdown() {
        let rec = Recorder::enabled();
        let mut sim: Sim<u32> = Sim::new(SimConfig::default().recorder(rec.clone()));
        sim.add_node(Box::new(OpensAndForgets));
        sim.run_until(SimTime::from_millis(10));
        drop(sim);
        let report = rec.report();
        assert_eq!(report.counter(Counter::SpansOpened), 1);
        assert_eq!(report.counter(Counter::SpansClosed), 1);
        assert_eq!(report.counter(Counter::SpansAbandoned), 1);
    }

    struct UntracedOpener {
        opened: Rc<RefCell<Option<SpanId>>>,
    }

    impl Actor<u32> for UntracedOpener {
        fn on_message(&mut self, ctx: &mut Context<u32>, _from: NodeId, _msg: u32) {
            *self.opened.borrow_mut() = Some(ctx.span_open("untraced"));
        }
    }

    #[test]
    fn span_open_without_trace_is_inert() {
        let rec = Recorder::enabled();
        let opened = Rc::new(RefCell::new(None));
        let mut sim: Sim<u32> = Sim::new(SimConfig::default().recorder(rec.clone()));
        sim.add_node(Box::new(UntracedOpener { opened: opened.clone() }));
        // Injected messages carry no trace, so the handler's span_open
        // must be a no-op rather than create an orphan span.
        sim.inject_at(SimTime::from_millis(1), NodeId(0), NodeId(0), 7);
        sim.run_until(SimTime::from_millis(10));
        drop(sim);
        assert_eq!(*opened.borrow(), Some(SpanId::NONE));
        assert_eq!(rec.report().counter(Counter::SpansOpened), 0);
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn inject_into_past_panics() {
        let (mut sim, _log) =
            two_node_sim(LatencyModel::Constant(Duration::from_millis(1)), FaultSchedule::none());
        sim.run_until(SimTime::from_millis(10));
        sim.inject_at(SimTime::from_millis(5), NodeId(0), NodeId(1), 1);
    }
}
