//! The actor runtime.
//!
//! A [`Sim`] owns a set of actors (replicas and clients alike), the event
//! queue, the latency model, and the fault state. Actors never see wall
//! clocks, threads, or real sockets: they receive callbacks and emit
//! *effects* (sends, timers) through a [`Context`], which the simulator
//! turns into future events. This is what makes every run a pure function
//! of `(config, seed)`.

use crate::event::{EventPayload, EventQueue};
use crate::faults::{FaultSchedule, FaultState};
use crate::latency::LatencyModel;
use crate::rng::SimRng;
use crate::time::{Duration, SimTime};
use obs::{Counter, DropReason, EventKind, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Identifies an actor in the simulation (replica or client).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol state machine.
///
/// All methods take a [`Context`] through which the actor reads the virtual
/// clock, sends messages, and manages timers. Implementations must not hold
/// wall-clock state; determinism depends on it.
pub trait Actor<M> {
    /// Called once when the simulation starts (before any event fires).
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// A message from `from` has been delivered.
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M);

    /// A timer set via [`Context::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Context<M>, _timer_id: u64, _tag: u64) {}

    /// The node has crashed (informational; the simulator already suppresses
    /// its messages and timers).
    fn on_crash(&mut self, _ctx: &mut Context<M>) {}

    /// The node has recovered from a crash. With `amnesia == false` the
    /// actor's in-memory state survived (fail-pause); with `amnesia ==
    /// true` the actor must treat its volatile state as lost and rebuild
    /// from whatever it models as durable (typically a WAL replay).
    /// Either way the simulator has already dropped the node's pending
    /// timers, so periodic timer chains must be re-armed here.
    fn on_recover(&mut self, _ctx: &mut Context<M>, _amnesia: bool) {}
}

/// Effects an actor requests during a callback; applied by the simulator
/// afterwards (sampling latencies, assigning timer ids).
enum Effect<M> {
    Send { to: NodeId, msg: M },
    SendLocal { to: NodeId, msg: M, after: Duration },
    Timer { id: u64, after: Duration, tag: u64 },
    CancelTimer { id: u64 },
}

/// The actor's window into the simulator during a callback.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: NodeId,
    rng: &'a mut SimRng,
    recorder: &'a Recorder,
    next_timer_id: &'a mut u64,
    effects: Vec<Effect<M>>,
}

impl<'a, M> Context<'a, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The simulation RNG (deterministic; shared by all actors).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The observability recorder, for protocol-level events (quorum
    /// waits, anti-entropy rounds, conflicts). Disabled recorders make
    /// every call a no-op, so actors can record unconditionally.
    pub fn recorder(&self) -> &Recorder {
        self.recorder
    }

    /// Record a protocol event at the current virtual time (shorthand
    /// for `ctx.recorder().record(ctx.now().as_micros(), kind)`).
    pub fn record(&self, kind: EventKind) {
        self.recorder.record(self.now.as_micros(), kind);
    }

    /// Send `msg` to `to`; it arrives after a latency sampled from the
    /// network model (or never, under loss/partition).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Deliver `msg` to `to` after exactly `after`, bypassing the network
    /// model and faults. Used for intra-process handoff (e.g. a client
    /// co-located with its replica) and for self-messages.
    pub fn send_local(&mut self, to: NodeId, msg: M, after: Duration) {
        self.effects.push(Effect::SendLocal { to, msg, after });
    }

    /// Set a one-shot timer; returns its id (usable with
    /// [`Context::cancel_timer`]). `tag` is an arbitrary actor-chosen value
    /// passed back to [`Actor::on_timer`].
    pub fn set_timer(&mut self, after: Duration, tag: u64) -> u64 {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        self.effects.push(Effect::Timer { id, after, tag });
        id
    }

    /// Cancel a pending timer. Cancelling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: u64) {
        self.effects.push(Effect::CancelTimer { id });
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; the run is a pure function of the config including this.
    pub seed: u64,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Scripted faults.
    pub faults: FaultSchedule,
    /// Observability sink; defaults to disabled (zero overhead).
    pub recorder: Recorder,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: LatencyModel::lan(),
            faults: FaultSchedule::none(),
            recorder: Recorder::disabled(),
        }
    }
}

impl SimConfig {
    /// Set the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Set the fault schedule.
    pub fn faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Attach an observability recorder (see [`obs::Recorder`]).
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }
}

/// The deterministic simulator.
pub struct Sim<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    queue: EventQueue<M>,
    now: SimTime,
    rng: SimRng,
    latency: LatencyModel,
    faults: FaultState,
    next_timer_id: u64,
    cancelled_timers: HashSet<u64>,
    started: bool,
    /// Count of messages dropped by partitions or loss (for availability
    /// accounting in experiments).
    pub dropped_messages: u64,
    /// Count of messages delivered.
    pub delivered_messages: u64,
    recorder: Recorder,
}

impl<M> Sim<M> {
    /// Create a simulator from a config. Add actors with
    /// [`Sim::add_node`], then drive it with [`Sim::run_until`].
    pub fn new(config: SimConfig) -> Self {
        let mut queue = EventQueue::new();
        for (at, ev) in config.faults.compile() {
            queue.push(at, EventPayload::Fault(ev));
        }
        Sim {
            actors: Vec::new(),
            queue,
            now: SimTime::ZERO,
            rng: SimRng::new(config.seed),
            latency: config.latency,
            faults: FaultState::default(),
            next_timer_id: 0,
            cancelled_timers: HashSet::new(),
            started: false,
            dropped_messages: 0,
            delivered_messages: 0,
            recorder: config.recorder,
        }
    }

    /// Approximate in-memory payload size used for `bytes` fields in
    /// recorded message events.
    fn msg_bytes() -> u64 {
        std::mem::size_of::<M>() as u64
    }

    /// The observability recorder attached to this simulation.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Add an actor; returns its [`NodeId`] (assigned densely from 0).
    pub fn add_node(&mut self, actor: Box<dyn Actor<M>>) -> NodeId {
        assert!(!self.started, "cannot add nodes after the simulation started");
        self.actors.push(actor);
        NodeId(self.actors.len() - 1)
    }

    /// Number of actors.
    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.faults.is_crashed(node)
    }

    /// Inject a message into `to`'s mailbox at absolute time `at`
    /// (appearing to come from `from`). Used by experiment drivers to start
    /// client operations at scripted times.
    pub fn inject_at(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot inject into the past");
        self.recorder.record(
            at.as_micros(),
            EventKind::MessageSent {
                from: from.0 as u64,
                to: to.0 as u64,
                bytes: Self::msg_bytes(),
            },
        );
        self.queue.push(at, EventPayload::Deliver { from, to, msg });
    }

    /// Borrow an actor (e.g. to read results after the run).
    pub fn node(&self, id: NodeId) -> &dyn Actor<M> {
        self.actors[id.0].as_ref()
    }

    /// Borrow an actor mutably.
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Actor<M> {
        self.actors[id.0].as_mut()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            self.call_actor(NodeId(i), |actor, ctx| actor.on_start(ctx));
        }
    }

    /// Run a callback on one actor and apply the effects it produced.
    fn call_actor<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<M>),
    {
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            rng: &mut self.rng,
            recorder: &self.recorder,
            next_timer_id: &mut self.next_timer_id,
            effects: Vec::new(),
        };
        f(self.actors[id.0].as_mut(), &mut ctx);
        let effects = ctx.effects;
        for eff in effects {
            match eff {
                Effect::Send { to, msg } => {
                    let now_us = self.now.as_micros();
                    self.recorder.record(
                        now_us,
                        EventKind::MessageSent {
                            from: id.0 as u64,
                            to: to.0 as u64,
                            bytes: Self::msg_bytes(),
                        },
                    );
                    if self.faults.is_partitioned(id, to) {
                        self.dropped_messages += 1;
                        self.recorder.record(
                            now_us,
                            EventKind::MessageDropped {
                                from: id.0 as u64,
                                to: to.0 as u64,
                                reason: DropReason::Partition,
                            },
                        );
                        continue;
                    }
                    if self.faults.loss_rate > 0.0 && self.rng.chance(self.faults.loss_rate) {
                        self.dropped_messages += 1;
                        self.recorder.record(
                            now_us,
                            EventKind::MessageDropped {
                                from: id.0 as u64,
                                to: to.0 as u64,
                                reason: DropReason::Loss,
                            },
                        );
                        continue;
                    }
                    let delay = if to == id {
                        Duration::from_micros(1)
                    } else {
                        let base = self.latency.sample(id, to, &mut self.rng);
                        // Latency-skew fault: scale by the active factor
                        // (integer percent arithmetic keeps runs exactly
                        // reproducible).
                        if self.faults.latency_factor_pct == 100 {
                            base
                        } else {
                            Duration::from_micros(
                                (base.as_micros() * self.faults.latency_factor_pct / 100).max(1),
                            )
                        }
                    };
                    self.queue.push(self.now + delay, EventPayload::Deliver { from: id, to, msg });
                }
                Effect::SendLocal { to, msg, after } => {
                    self.recorder.record(
                        self.now.as_micros(),
                        EventKind::MessageSent {
                            from: id.0 as u64,
                            to: to.0 as u64,
                            bytes: Self::msg_bytes(),
                        },
                    );
                    self.queue.push(self.now + after, EventPayload::Deliver { from: id, to, msg });
                }
                Effect::Timer { id: tid, after, tag } => {
                    self.queue.push(
                        self.now + after,
                        EventPayload::Timer { node: id, timer_id: tid, tag },
                    );
                }
                Effect::CancelTimer { id: tid } => {
                    self.cancelled_timers.insert(tid);
                }
            }
        }
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        match ev.payload {
            EventPayload::Deliver { from, to, msg } => {
                if self.faults.is_crashed(to) {
                    self.dropped_messages += 1;
                    self.recorder.record(
                        self.now.as_micros(),
                        EventKind::MessageDropped {
                            from: from.0 as u64,
                            to: to.0 as u64,
                            reason: DropReason::CrashedDestination,
                        },
                    );
                } else {
                    self.delivered_messages += 1;
                    self.recorder.record(
                        self.now.as_micros(),
                        EventKind::MessageDelivered {
                            from: from.0 as u64,
                            to: to.0 as u64,
                            bytes: Self::msg_bytes(),
                        },
                    );
                    self.call_actor(to, |actor, ctx| actor.on_message(ctx, from, msg));
                }
            }
            EventPayload::Timer { node, timer_id, tag } => {
                if self.cancelled_timers.remove(&timer_id) || self.faults.is_crashed(node) {
                    // Cancelled, or the node is down: timers are soft state.
                } else {
                    self.recorder.count_node(node.0 as u64, Counter::TimersFired, 1);
                    self.call_actor(node, |actor, ctx| actor.on_timer(ctx, timer_id, tag));
                }
            }
            EventPayload::Fault(fev) => {
                use crate::faults::FaultEvent::*;
                let now_us = self.now.as_micros();
                match &fev {
                    Crash { node } => {
                        let node = *node;
                        self.recorder.record(now_us, EventKind::Crash { node: node.0 as u64 });
                        self.faults.apply(&fev);
                        self.call_actor(node, |actor, ctx| actor.on_crash(ctx));
                    }
                    Recover { node, amnesia } => {
                        let (node, amnesia) = (*node, *amnesia);
                        self.recorder.record(now_us, EventKind::Recover { node: node.0 as u64 });
                        if amnesia {
                            self.recorder.count_node(node.0 as u64, Counter::AmnesiaRecoveries, 1);
                        }
                        self.faults.apply(&fev);
                        self.call_actor(node, |actor, ctx| actor.on_recover(ctx, amnesia));
                    }
                    PartitionStart { side_a, .. } => {
                        self.recorder.record(
                            now_us,
                            EventKind::PartitionStart {
                                island: side_a.iter().map(|n| n.0 as u64).collect(),
                            },
                        );
                        self.faults.apply(&fev);
                    }
                    PartitionEnd { .. } => {
                        self.recorder.record(now_us, EventKind::PartitionHeal);
                        self.faults.apply(&fev);
                    }
                    _ => self.faults.apply(&fev),
                }
            }
        }
        true
    }

    /// Run until the queue drains or virtual time passes `deadline`.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_if_needed();
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        // Advance the clock to the deadline even if the queue drained early,
        // so back-to-back `run_until` calls observe monotonic time.
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Run until the event queue is fully drained (use only with workloads
    /// that terminate; gossip protocols with periodic timers never drain).
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        self.start_if_needed();
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Consume the simulator and return the actors (to extract results).
    pub fn into_actors(mut self) -> Vec<Box<dyn Actor<M>>> {
        std::mem::take(&mut self.actors)
    }
}

impl<M> Drop for Sim<M> {
    /// Account for messages still in flight when the simulation is torn
    /// down (horizon reached mid-delivery): each is recorded as dropped
    /// with reason `shutdown`. Without this, truncated runs would break
    /// the `messages_sent == messages_delivered + messages_dropped`
    /// conservation identity (see `docs/METRICS.md`).
    fn drop(&mut self) {
        let now_us = self.now.as_micros();
        while let Some(ev) = self.queue.pop() {
            if let EventPayload::Deliver { from, to, .. } = ev.payload {
                self.dropped_messages += 1;
                self.recorder.record(
                    now_us,
                    EventKind::MessageDropped {
                        from: from.0 as u64,
                        to: to.0 as u64,
                        reason: DropReason::Shutdown,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Echoes every message back to its sender, once.
    struct Echo {
        log: Rc<RefCell<Vec<(SimTime, NodeId, u32)>>>,
    }

    impl Actor<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Context<u32>, from: NodeId, msg: u32) {
            self.log.borrow_mut().push((ctx.now(), from, msg));
            if msg < 100 {
                ctx.send(from, msg + 100);
            }
        }
    }

    type EchoLog = Rc<RefCell<Vec<(SimTime, NodeId, u32)>>>;

    fn two_node_sim(latency: LatencyModel, faults: FaultSchedule) -> (Sim<u32>, EchoLog) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(SimConfig::default().seed(1).latency(latency).faults(faults));
        sim.add_node(Box::new(Echo { log: log.clone() }));
        sim.add_node(Box::new(Echo { log: log.clone() }));
        (sim, log)
    }

    #[test]
    fn request_reply_round_trip() {
        let (mut sim, log) =
            two_node_sim(LatencyModel::Constant(Duration::from_millis(5)), FaultSchedule::none());
        sim.inject_at(SimTime::from_millis(1), NodeId(0), NodeId(1), 7);
        sim.run_until(SimTime::from_millis(100));
        let log = log.borrow();
        // Node 1 receives 7 at t=1ms, echoes 107 which node 0 receives at 6ms.
        assert_eq!(log.len(), 2);
        assert_eq!(log[0], (SimTime::from_millis(1), NodeId(0), 7));
        assert_eq!(log[1], (SimTime::from_millis(6), NodeId(1), 107));
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new(SimConfig::default().seed(seed).latency(LatencyModel::lan()));
            sim.add_node(Box::new(Echo { log: log.clone() }));
            sim.add_node(Box::new(Echo { log: log.clone() }));
            for i in 0..20 {
                sim.inject_at(SimTime::from_millis(i), NodeId(0), NodeId(1), i as u32);
            }
            sim.run_until(SimTime::from_secs(1));
            let v = log.borrow().clone();
            v
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn partition_drops_messages() {
        let faults = FaultSchedule::none().partition(
            vec![NodeId(0)],
            SimTime::ZERO,
            SimTime::from_millis(50),
        );
        let (mut sim, log) = two_node_sim(LatencyModel::Constant(Duration::from_millis(1)), faults);
        sim.inject_at(SimTime::from_millis(10), NodeId(0), NodeId(1), 1);
        sim.run_until(SimTime::from_millis(40));
        // The injected message is delivered (injection bypasses the network),
        // but node 1's echo back to node 0 is dropped by the partition.
        assert_eq!(log.borrow().len(), 1);
        assert!(sim.dropped_messages >= 1);
    }

    #[test]
    fn crashed_node_drops_messages_then_recovers() {
        let faults = FaultSchedule::none().crash(
            NodeId(1),
            SimTime::from_millis(0),
            SimTime::from_millis(20),
        );
        let (mut sim, log) = two_node_sim(LatencyModel::Constant(Duration::from_millis(1)), faults);
        sim.inject_at(SimTime::from_millis(10), NodeId(0), NodeId(1), 1); // dropped: crashed
        sim.inject_at(SimTime::from_millis(30), NodeId(0), NodeId(1), 2); // delivered
        sim.run_until(SimTime::from_millis(100));
        let log = log.borrow();
        let received: Vec<u32> = log.iter().map(|&(_, _, m)| m).collect();
        assert!(received.contains(&2));
        assert!(!received.contains(&1));
    }

    #[test]
    fn full_loss_drops_everything() {
        let faults = FaultSchedule::none().loss_rate(SimTime::ZERO, 1.0);
        let (mut sim, log) = two_node_sim(LatencyModel::Constant(Duration::from_millis(1)), faults);
        sim.inject_at(SimTime::from_millis(1), NodeId(0), NodeId(1), 1);
        sim.run_until(SimTime::from_millis(100));
        // Injection is delivered; the echo reply is lost.
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(sim.dropped_messages, 1);
    }

    struct TimerUser {
        fired: Rc<RefCell<Vec<u64>>>,
        cancel_second: bool,
    }

    impl Actor<u32> for TimerUser {
        fn on_start(&mut self, ctx: &mut Context<u32>) {
            ctx.set_timer(Duration::from_millis(10), 1);
            let second = ctx.set_timer(Duration::from_millis(20), 2);
            if self.cancel_second {
                ctx.cancel_timer(second);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<u32>, _from: NodeId, _msg: u32) {}
        fn on_timer(&mut self, _ctx: &mut Context<u32>, _timer_id: u64, tag: u64) {
            self.fired.borrow_mut().push(tag);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<u32> = Sim::new(SimConfig::default());
        sim.add_node(Box::new(TimerUser { fired: fired.clone(), cancel_second: false }));
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(*fired.borrow(), vec![1, 2]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<u32> = Sim::new(SimConfig::default());
        sim.add_node(Box::new(TimerUser { fired: fired.clone(), cancel_second: true }));
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(*fired.borrow(), vec![1]);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim: Sim<u32> = Sim::new(SimConfig::default());
        sim.add_node(Box::new(Echo { log: Rc::new(RefCell::new(Vec::new())) }));
        sim.run_until(SimTime::from_millis(250));
        assert_eq!(sim.now(), SimTime::from_millis(250));
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn inject_into_past_panics() {
        let (mut sim, _log) =
            two_node_sim(LatencyModel::Constant(Duration::from_millis(1)), FaultSchedule::none());
        sim.run_until(SimTime::from_millis(10));
        sim.inject_at(SimTime::from_millis(5), NodeId(0), NodeId(1), 1);
    }
}
