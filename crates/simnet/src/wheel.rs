//! The hierarchical timing-wheel event queue backend.
//!
//! This is the hot-path replacement for the binary-heap backend in
//! [`crate::event`]. It upholds exactly the same ordering contract —
//! events pop in ascending `(time, seq)` order — but turns the
//! `O(log n)` heap sift (which moves whole event envelopes on every
//! compare-and-swap) into `O(1)` amortized bucket appends of 24-byte
//! keys, with the envelopes themselves parked in a free-list slab and
//! never moved until they fire.
//!
//! ## Structure
//!
//! * **Levels.** [`LEVELS`] wheel levels of [`SLOTS`] slots each. A slot
//!   at level `l` spans `64^l` microseconds of virtual time, so level 0
//!   resolves single microsecond ticks and the whole wheel covers
//!   `64^6 ≈ 19.1` virtual hours ahead of the cursor. An event lands at
//!   the lowest level whose slot still distinguishes it from the cursor
//!   (the level of the highest 6-bit group in which `time XOR cursor`
//!   differs). As the cursor advances into a higher-level slot, that
//!   slot's events **cascade**: they are re-homed into lower levels,
//!   eventually reaching a level-0 slot, which holds exactly one
//!   timestamp.
//!
//! * **Overflow policy.** Events more than a wheel span ahead of the
//!   cursor (far-future timers, `SimTime::MAX` sentinels) go to a small
//!   binary heap ordered by `(time, seq)`. The overflow heap is only
//!   consulted when the wheel proper is empty: because every wheel entry
//!   shares the cursor's high bit-groups and every overflow entry
//!   exceeds them, the overflow minimum is always later than the entire
//!   wheel. When the wheel drains, the cursor jumps to the overflow
//!   minimum and every overflow entry within the new span migrates in.
//!
//! * **Slab lifecycle.** Envelopes (message payloads, timer metadata,
//!   fault events) live in a slab: a `Vec` of slots plus a LIFO free
//!   list. Push claims a slot (reusing the most recently freed one —
//!   the slot most likely still in cache); pop vacates it. Wheel slots
//!   and the overflow heap store only `(time, seq, slab index)` keys.
//!   A slot is `None` exactly when it is on the free list, which is the
//!   invariant that makes double-free or aliasing of a live envelope a
//!   panic rather than silent corruption.
//!
//! * **Batch drain.** Popping drains one level-0 slot at a time into a
//!   `seq`-sorted batch buffer, so a burst of same-tick events (a
//!   broadcast fan-out, a quorum of replies) costs one wheel walk for
//!   the whole tick. Events pushed *at* the drained tick while the batch
//!   is being served carry later `seq` values and are picked up by the
//!   next drain of the same slot, preserving the ordering contract.
//!
//! The simulator can briefly advance the cursor *past* pending-push
//! times: `peek_time` pre-drains the next slot, and a driver may then
//! inject an earlier event (still later than everything already
//! popped). Such keys are spliced into the sorted batch directly — a
//! cold path that keeps the contract airtight without re-winding the
//! wheel.

use crate::event::{Event, EventPayload};
use crate::faults::FaultEvent;
use crate::sim::NodeId;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels; beyond `64^LEVELS` microseconds ahead of the
/// cursor, events overflow to the far-future heap.
const LEVELS: usize = 6;

/// A queue entry: where in time it fires, its tie-break sequence, and
/// which slab slot holds its envelope. Keys are what the wheel moves
/// around; envelopes stay put.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: u64,
    seq: u64,
    slot: u32,
}

/// Compact envelope stored in the slab. [`NodeId`] is natively `u32`
/// (actor tables are dense and start at 0; see [`crate::sim::Sim`]) so
/// ids are stored as-is — no narrow/widen shims — and the rare, bulky
/// fault variant is boxed so it does not inflate every slot.
enum Envelope<M> {
    Deliver { from: NodeId, to: NodeId, trace: u64, span: u64, msg: M },
    Timer { node: NodeId, timer_id: u64, tag: u64, trace: u64, span: u64 },
    Fault(Box<FaultEvent>),
}

impl<M> Envelope<M> {
    fn compact(payload: EventPayload<M>) -> Self {
        match payload {
            EventPayload::Deliver { from, to, msg, trace, span } => {
                Envelope::Deliver { from, to, trace, span, msg }
            }
            EventPayload::Timer { node, timer_id, tag, trace, span } => {
                Envelope::Timer { node, timer_id, tag, trace, span }
            }
            EventPayload::Fault(ev) => Envelope::Fault(Box::new(ev)),
        }
    }

    fn expand(self) -> EventPayload<M> {
        match self {
            Envelope::Deliver { from, to, trace, span, msg } => {
                EventPayload::Deliver { from, to, msg, trace, span }
            }
            Envelope::Timer { node, timer_id, tag, trace, span } => {
                EventPayload::Timer { node, timer_id, tag, trace, span }
            }
            Envelope::Fault(ev) => EventPayload::Fault(*ev),
        }
    }
}

/// Free-list slab of event envelopes. `slots[i]` is `Some` iff `i` is
/// live (claimed by exactly one wheel/overflow/batch key); freed
/// indices are reused LIFO.
struct Slab<M> {
    slots: Vec<Option<Envelope<M>>>,
    free: Vec<u32>,
}

impl<M> Slab<M> {
    fn new() -> Self {
        Slab { slots: Vec::new(), free: Vec::new() }
    }

    fn insert(&mut self, env: Envelope<M>) -> u32 {
        match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                assert!(slot.is_none(), "free list handed out a live slot (aliasing)");
                *slot = Some(env);
                i
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event slab exhausted u32 indices");
                self.slots.push(Some(env));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn remove(&mut self, i: u32) -> Envelope<M> {
        let env = self.slots[i as usize].take().expect("slab slot freed twice");
        self.free.push(i);
        env
    }
}

/// A deterministic event queue backed by a hierarchical timing wheel
/// with a far-future overflow heap and a slab of envelopes. Pops in
/// strictly ascending `(time, seq)` order — byte-for-byte the same
/// schedule as the binary-heap backend.
pub(crate) struct TimingWheel<M> {
    slab: Slab<M>,
    /// `LEVELS × SLOTS` buckets of keys, flattened level-major.
    buckets: Vec<Vec<Key>>,
    /// One occupancy bit per slot, per level; bit `s` of `occupied[l]`
    /// is set iff `buckets[l * SLOTS + s]` is non-empty.
    occupied: [u64; LEVELS],
    /// Far-future entries (more than a wheel span ahead of the cursor).
    overflow: BinaryHeap<Reverse<Key>>,
    /// The pre-drained earliest tick, sorted ascending by `(at, seq)`.
    batch: VecDeque<Key>,
    /// Lower bound (inclusive) on every time stored in the wheel and
    /// overflow; advances monotonically as slots drain.
    cursor: u64,
    /// Time of the most recently popped event: nothing may ever be
    /// pushed before this (the simulator never schedules into the past).
    floor: u64,
    len: usize,
}

impl<M> TimingWheel<M> {
    pub(crate) fn new() -> Self {
        TimingWheel {
            slab: Slab::new(),
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            batch: VecDeque::new(),
            cursor: 0,
            floor: 0,
            len: 0,
        }
    }

    /// The 6-bit group of `t` addressed by level `l`.
    #[inline]
    fn group(t: u64, l: usize) -> usize {
        ((t >> (LEVEL_BITS * l as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// The level whose slot resolution still distinguishes `at` from the
    /// cursor; `>= LEVELS` means `at` is beyond the wheel span (overflow).
    #[inline]
    fn level_for(&self, at: u64) -> usize {
        let x = at ^ self.cursor;
        if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / LEVEL_BITS) as usize
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, seq: u64, payload: EventPayload<M>) {
        let slot = self.slab.insert(Envelope::compact(payload));
        self.len += 1;
        self.place(Key { at: at.as_micros(), seq, slot });
    }

    fn place(&mut self, key: Key) {
        debug_assert!(key.at >= self.floor, "scheduled before an already-popped event");
        if key.at < self.cursor {
            // `peek_time` pre-drained a later tick and the driver then
            // injected an earlier event: splice it into the sorted batch.
            let pos = self.batch.partition_point(|k| (k.at, k.seq) < (key.at, key.seq));
            self.batch.insert(pos, key);
            return;
        }
        let l = self.level_for(key.at);
        if l >= LEVELS {
            self.overflow.push(Reverse(key));
            return;
        }
        let s = Self::group(key.at, l);
        self.buckets[l * SLOTS + s].push(key);
        self.occupied[l] |= 1 << s;
    }

    /// Drain the earliest pending tick into the batch buffer. Returns
    /// `false` when the queue holds nothing outside the batch.
    fn fill_batch(&mut self) -> bool {
        loop {
            let Some(l) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty: jump the cursor to the overflow minimum
                // and migrate everything within the new span.
                let Some(&Reverse(top)) = self.overflow.peek() else {
                    return false;
                };
                self.cursor = top.at;
                while let Some(&Reverse(next)) = self.overflow.peek() {
                    if self.level_for(next.at) >= LEVELS {
                        break;
                    }
                    let Reverse(key) = self.overflow.pop().expect("peeked");
                    self.place(key);
                }
                continue;
            };
            let s = self.occupied[l].trailing_zeros() as usize;
            let bucket = std::mem::take(&mut self.buckets[l * SLOTS + s]);
            self.occupied[l] &= !(1 << s);
            debug_assert!(!bucket.is_empty(), "occupancy bit set on an empty bucket");
            if l == 0 {
                // A level-0 slot within the current rotation holds
                // exactly one timestamp; order the tick by seq.
                let mut bucket = bucket;
                bucket.sort_unstable_by_key(|k| k.seq);
                debug_assert!(bucket.windows(2).all(|w| w[0].at == w[1].at));
                self.cursor = bucket[0].at;
                self.batch.extend(bucket);
                return true;
            }
            // Cascade: advance the cursor to the slot's start and
            // re-home its entries; each lands strictly below level `l`.
            let high_mask = !0u64 << (LEVEL_BITS * (l as u32 + 1));
            self.cursor = (self.cursor & high_mask) | ((s as u64) << (LEVEL_BITS * l as u32));
            for key in bucket {
                self.place(key);
            }
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Event<M>> {
        if self.batch.is_empty() && !self.fill_batch() {
            return None;
        }
        let key = self.batch.pop_front().expect("batch filled");
        self.len -= 1;
        self.floor = key.at;
        let payload = self.slab.remove(key.slot).expand();
        Some(Event { at: SimTime::from_micros(key.at), seq: key.seq, payload })
    }

    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        if self.batch.is_empty() && !self.fill_batch() {
            return None;
        }
        Some(SimTime::from_micros(self.batch.front().expect("batch filled").at))
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Count pending `Deliver` envelopes by walking the live slab slots.
    /// O(slab capacity) — only used by the debug assertion that
    /// cross-checks [`crate::event::EventQueue`]'s incremental count.
    pub(crate) fn walk_deliver_count(&self) -> usize {
        self.slab.slots.iter().filter(|s| matches!(s, Some(Envelope::Deliver { .. }))).count()
    }
}

impl<M> std::fmt::Debug for TimingWheel<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimingWheel")
            .field("len", &self.len)
            .field("cursor", &self.cursor)
            .field("overflow", &self.overflow.len())
            .field("batch", &self.batch.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(tag: u64) -> EventPayload<()> {
        EventPayload::Timer { node: NodeId(0), timer_id: 0, tag, trace: 0, span: 0 }
    }

    fn tag_of(ev: &Event<()>) -> u64 {
        match ev.payload {
            EventPayload::Timer { tag, .. } => tag,
            _ => panic!("expected timer"),
        }
    }

    #[test]
    fn cascades_across_levels() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        // Times spanning level 0 (same 64us window), level 2, level 4.
        let times = [5u64, 63, 64, 4096, 1 << 20, (1 << 24) + 17, 1 << 30];
        for (i, &t) in times.iter().enumerate() {
            w.push(SimTime::from_micros(t), i as u64, timer(t));
        }
        let mut popped = Vec::new();
        while let Some(ev) = w.pop() {
            popped.push(ev.at.as_micros());
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn far_future_overflows_and_comes_back() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        let span = 1u64 << (LEVEL_BITS * LEVELS as u32);
        w.push(SimTime::from_micros(10), 0, timer(1));
        w.push(SimTime::from_micros(span * 3 + 7), 1, timer(2));
        w.push(SimTime::from_micros(span + 1), 2, timer(3));
        assert_eq!(w.overflow.len(), 2, "beyond-span events must overflow");
        assert_eq!(tag_of(&w.pop().unwrap()), 1);
        assert_eq!(tag_of(&w.pop().unwrap()), 3);
        assert_eq!(tag_of(&w.pop().unwrap()), 2);
        assert!(w.pop().is_none());
    }

    #[test]
    fn same_tick_orders_by_seq_even_when_pushed_mid_drain() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        w.push(SimTime::from_micros(50), 0, timer(0));
        w.push(SimTime::from_micros(50), 1, timer(1));
        assert_eq!(tag_of(&w.pop().unwrap()), 0);
        // The tick is half-served; a same-tick push must fire after the
        // rest of the batch.
        w.push(SimTime::from_micros(50), 2, timer(2));
        assert_eq!(tag_of(&w.pop().unwrap()), 1);
        assert_eq!(tag_of(&w.pop().unwrap()), 2);
    }

    #[test]
    fn insert_below_predrained_cursor_splices_into_batch() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        w.push(SimTime::from_micros(100), 0, timer(100));
        // peek pre-drains the t=100 slot, advancing the cursor to 100.
        assert_eq!(w.peek_time(), Some(SimTime::from_micros(100)));
        // An injection at t=50 (later than everything popped) must still
        // fire first.
        w.push(SimTime::from_micros(50), 1, timer(50));
        assert_eq!(w.peek_time(), Some(SimTime::from_micros(50)));
        assert_eq!(tag_of(&w.pop().unwrap()), 50);
        assert_eq!(tag_of(&w.pop().unwrap()), 100);
    }

    #[test]
    fn slab_reuses_freed_slots_without_aliasing() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        for round in 0..100u64 {
            w.push(SimTime::from_micros(round * 10), round, timer(round));
            let ev = w.pop().unwrap();
            assert_eq!(tag_of(&ev), round);
        }
        // One slot allocated, reused 100 times.
        assert_eq!(w.slab.slots.len(), 1);
        assert_eq!(w.slab.free.len(), 1);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        assert_eq!(w.len(), 0);
        for i in 0..10 {
            w.push(SimTime::from_micros(i * 1000), i, timer(i));
        }
        assert_eq!(w.len(), 10);
        w.pop();
        assert_eq!(w.len(), 9);
    }
}
