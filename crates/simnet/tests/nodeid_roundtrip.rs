//! Property tests for compact `u32` [`NodeId`] round-trips.
//!
//! The id type is the narrowest field on the hot path, so every place
//! it crosses a representation boundary must be lossless right up to
//! `u32::MAX`: the slab envelope compact/expand step inside the timing
//! wheel, serde (JSONL) serialization, and the client-visible
//! [`OpRecord`]. Strategies bias toward the top of the range — the
//! off-by-one and truncation bugs live there, not in the middle.

use proptest::prelude::*;
use simnet::event::{EventPayload, EventQueue};
use simnet::{NodeId, OpKind, OpRecord, QueueKind, SimTime};

/// Ids clustered near `u32::MAX`, near zero, and anywhere in between.
fn node_id() -> impl Strategy<Value = NodeId> {
    prop_oneof![u32::MAX - 64..=u32::MAX, u32::MAX - 64..=u32::MAX, 0u32..=64, any::<u32>()]
        .prop_map(NodeId)
}

proptest! {
    /// A `Deliver` envelope's `from`/`to` ids survive the wheel's
    /// slab compact/expand round-trip, on both queue backends.
    #[test]
    fn deliver_ids_round_trip_through_queue(
        from in node_id(),
        to in node_id(),
        at in 0u64..5_000_000,
        msg in any::<u64>(),
    ) {
        for kind in QueueKind::ALL {
            let mut q = EventQueue::with_kind(kind);
            q.push(
                SimTime::from_micros(at),
                EventPayload::Deliver { from, to, msg, trace: 7, span: 9 },
            );
            let ev = q.pop().expect("one event was pushed");
            match ev.payload {
                EventPayload::Deliver { from: f, to: t, msg: m, trace, span } => {
                    prop_assert_eq!(f, from, "backend {}", kind.label());
                    prop_assert_eq!(t, to, "backend {}", kind.label());
                    prop_assert_eq!(m, msg);
                    prop_assert_eq!((trace, span), (7, 9));
                }
                other => prop_assert!(false, "unexpected payload {other:?}"),
            }
        }
    }

    /// A `Timer` envelope's node id survives compact/expand too.
    #[test]
    fn timer_ids_round_trip_through_queue(
        node in node_id(),
        at in 0u64..5_000_000,
        tag in any::<u64>(),
    ) {
        for kind in QueueKind::ALL {
            let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
            q.push(
                SimTime::from_micros(at),
                EventPayload::Timer { node, timer_id: 3, tag, trace: 0, span: 0 },
            );
            let ev = q.pop().expect("one event was pushed");
            match ev.payload {
                EventPayload::Timer { node: n, tag: g, .. } => {
                    prop_assert_eq!(n, node, "backend {}", kind.label());
                    prop_assert_eq!(g, tag);
                }
                other => prop_assert!(false, "unexpected payload {other:?}"),
            }
        }
    }

    /// `NodeId` serializes as a bare number and round-trips through the
    /// JSONL representation losslessly.
    #[test]
    fn node_id_round_trips_through_json(id in node_id()) {
        let line = serde_json::to_string(&id).unwrap();
        prop_assert_eq!(&line, &id.0.to_string(), "NodeId must serialize as a bare u32");
        let back: NodeId = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back, id);
    }

    /// A full `OpRecord` — the unit of every JSONL trace line — keeps
    /// its replica id exactly through a serialize/deserialize cycle.
    #[test]
    fn op_record_round_trips_through_jsonl(
        replica in node_id(),
        key in any::<u64>(),
        value in any::<u64>(),
        ok in any::<bool>(),
    ) {
        let rec = OpRecord {
            session: 1,
            op_id: 42,
            key,
            kind: OpKind::Write,
            value_written: Some(value),
            value_read: vec![],
            invoked: SimTime::from_micros(10),
            completed: SimTime::from_micros(250),
            replica,
            ok,
            version_ts: None,
            stamp: Some((3, replica.0 as u64)),
        };
        let line = serde_json::to_string(&rec).unwrap();
        prop_assert!(!line.contains('\n'), "JSONL lines must be newline-free");
        let back: OpRecord = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(back, rec);
    }
}
