//! Queue-backend conformance: the binary heap and the timing wheel are
//! the same queue.
//!
//! The ordering contract (`simnet::event`): pops come in strictly
//! ascending `(time, seq)` order, with `seq` the insertion counter.
//! These tests drive both backends through randomized schedules —
//! near-future scatter, same-tick bursts, far-future timers beyond the
//! wheel span, interleaved pops — and require identical pop sequences,
//! then pin the slab's no-aliasing guarantee and cancel/re-arm
//! equivalence at the simulator level. Whole-protocol byte parity lives
//! in the workspace-root `tests/queue_parity.rs`.

use simnet::event::{EventPayload, EventQueue};
use simnet::sim::NodeId;
use simnet::{Actor, Context, Duration, QueueKind, Sim, SimConfig, SimRng, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn push_timer(q: &mut EventQueue<u64>, at: u64, tag: u64) {
    q.push(
        SimTime::from_micros(at),
        EventPayload::Timer { node: NodeId(0), timer_id: 0, tag, trace: 0, span: 0 },
    );
}

fn pop_key(q: &mut EventQueue<u64>) -> Option<(u64, u64, u64)> {
    q.pop().map(|ev| match ev.payload {
        EventPayload::Timer { tag, .. } => (ev.at.as_micros(), ev.seq, tag),
        _ => panic!("schedule only pushes timers"),
    })
}

/// One randomized schedule: a deterministic (seeded) interleaving of
/// pushes and pops over a mix of time horizons. Returns the pop
/// sequence observed by `kind`.
fn run_schedule(kind: QueueKind, seed: u64) -> Vec<(u64, u64, u64)> {
    let mut rng = SimRng::new(seed);
    let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
    let mut out = Vec::new();
    let mut now = 0u64; // lower bound for new pushes: the last popped time
    let mut tag = 0u64;
    for _ in 0..600 {
        match rng.below(10) {
            // 60%: push somewhere between "now" and a few wheel levels out.
            0..=5 => {
                let horizon = match rng.below(4) {
                    0 => 64,         // same level-0 window
                    1 => 10_000,     // a few ms
                    2 => 50_000_000, // ~a minute of virtual time
                    _ => 1 << 40,    // beyond the wheel span: overflow
                };
                push_timer(&mut q, now + rng.below(horizon), tag);
                tag += 1;
            }
            // 20%: a same-tick burst (ties must pop in insertion order).
            6..=7 => {
                let at = now + rng.below(1000);
                for _ in 0..rng.below(6) + 2 {
                    push_timer(&mut q, at, tag);
                    tag += 1;
                }
            }
            // 20%: pop (advancing the floor for future pushes).
            _ => {
                if let Some(k) = pop_key(&mut q) {
                    now = k.0;
                    out.push(k);
                }
            }
        }
    }
    while let Some(k) = pop_key(&mut q) {
        out.push(k);
    }
    out
}

#[test]
fn randomized_schedules_pop_identically_on_both_backends() {
    for seed in 0..200 {
        let wheel = run_schedule(QueueKind::TimingWheel, seed);
        let heap = run_schedule(QueueKind::BinaryHeap, seed);
        assert_eq!(wheel, heap, "pop sequences diverged at schedule seed {seed}");
    }
}

#[test]
fn pop_order_is_ascending_time_then_seq() {
    for seed in [1, 99] {
        for kind in QueueKind::ALL {
            let popped = run_schedule(kind, seed);
            for w in popped.windows(2) {
                assert!(
                    (w[0].0, w[0].1) < (w[1].0, w[1].1),
                    "{kind:?}: contract violated: {:?} popped before {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// Slab reuse must never alias a live envelope: every pushed payload
/// comes back exactly once, unmodified, even under heavy slot churn.
#[test]
fn slab_reuse_never_aliases_live_envelopes() {
    let mut rng = SimRng::new(0xa11a5);
    let mut q: EventQueue<u64> = EventQueue::with_kind(QueueKind::TimingWheel);
    let mut pushed = Vec::new();
    let mut popped = Vec::new();
    let mut now = 0u64;
    let mut tag = 0u64;
    // Heavy churn: bursts of pushes fully drained, repeatedly, so freed
    // slab slots are recycled across rounds.
    for _round in 0..50 {
        for _ in 0..rng.below(40) + 10 {
            let at = now + rng.below(5_000);
            push_timer(&mut q, at, tag);
            pushed.push(tag);
            tag += 1;
        }
        for _ in 0..rng.below(30) + 10 {
            if let Some((at, _, t)) = pop_key(&mut q) {
                now = at;
                popped.push(t);
            }
        }
    }
    while let Some((_, _, t)) = pop_key(&mut q) {
        popped.push(t);
    }
    pushed.sort_unstable();
    popped.sort_unstable();
    assert_eq!(pushed, popped, "a slab slot was lost, duplicated, or aliased");
}

/// An actor that randomly arms, cancels, and re-arms timers (driven by
/// the shared deterministic RNG), logging every firing. Cancellation
/// and re-arming is simulator state layered over the queue; runs must
/// be identical whichever backend is underneath.
struct TimerChurn {
    fired: Rc<RefCell<Vec<(u64, u64, u64)>>>,
    armed: Vec<u64>,
}

impl Actor<u64> for TimerChurn {
    fn on_start(&mut self, ctx: &mut Context<u64>) {
        for tag in 0..4 {
            self.armed.push(ctx.set_timer(Duration::from_micros(500 + tag * 137), tag));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<u64>, timer_id: u64, tag: u64) {
        self.fired.borrow_mut().push((ctx.now().as_micros(), timer_id, tag));
        self.armed.retain(|&id| id != timer_id);
        // Re-arm: sometimes near, sometimes beyond the wheel span.
        let far = ctx.rng().chance(0.1);
        let delay = if far {
            Duration::from_micros(1 << 37)
        } else {
            let us = ctx.rng().below(20_000) + 1;
            Duration::from_micros(us)
        };
        self.armed.push(ctx.set_timer(delay, tag + 100));
        // Occasionally cancel a random armed timer.
        if !self.armed.is_empty() && ctx.rng().chance(0.3) {
            let victim = ctx.rng().index(self.armed.len());
            let id = self.armed.swap_remove(victim);
            ctx.cancel_timer(id);
        }
    }

    fn on_message(&mut self, _ctx: &mut Context<u64>, _from: NodeId, _msg: u64) {}
}

#[test]
fn cancel_and_rearm_schedules_match_across_backends() {
    let run = |kind: QueueKind, seed: u64| {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<u64> = Sim::new(SimConfig::default().seed(seed).queue(kind));
        for _ in 0..3 {
            sim.add_node(Box::new(TimerChurn { fired: fired.clone(), armed: Vec::new() }));
        }
        sim.run_until(SimTime::from_secs(2));
        let log = fired.borrow().clone();
        log
    };
    for seed in [7, 21] {
        let wheel = run(QueueKind::TimingWheel, seed);
        let heap = run(QueueKind::BinaryHeap, seed);
        assert!(!wheel.is_empty(), "churn actors never fired a timer");
        assert_eq!(wheel, heap, "timer cancel/re-arm diverged across backends (seed {seed})");
    }
}

/// `run_until` + later injection: the wheel may pre-drain its next tick
/// while peeking past a deadline; an event injected earlier than that
/// pre-drained tick must still fire first.
struct Sink {
    got: Rc<RefCell<Vec<(u64, u64)>>>,
}

impl Actor<u64> for Sink {
    fn on_start(&mut self, ctx: &mut Context<u64>) {
        ctx.set_timer(Duration::from_millis(100), 42);
    }
    fn on_message(&mut self, ctx: &mut Context<u64>, _from: NodeId, msg: u64) {
        self.got.borrow_mut().push((ctx.now().as_micros(), msg));
    }
    fn on_timer(&mut self, ctx: &mut Context<u64>, _timer_id: u64, tag: u64) {
        self.got.borrow_mut().push((ctx.now().as_micros(), tag));
    }
}

#[test]
fn injection_between_run_until_calls_fires_before_predrained_events() {
    for kind in QueueKind::ALL {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<u64> = Sim::new(SimConfig::default().queue(kind));
        sim.add_node(Box::new(Sink { got: got.clone() }));
        // Runs past every queued event except the t=100ms timer; the
        // peek at the deadline boundary pre-drains that tick.
        sim.run_until(SimTime::from_millis(10));
        // Now inject something earlier than the pending timer.
        sim.inject_at(SimTime::from_millis(50), NodeId(0), NodeId(0), 7);
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(
            *got.borrow(),
            vec![(50_000, 7), (100_000, 42)],
            "{kind:?}: injected event must precede the pre-drained timer"
        );
    }
}
