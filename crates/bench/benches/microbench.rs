//! Criterion micro-benchmarks for the hot paths underneath the
//! experiment suite: logical clocks, CRDT merges, the storage substrate,
//! workload generation, and raw simulator event throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use clocks::{LamportTimestamp, VectorClock};
use crdt::{CvRdt, GCounter, OrSet, Rga};
use kvstore::{MvStore, Value, Wal};
use simnet::{Actor, Context, Duration, NodeId, Sim, SimConfig, SimRng, SimTime};
use workload::ZipfSampler;

fn clocks_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("clocks");
    let a = VectorClock::from_pairs((0..16).map(|i| (i, i * 3 + 1)));
    let b = VectorClock::from_pairs((8..24).map(|i| (i, i * 2 + 5)));
    g.bench_function("vector_clock_merge_16", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut x| {
                x.merge(black_box(&b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("vector_clock_compare_16", |bch| {
        bch.iter(|| black_box(&a).compare(black_box(&b)))
    });
    g.finish();
}

fn crdt_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("crdt");
    let mut set_a = OrSet::new();
    let mut set_b = OrSet::new();
    for i in 0..200u32 {
        set_a.insert(0, i);
        set_b.insert(1, i + 100);
    }
    g.bench_function("orset_merge_200", |bch| {
        bch.iter_batched(
            || set_a.clone(),
            |mut x| {
                x.merge(black_box(&set_b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    let mut ctr_a = GCounter::new();
    let mut ctr_b = GCounter::new();
    for i in 0..32 {
        ctr_a.increment(i, i + 1);
        ctr_b.increment(i + 16, i + 1);
    }
    g.bench_function("gcounter_merge_32", |bch| {
        bch.iter_batched(
            || ctr_a.clone(),
            |mut x| {
                x.merge(black_box(&ctr_b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    let mut rga = Rga::new();
    for i in 0..100u32 {
        rga.push(0, i);
    }
    g.bench_function("rga_materialize_100", |bch| bch.iter(|| black_box(&rga).to_vec()));
    g.finish();
}

fn kvstore_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvstore");
    g.throughput(Throughput::Elements(1));
    g.bench_function("mvstore_put", |bch| {
        let mut store = MvStore::new();
        let mut i = 0u64;
        bch.iter(|| {
            i += 1;
            store.put(i % 1024, Value::from_u64(i), LamportTimestamp::new(i, 0), i)
        })
    });
    let mut store = MvStore::new();
    for i in 0..100_000u64 {
        store.put(i % 1024, Value::from_u64(i), LamportTimestamp::new(i, 0), i);
    }
    g.bench_function("mvstore_get_hot", |bch| {
        let mut i = 0u64;
        bch.iter(|| {
            i += 1;
            black_box(store.get(i % 1024))
        })
    });
    let mut wal = Wal::new();
    for i in 1..=10_000u64 {
        wal.append(i % 64, Value::from_u64(i), LamportTimestamp::new(i, 0), i);
    }
    g.bench_function("wal_recover_10k", |bch| bch.iter(|| black_box(&wal).recover(None)));
    g.finish();
}

fn workload_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.throughput(Throughput::Elements(1));
    g.bench_function("zipf_sample_1m_keys", |bch| {
        let mut z = ZipfSampler::new(1_000_000, 0.99);
        let mut rng = SimRng::new(1);
        bch.iter(|| black_box(z.sample(&mut rng)))
    });
    g.finish();
}

/// A ping-pong pair measuring raw simulator event throughput.
struct Pinger {
    peer: NodeId,
}
impl Actor<u64> for Pinger {
    fn on_start(&mut self, ctx: &mut Context<u64>) {
        if ctx.self_id().0 == 0 {
            ctx.send(self.peer, 0);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<u64>, from: NodeId, msg: u64) {
        ctx.send(from, msg + 1);
    }
}

fn simnet_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("event_loop_20k_messages", |bch| {
        bch.iter(|| {
            let mut sim: Sim<u64> = Sim::new(
                SimConfig::default()
                    .seed(7)
                    .latency(simnet::LatencyModel::Constant(Duration::from_micros(50))),
            );
            sim.add_node(Box::new(Pinger { peer: NodeId(1) }));
            sim.add_node(Box::new(Pinger { peer: NodeId(0) }));
            // 20k messages at 50us each = 1s of virtual time.
            sim.run_until(SimTime::from_secs(1));
            black_box(sim.delivered_messages)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    clocks_benches,
    crdt_benches,
    kvstore_benches,
    workload_benches,
    simnet_benches
);
criterion_main!(benches);
