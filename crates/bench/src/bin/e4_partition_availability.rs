//! E4 (Figure): availability through a network partition — CAP made
//! visible.
//!
//! A 15-second run; at t=5 s replica 0 (plus the clients attached to it)
//! is cut off from the rest until t=10 s. One availability-vs-time series
//! per scheme. Expected shape: eventual and R=W=1 quorums sail through at
//! 100%; majority quorums and Paxos lose the minority side's clients;
//! primary-copy loses *all* writes if the primary is in the minority.
//! Multi-seed runs (`--seeds N`) average the scalar availabilities; the
//! plotted timeline stays the base seed's (window boundaries are
//! seed-dependent).

use bench::{pct, pm, print_table, seed_stat, Obs, SeedStat};
use rec_core::metrics::availability_timeline;
use rec_core::scheme::ClientPlacement;
use rec_core::{Experiment, Grid, Scheme};
use serde::Serialize;
use simnet::{Duration, FaultSchedule, LatencyModel, NodeId, SimTime};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Series {
    scheme: String,
    /// (window start ms, availability) pairs — base seed's run.
    timeline: Vec<(f64, f64)>,
    overall: f64,
    overall_ci95: f64,
    during_partition: f64,
    during_partition_ci95: f64,
    seeds: u64,
}

fn experiment(scheme: Scheme) -> Experiment {
    let n = scheme.replica_count();
    let offset = scheme.server_node_count();
    let workload = WorkloadSpec {
        keys: 20,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 50_000 },
        sessions: 6,
        ops_per_session: 280,
    };
    // Partition side A: replica 0 plus every client whose sticky home is
    // replica 0 (sessions are placed round-robin, so clients n, n+3, ...
    // for 3 replicas). For random-placement schemes the clients stay on
    // the majority side.
    let mut side_a = vec![NodeId(0)];
    for c in 0..workload.sessions as usize {
        if c % n == 0 {
            side_a.push(NodeId((offset + c) as u32));
        }
    }
    // Sloppy quorums keep their spares reachable from side A (that is the
    // deployment's whole point: spares absorb writes for the cut-off
    // side), so put the spare nodes with the minority.
    if let Scheme::SloppyQuorum { n, spares, .. } = &scheme {
        for sp in 0..*spares {
            side_a.push(NodeId((n + sp) as u32));
        }
    }
    let faults =
        FaultSchedule::none().partition(side_a, SimTime::from_secs(5), SimTime::from_secs(10));
    Experiment::new(scheme)
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(10),
        })
        .workload(workload)
        .faults(faults)
        .seed(99)
        .horizon(SimTime::from_secs(25))
}

fn main() {
    let obs = Obs::from_args();
    let schemes = vec![
        Scheme::eventual(3),
        Scheme::Quorum { n: 3, r: 1, w: 1, read_repair: true, placement: ClientPlacement::Sticky },
        Scheme::Quorum { n: 3, r: 2, w: 2, read_repair: true, placement: ClientPlacement::Sticky },
        Scheme::SloppyQuorum { n: 3, r: 2, w: 2, spares: 2 },
        Scheme::PrimarySync { replicas: 3 },
        Scheme::PrimaryAsyncFailover {
            replicas: 3,
            ship_interval: simnet::Duration::from_millis(50),
        },
        Scheme::Paxos { nodes: 3 },
        Scheme::Causal { replicas: 3 },
    ];
    let mut grid = Grid::new();
    for s in schemes {
        grid.push(s.label(), experiment(s));
    }
    let cells = obs.run_grid(grid);

    let mut series = Vec::new();
    let mut stats: Vec<(SeedStat, SeedStat)> = Vec::new();
    for seeds in cells.chunks(obs.seeds as usize) {
        let during_of = |cell: &rec_core::CellResult| -> f64 {
            let timeline = availability_timeline(&cell.result.trace, Duration::from_secs(1));
            let during: Vec<f64> = timeline
                .iter()
                .filter(|(t, _)| (5_000.0..10_000.0).contains(t))
                .map(|(_, a)| *a)
                .collect();
            if during.is_empty() {
                1.0
            } else {
                during.iter().sum::<f64>() / during.len() as f64
            }
        };
        let overall =
            seed_stat(&seeds.iter().map(|c| c.result.trace.success_rate()).collect::<Vec<_>>());
        let during = seed_stat(&seeds.iter().map(during_of).collect::<Vec<_>>());
        series.push(Series {
            scheme: seeds[0].label.clone(),
            timeline: availability_timeline(&seeds[0].result.trace, Duration::from_secs(1)),
            overall: overall.mean,
            overall_ci95: overall.ci95,
            during_partition: during.mean,
            during_partition_ci95: during.ci95,
            seeds: obs.seeds,
        });
        stats.push((overall, during));
    }

    let table: Vec<Vec<String>> = series
        .iter()
        .zip(&stats)
        .map(|(s, (ov, du))| vec![s.scheme.clone(), pm(*ov, pct), pm(*du, pct)])
        .collect();
    print_table(
        "E4: availability under a 5s partition (replica 0 + its clients cut off)",
        &["scheme", "overall", "during partition"],
        &table,
    );
    println!("\nper-second availability during the run (base seed):");
    for s in &series {
        let line: Vec<String> = s
            .timeline
            .iter()
            .map(|(t, a)| format!("{:>2.0}s:{:>3.0}%", t / 1000.0, a * 100.0))
            .collect();
        println!("{:>28}  {}", s.scheme, line.join(" "));
    }
    obs.save("e4_partition_availability", &series);
}
