//! Nemesis fuzzer: every scheme × `--seeds` generated fault schedules,
//! traces judged by the consistency checkers, violations shrunk to
//! minimal JSON reproducers (see `docs/NEMESIS.md`).
//!
//! ```text
//! cargo run --release -p bench --bin fuzz_nemesis -- \
//!     --seeds 200 --jobs 8 --intensity heavy
//! ```
//!
//! Flags: `--seeds N` schedules per scheme, `--jobs N` workers,
//! `--intensity light|medium|heavy`, `--base-seed N`, `--no-shrink`.
//!
//! Output is byte-identical for any `--jobs` value: the summary table,
//! `results/fuzz_nemesis.json` (the full campaign report including every
//! shrunk reproducer), and the process exit code. Exits non-zero iff a
//! scheme violated a guarantee it was *expected* to keep — the
//! `quorum(N=3,R=1,W=1)` positive control is expected to fail and does
//! not affect the exit code.

use bench::{save_json, Obs};
use rec_core::fuzz::{campaign, FuzzScheme};

fn main() {
    let obs = Obs::from_args();
    let mut intensity = "heavy".to_string();
    let mut base_seed = 0u64;
    let mut shrink = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let take = |flag: &str, args: &mut dyn Iterator<Item = String>| -> Option<String> {
            if a == flag {
                args.next()
            } else {
                a.strip_prefix(&format!("{flag}=")).map(str::to_string)
            }
        };
        if let Some(name) = take("--intensity", &mut args) {
            intensity = name;
        } else if let Some(n) = take("--base-seed", &mut args) {
            base_seed = n.parse().expect("--base-seed expects an integer");
        } else if a == "--no-shrink" {
            shrink = false;
        }
    }

    let report = campaign(&FuzzScheme::ALL, obs.seeds, base_seed, &intensity, obs.jobs, shrink);
    print!("{}", report.render());
    save_json("fuzz_nemesis", &report);

    let expected = report.expected_violations().len();
    let unexpected = report.unexpected_violations().len();
    println!(
        "{} runs, {} expected violation(s) (positive control), {} unexpected",
        report.total(),
        expected,
        unexpected
    );
    if unexpected > 0 {
        eprintln!("FAIL: guarantees broke where they were expected to hold; reproducers in results/fuzz_nemesis.json");
        std::process::exit(1);
    }
}
