//! Nemesis fuzzer: every scheme × `--seeds` generated fault schedules,
//! traces judged by the consistency checkers, violations shrunk to
//! minimal JSON reproducers (see `docs/NEMESIS.md`).
//!
//! ```text
//! cargo run --release -p bench --bin fuzz_nemesis -- \
//!     --seeds 200 --jobs 8 --intensity heavy
//! ```
//!
//! Flags: `--seeds N` schedules per scheme, `--jobs N` workers,
//! `--intensity light|medium|heavy`, `--base-seed N`, `--no-shrink`.
//!
//! `--stream` runs a *differential* campaign instead: every cell is
//! judged twice — by the materialized batch checkers over the finished
//! trace and by the streaming checkers fed online during the run — and
//! the process exits non-zero iff any cell disagrees (verdict mismatch
//! or non-byte-identical reports). Results land in
//! `results/fuzz_differential.json`.
//!
//! `--replay <reproducer.json>` runs a single shrunk reproducer (the
//! `FuzzCase` JSON embedded in the campaign report) instead of a
//! campaign; with `--trace-out <path>` the replay emits its full JSONL
//! event log — span open/close pairs included — for `tracequery`.
//!
//! Output is byte-identical for any `--jobs` value: the summary table,
//! `results/fuzz_nemesis.json` (the full campaign report including every
//! shrunk reproducer), and the process exit code. Exits non-zero iff a
//! scheme violated a guarantee it was *expected* to keep — the
//! `quorum(N=3,R=1,W=1)` positive control is expected to fail and does
//! not affect the exit code.

use bench::{save_json, Obs};
use obs::Recorder;
use rec_core::fuzz::{
    campaign, differential_campaign, run_case_recorded, FuzzCase, FuzzScheme, Verdict,
};
use std::path::PathBuf;

fn main() {
    let obs = Obs::from_args();
    let mut intensity = "heavy".to_string();
    let mut base_seed = 0u64;
    let mut shrink = true;
    let mut stream = false;
    let mut replay: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let take = |flag: &str, args: &mut dyn Iterator<Item = String>| -> Option<String> {
            if a == flag {
                args.next()
            } else {
                a.strip_prefix(&format!("{flag}=")).map(str::to_string)
            }
        };
        if let Some(name) = take("--intensity", &mut args) {
            intensity = name;
        } else if let Some(n) = take("--base-seed", &mut args) {
            base_seed = n.parse().expect("--base-seed expects an integer");
        } else if let Some(p) = take("--replay", &mut args) {
            replay = Some(PathBuf::from(p));
        } else if let Some(p) = take("--trace-out", &mut args) {
            trace_out = Some(PathBuf::from(p));
        } else if a == "--no-shrink" {
            shrink = false;
        } else if a == "--stream" {
            stream = true;
        }
    }

    if let Some(path) = replay {
        replay_case(&path, trace_out.as_deref());
        return;
    }

    if stream {
        differential_run(obs.seeds, base_seed, &intensity, obs.jobs);
        return;
    }

    let report = campaign(&FuzzScheme::ALL, obs.seeds, base_seed, &intensity, obs.jobs, shrink);
    print!("{}", report.render());
    save_json("fuzz_nemesis", &report);

    let expected = report.expected_violations().len();
    let unexpected = report.unexpected_violations().len();
    println!(
        "{} runs, {} expected violation(s) (positive control), {} unexpected",
        report.total(),
        expected,
        unexpected
    );
    if unexpected > 0 {
        eprintln!("FAIL: guarantees broke where they were expected to hold; reproducers in results/fuzz_nemesis.json");
        std::process::exit(1);
    }
}

/// Run the batch-vs-stream differential campaign and exit non-zero on
/// any divergence. The summary table is `--jobs`-invariant, like the
/// plain campaign's.
fn differential_run(seeds: u64, base_seed: u64, intensity: &str, jobs: usize) {
    let cells = differential_campaign(&FuzzScheme::ALL, seeds, base_seed, intensity, jobs);
    println!(
        "differential fuzz campaign: profile={intensity} base_seed={base_seed} runs={}",
        cells.len()
    );
    println!("{:<22} {:>5} {:>10} {:>9}", "scheme", "runs", "violations", "diverged");
    let mut diverged = 0usize;
    for scheme in FuzzScheme::ALL {
        let rows: Vec<_> = cells.iter().filter(|c| c.scheme == scheme).collect();
        if rows.is_empty() {
            continue;
        }
        let violations = rows.iter().filter(|c| c.outcome.batch != Verdict::Pass).count();
        let bad = rows.iter().filter(|c| !c.outcome.agree()).count();
        diverged += bad;
        println!("{:<22} {:>5} {:>10} {:>9}", scheme.label(), rows.len(), violations, bad);
    }
    save_json("fuzz_differential", &cells);
    let expected =
        cells.iter().filter(|c| c.scheme.violation_expected() && c.outcome.batch != Verdict::Pass);
    println!(
        "{} runs, {} expected violation(s) (positive control), {} diverged",
        cells.len(),
        expected.count(),
        diverged
    );
    for cell in cells.iter().filter(|c| !c.outcome.agree()) {
        eprintln!(
            "UNEXPECTED: {} seed={} batch={:?} stream={:?} reports_match={}",
            cell.scheme.label(),
            cell.seed,
            cell.outcome.batch,
            cell.outcome.stream,
            cell.outcome.reports_match
        );
    }
    if diverged > 0 {
        eprintln!("FAIL: streaming checkers diverged from the batch oracle; see results/fuzz_differential.json");
        std::process::exit(1);
    }
}

/// Replay one shrunk reproducer with full observability and optionally
/// export its span-level JSONL trace.
fn replay_case(path: &std::path::Path, trace_out: Option<&std::path::Path>) {
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read reproducer {}: {e}", path.display()));
    let case: FuzzCase = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("{} is not a FuzzCase reproducer: {e}", path.display()));
    let recorder =
        if trace_out.is_some() { Recorder::with_event_log() } else { Recorder::enabled() };
    let verdict = run_case_recorded(&case, recorder.clone());
    let report = recorder.report();
    println!(
        "replay: scheme={} seed={} events={} verdict={verdict:?}",
        case.scheme.label(),
        case.seed,
        case.events.len()
    );
    println!(
        "spans: opened={} closed={} abandoned={}",
        report.counter(obs::Counter::SpansOpened),
        report.counter(obs::Counter::SpansClosed),
        report.counter(obs::Counter::SpansAbandoned),
    );
    if let Some(out) = trace_out {
        match recorder.write_jsonl(out) {
            Ok(()) => println!("[trace saved to {}]", out.display()),
            Err(e) => {
                eprintln!("warning: could not write {}: {e}", out.display());
                std::process::exit(1);
            }
        }
    }
}
