//! E11 (Table): the replication kernel's composition matrix.
//!
//! Every scheme in this harness is a `replication::Composition` — an
//! update site × propagation policy × resolution policy × durability
//! policy picked from the kernel's menu. The first seven rows are the
//! canonical compositions the legacy protocol names normalize to (the
//! scheme-parity suite proves they are byte-identical machines); the
//! last two exist *only* as compositions:
//!
//! * `mm+gossip+crdt` — multi-master anti-entropy shipping CRDT counter
//!   state with fsynced durability: amnesia cannot shrink a counter.
//! * `mm+eager-acked(2)+lww` — eager broadcast that withholds the client
//!   ack until every peer has durably applied: no read anywhere is stale
//!   once a write is acknowledged, without a coordinator or a log.
//!
//! Columns quantify what each layer choice buys: latency (propagation),
//! availability under a mid-run partition + crash-amnesia nemesis
//! (durability), and the checker verdicts (resolution): stale reads,
//! read-your-writes, and value-monotonic reads.

use bench::{f1, f3, print_table, seed_mean, Obs};
use consistency::{check_monotonic_values, check_session_guarantees, measure_staleness};
use rec_core::metrics::latency_summary;
use rec_core::{Experiment, Grid, Scheme};
use replication::kernel::{Composition, ResolutionPolicy, ShipMode};
use serde::Serialize;
use simnet::{Duration, FaultSchedule, LatencyModel, NodeId, SimTime};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    composition: String,
    update_site: String,
    propagation: String,
    resolution: String,
    durability: String,
    read_p99_ms: f64,
    write_p99_ms: f64,
    availability: f64,
    /// Stamp-based checker columns apply to register semantics (LWW /
    /// siblings) and are `None` for CRDT counters, whose reads carry no
    /// version stamp; the value-monotonicity column is the converse.
    stale_reads: Option<f64>,
    ryw_violations: Option<f64>,
    mr_value_violations: Option<f64>,
    seeds: u64,
}

/// The matrix: canonical legacy compositions plus the two kernel-only
/// ones.
fn matrix() -> Vec<Composition> {
    vec![
        Composition::eventual_lww(3),
        Composition::causal(3),
        Composition::quorum(3, 2, 2, true, 0),
        Composition::quorum(3, 2, 2, true, 2),
        Composition::primary(3, ShipMode::Sync, false),
        Composition::primary(3, ShipMode::Async { interval: Duration::from_millis(50) }, true),
        Composition::paxos(3),
        Composition::mm_gossip_crdt(3),
        Composition::mm_eager_acked(3),
    ]
}

/// A nemesis every composition faces: one replica loses its memory
/// mid-run, another is cut off for two seconds.
fn nemesis() -> FaultSchedule {
    FaultSchedule::none()
        .crash_amnesia(NodeId(1), SimTime::from_secs(4), SimTime::from_secs(5))
        .partition(vec![NodeId(0)], SimTime::from_secs(8), SimTime::from_secs(10))
}

fn main() {
    let obs = Obs::from_args();
    let workload = WorkloadSpec {
        keys: 16,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 20_000 },
        sessions: 6,
        ops_per_session: 60,
    };
    let mut grid = Grid::new();
    for comp in matrix() {
        grid.push(
            comp.label(),
            Experiment::new(Scheme::composed(comp))
                .latency(LatencyModel::lan())
                .workload(workload.clone())
                .faults(nemesis())
                .seed(4242)
                .horizon(SimTime::from_secs(40)),
        );
    }
    let cells = obs.run_grid(grid);

    let comps = matrix();
    let mut rows = Vec::new();
    for (comp, seeds) in comps.iter().zip(cells.chunks(obs.seeds as usize)) {
        let counter = comp.resolution == ResolutionPolicy::CrdtMerge;
        let lats: Vec<_> = seeds.iter().map(|c| latency_summary(&c.result.trace)).collect();
        let mean =
            |f: &dyn Fn(usize) -> f64| seed_mean(&(0..seeds.len()).map(f).collect::<Vec<_>>());
        rows.push(Row {
            composition: comp.label(),
            update_site: format!("{:?}", comp.update),
            propagation: format!("{:?}", comp.propagation),
            resolution: format!("{:?}", comp.resolution),
            durability: format!("{:?}", comp.durability),
            read_p99_ms: mean(&|i| lats[i].reads.p99),
            write_p99_ms: mean(&|i| lats[i].writes.p99),
            availability: mean(&|i| seeds[i].result.trace.success_rate()),
            stale_reads: (!counter)
                .then(|| mean(&|i| measure_staleness(&seeds[i].result.trace).stale_reads as f64)),
            ryw_violations: (!counter).then(|| {
                mean(&|i| check_session_guarantees(&seeds[i].result.trace).ryw_violations as f64)
            }),
            mr_value_violations: counter.then(|| {
                mean(&|i| check_monotonic_values(&seeds[i].result.trace).violations as f64)
            }),
            seeds: obs.seeds,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.composition.clone(),
                f1(r.read_p99_ms),
                f1(r.write_p99_ms),
                f3(r.availability),
                r.stale_reads.map(f1).unwrap_or_else(|| "-".to_string()),
                r.ryw_violations.map(f1).unwrap_or_else(|| "-".to_string()),
                r.mr_value_violations.map(f1).unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    print_table(
        "E11: kernel composition matrix under nemesis (amnesia + partition)",
        &["composition", "read p99", "write p99", "avail", "stale", "ryw-viol", "mr-viol"],
        &table,
    );
    obs.save("e11_composition_matrix", &rows);
}
