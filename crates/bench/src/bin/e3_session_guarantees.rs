//! E3 (Table): session guarantees — violation rates without enforcement,
//! latency cost with enforcement.
//!
//! Clients bounce between replicas (random anycast) of a gossip-only
//! eventual store. Without guarantees, RYW/MR violations appear at rates
//! governed by the anti-entropy lag; enabling the guarantees drives the
//! violation rate to zero at the cost of read retries (RYW/MR) and
//! nothing measurable for MW/WFR (Lamport piggyback is free).

use bench::{f1, pct, print_table, Obs};
use consistency::check_session_guarantees;
use obs::Recorder;
use rec_core::metrics::latency_summary;
use rec_core::scheme::ClientPlacement;
use rec_core::{Experiment, Scheme};
use replication::common::Guarantees;
use replication::eventual::ConflictMode;
use serde::Serialize;
use simnet::{Duration, LatencyModel};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    config: String,
    gossip_ms: u64,
    ryw_rate: f64,
    mr_rate: f64,
    mw_rate: f64,
    wfr_rate: f64,
    read_p50_ms: f64,
    read_p99_ms: f64,
}

fn run(guarantees: Guarantees, label: &str, gossip_ms: u64, seed: u64, rec: &Recorder) -> Row {
    let workload = WorkloadSpec {
        keys: 10,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 5_000 },
        sessions: 8,
        ops_per_session: 120,
    };
    let scheme = Scheme::Eventual {
        replicas: 3,
        eager: false, // gossip-only: propagation lag is the story
        gossip: Some((Duration::from_millis(gossip_ms), 1)),
        mode: ConflictMode::Lww,
        guarantees,
        placement: ClientPlacement::Random,
    };
    let res = Experiment::new(scheme)
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(10),
        })
        .workload(workload)
        .seed(seed)
        .recorder(rec.clone())
        .horizon(simnet::SimTime::from_secs(600))
        .run();
    let rep = check_session_guarantees(&res.trace);
    let lat = latency_summary(&res.trace);
    Row {
        config: label.to_string(),
        gossip_ms,
        ryw_rate: rep.ryw_rate(),
        mr_rate: rep.mr_rate(),
        mw_rate: rep.mw_rate(),
        wfr_rate: rep.wfr_rate(),
        read_p50_ms: lat.reads.p50,
        read_p99_ms: lat.reads.p99,
    }
}

fn main() {
    let obs = Obs::from_args();
    let mut rows = Vec::new();
    for gossip_ms in [20u64, 100, 400] {
        rows.push(run(Guarantees::none(), "none", gossip_ms, 7, &obs.recorder));
    }
    let ryw = Guarantees { read_your_writes: true, ..Guarantees::none() };
    let mr = Guarantees { monotonic_reads: true, ..Guarantees::none() };
    rows.push(run(ryw, "RYW enforced", 100, 7, &obs.recorder));
    rows.push(run(mr, "MR enforced", 100, 7, &obs.recorder));
    rows.push(run(Guarantees::all(), "all enforced", 100, 7, &obs.recorder));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|x| {
            vec![
                x.config.clone(),
                x.gossip_ms.to_string(),
                pct(x.ryw_rate),
                pct(x.mr_rate),
                pct(x.mw_rate),
                pct(x.wfr_rate),
                f1(x.read_p50_ms),
                f1(x.read_p99_ms),
            ]
        })
        .collect();
    print_table(
        "E3: session-guarantee violations and enforcement cost",
        &["config", "gossip", "RYW", "MR", "MW", "WFR", "read p50", "read p99"],
        &table,
    );
    obs.save("e3_session_guarantees", &rows);
}
