//! E3 (Table): session guarantees — violation rates without enforcement,
//! latency cost with enforcement.
//!
//! Clients bounce between replicas (random anycast) of a gossip-only
//! eventual store. Without guarantees, RYW/MR violations appear at rates
//! governed by the anti-entropy lag; enabling the guarantees drives the
//! violation rate to zero at the cost of read retries (RYW/MR) and
//! nothing measurable for MW/WFR (Lamport piggyback is free). Multi-seed
//! runs (`--seeds N`) report mean rates with a 95% CI on RYW.

use bench::{f1, pm, print_table, seed_stat, Obs, SeedStat};
use consistency::check_session_guarantees;
use rec_core::metrics::latency_summary;
use rec_core::scheme::ClientPlacement;
use rec_core::{Experiment, Grid, Scheme};
use replication::common::Guarantees;
use replication::eventual::ConflictMode;
use serde::Serialize;
use simnet::{Duration, LatencyModel};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    config: String,
    gossip_ms: u64,
    ryw_rate: f64,
    ryw_rate_ci95: f64,
    mr_rate: f64,
    mw_rate: f64,
    wfr_rate: f64,
    read_p50_ms: f64,
    read_p99_ms: f64,
    seeds: u64,
}

fn experiment(guarantees: Guarantees, gossip_ms: u64) -> Experiment {
    let workload = WorkloadSpec {
        keys: 10,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 5_000 },
        sessions: 8,
        ops_per_session: 120,
    };
    let scheme = Scheme::Eventual {
        replicas: 3,
        eager: false, // gossip-only: propagation lag is the story
        gossip: Some((Duration::from_millis(gossip_ms), 1)),
        mode: ConflictMode::Lww,
        guarantees,
        placement: ClientPlacement::Random,
    };
    Experiment::new(scheme)
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(10),
        })
        .workload(workload)
        .seed(7)
        .horizon(simnet::SimTime::from_secs(600))
}

fn main() {
    let obs = Obs::from_args();
    let ryw = Guarantees { read_your_writes: true, ..Guarantees::none() };
    let mr = Guarantees { monotonic_reads: true, ..Guarantees::none() };
    let configs: Vec<(&str, Guarantees, u64)> = vec![
        ("none", Guarantees::none(), 20),
        ("none", Guarantees::none(), 100),
        ("none", Guarantees::none(), 400),
        ("RYW enforced", ryw, 100),
        ("MR enforced", mr, 100),
        ("all enforced", Guarantees::all(), 100),
    ];
    let mut grid = Grid::new();
    for &(label, g, gossip_ms) in &configs {
        grid.push(format!("{label}@{gossip_ms}ms"), experiment(g, gossip_ms));
    }
    let cells = obs.run_grid(grid);

    let mut rows = Vec::new();
    let mut ryws: Vec<SeedStat> = Vec::new();
    for (&(label, _, gossip_ms), seeds) in configs.iter().zip(cells.chunks(obs.seeds as usize)) {
        let reps: Vec<_> =
            seeds.iter().map(|c| check_session_guarantees(&c.result.trace)).collect();
        let lats: Vec<_> = seeds.iter().map(|c| latency_summary(&c.result.trace)).collect();
        let stat = |vals: Vec<f64>| seed_stat(&vals);
        let ryw_rate = stat(reps.iter().map(|r| r.ryw_rate()).collect());
        rows.push(Row {
            config: label.to_string(),
            gossip_ms,
            ryw_rate: ryw_rate.mean,
            ryw_rate_ci95: ryw_rate.ci95,
            mr_rate: stat(reps.iter().map(|r| r.mr_rate()).collect()).mean,
            mw_rate: stat(reps.iter().map(|r| r.mw_rate()).collect()).mean,
            wfr_rate: stat(reps.iter().map(|r| r.wfr_rate()).collect()).mean,
            read_p50_ms: stat(lats.iter().map(|l| l.reads.p50).collect()).mean,
            read_p99_ms: stat(lats.iter().map(|l| l.reads.p99).collect()).mean,
            seeds: obs.seeds,
        });
        ryws.push(ryw_rate);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&ryws)
        .map(|(x, ryw)| {
            vec![
                x.config.clone(),
                x.gossip_ms.to_string(),
                pm(*ryw, bench::pct),
                bench::pct(x.mr_rate),
                bench::pct(x.mw_rate),
                bench::pct(x.wfr_rate),
                f1(x.read_p50_ms),
                f1(x.read_p99_ms),
            ]
        })
        .collect();
    print_table(
        "E3: session-guarantee violations and enforcement cost",
        &["config", "gossip", "RYW", "MR", "MW", "WFR", "read p50", "read p99"],
        &table,
    );
    obs.save("e3_session_guarantees", &rows);
}
