//! E7 (Table): delivered utility of consistency SLAs (Pileus).
//!
//! A two-region deployment: the primary far away (~110 ms RTT), a local
//! backup (~4 ms RTT) that lags by a replication window. A read stream is
//! served under three portfolios (password / shopping-cart / web-app) and
//! two fixed baselines (always-primary, always-local). Expected shape:
//! the SLA-driven chooser dominates both baselines on every portfolio —
//! it goes local when the lag permits and pays the WAN only when
//! consistency demands it — reproducing Pileus's headline result.

use bench::{f3, pm, print_table, seed_stat, Obs, SeedStat};
use serde::Serialize;
use simnet::{Duration, NodeId, SimRng, SimTime};
use sla::{choose, delivered_utility, Consistency, Monitor, SessionState, Sla};

#[derive(Serialize)]
struct Row {
    portfolio: String,
    strategy: String,
    mean_utility: f64,
    mean_utility_ci95: f64,
    primary_fraction: f64,
    mean_latency_ms: f64,
    seeds: u64,
}

/// Per-seed measurement (one grid cell).
struct Cell {
    mean_utility: f64,
    primary_fraction: f64,
    mean_latency_ms: f64,
}

struct World {
    rng: SimRng,
    /// Primary RTT distribution (log-normal median ms, sigma).
    primary_rtt: (f64, f64),
    /// Local backup RTT distribution.
    local_rtt: (f64, f64),
    /// Replication lag: local high_ts trails now by up to this many ms.
    lag_ms: f64,
}

impl World {
    fn sample_rtt(&mut self, replica: NodeId) -> Duration {
        let (median, sigma) = if replica == NodeId(0) { self.primary_rtt } else { self.local_rtt };
        Duration::from_millis_f64(self.rng.log_normal(median, sigma))
    }

    fn local_lag(&mut self) -> Duration {
        Duration::from_millis_f64(self.rng.unit() * self.lag_ms)
    }
}

/// Simulate `n_reads` reads under a strategy; returns one cell.
fn run(sla: &Sla, fixed: Option<NodeId>, seed: u64) -> Cell {
    let mut world = World {
        rng: SimRng::new(seed),
        primary_rtt: (55.0, 0.2), // one-way ~55ms => ~110ms RTT
        local_rtt: (2.0, 0.3),
        lag_ms: 150.0,
    };
    let mut monitor = Monitor::new(2, NodeId(0));
    let mut session = SessionState::default();
    // The local replica's applied high-timestamp: monotone, trailing `now`
    // by a sawtooth lag (log shipping applies in batches).
    let mut local_high = SimTime::ZERO;
    let n_reads = 2_000u64;
    let mut total_utility = 0.0;
    let mut primary_hits = 0u64;
    let mut total_latency = 0.0;
    // Writes happen continuously: the session writes every ~20 reads.
    for i in 0..n_reads {
        let now = SimTime::from_millis(100 + i * 10);
        // Refresh the monitor's view of replica lag (Pileus piggybacks
        // high timestamps on every response; we refresh each round).
        let lag = world.local_lag();
        local_high =
            local_high.max(SimTime::from_micros(now.as_micros().saturating_sub(lag.as_micros())));
        // Pileus monitors piggyback on background traffic: both replicas
        // get an RTT observation each round, not just the chosen one.
        let probe0 = world.sample_rtt(NodeId(0));
        let probe1 = world.sample_rtt(NodeId(1));
        monitor.observe(NodeId(0), probe0, now);
        monitor.observe(NodeId(1), probe1, local_high);

        if i % 20 == 10 {
            session.last_write_ts = Some(now);
        }

        let target = match fixed {
            Some(t) => t,
            None => choose(&monitor, sla, &session, now).replica,
        };
        let rtt = world.sample_rtt(target);
        monitor.observe(target, rtt, if target == NodeId(0) { now } else { local_high });
        if target == NodeId(0) {
            primary_hits += 1;
        }
        total_latency += rtt.as_millis_f64();

        // Score what was achieved.
        let served_high = if target == NodeId(0) { now } else { local_high };
        let achieved = |c: Consistency| -> bool {
            match c {
                Consistency::Strong => target == NodeId(0),
                Consistency::ReadMyWrites => {
                    session.last_write_ts.map(|w| served_high >= w).unwrap_or(true)
                }
                Consistency::MonotonicReads => {
                    session.last_read_ts.map(|r| served_high >= r).unwrap_or(true)
                }
                Consistency::Bounded(b) => {
                    served_high.as_micros() + b.as_micros() >= now.as_micros()
                }
                Consistency::Eventual => true,
            }
        };
        total_utility += delivered_utility(sla, rtt, &achieved);
        session.last_read_ts =
            Some(session.last_read_ts.map_or(served_high, |p| p.max(served_high)));
    }
    Cell {
        mean_utility: total_utility / n_reads as f64,
        primary_fraction: primary_hits as f64 / n_reads as f64,
        mean_latency_ms: total_latency / n_reads as f64,
    }
}

fn main() {
    // E7 is analytic (no discrete-event simulation), so the recorder only
    // standardizes the results-file shape; its counters stay zero. The
    // sweep still parallelizes (portfolio, strategy, seed) cells.
    let obs = Obs::from_args();
    let portfolios: Vec<(&str, Sla)> = vec![
        ("password", Sla::password()),
        ("shopping-cart", Sla::shopping_cart()),
        ("web-app", Sla::web_app()),
    ];
    let strategies: [(&str, Option<NodeId>); 3] = [
        ("sla-driven", None),
        ("always-primary", Some(NodeId(0))),
        ("always-local", Some(NodeId(1))),
    ];
    let mut params = Vec::new();
    for pi in 0..portfolios.len() {
        for &(strategy, fixed) in &strategies {
            params.push((pi, strategy, fixed));
        }
    }
    let results =
        obs.sweep(&params, 31, |&(pi, _, fixed), seed, _rec| run(&portfolios[pi].1, fixed, seed));

    let mut rows = Vec::new();
    let mut utils: Vec<SeedStat> = Vec::new();
    for (&(pi, strategy, _), cells) in params.iter().zip(&results) {
        let util = seed_stat(&cells.iter().map(|c| c.mean_utility).collect::<Vec<_>>());
        rows.push(Row {
            portfolio: portfolios[pi].0.to_string(),
            strategy: strategy.to_string(),
            mean_utility: util.mean,
            mean_utility_ci95: util.ci95,
            primary_fraction: seed_stat(
                &cells.iter().map(|c| c.primary_fraction).collect::<Vec<_>>(),
            )
            .mean,
            mean_latency_ms: seed_stat(
                &cells.iter().map(|c| c.mean_latency_ms).collect::<Vec<_>>(),
            )
            .mean,
            seeds: obs.seeds,
        });
        utils.push(util);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&utils)
        .map(|(x, util)| {
            vec![
                x.portfolio.clone(),
                x.strategy.clone(),
                pm(*util, f3),
                f3(x.primary_fraction),
                format!("{:.1}", x.mean_latency_ms),
            ]
        })
        .collect();
    print_table(
        "E7: delivered utility of consistency SLAs (Pileus)",
        &["portfolio", "strategy", "mean utility", "primary frac", "mean lat ms"],
        &table,
    );
    obs.save("e7_sla_utility", &rows);
}
