//! E12 (Table): ring-sharded quorums at cluster scale.
//!
//! The flat quorum experiments (E1, E4) hold the cluster at N nodes —
//! every key lives everywhere, so "scale" is meaningless. This
//! experiment puts the same R2W2+2 sloppy quorum on a consistent-hashing
//! ring and sweeps the *cluster* from 5 to 200 physical nodes, with and
//! without rolling membership churn, against a partition nemesis that
//! cuts two owners of the hottest key region.
//!
//! The key domain is 100 000 keys (uniform), so per-node ownership and
//! the churn rebalance volume are measured at realistic sharding ratios;
//! the ring-balance columns are computed over the full 100k-key domain,
//! the protocol columns over the executed workload. Every row reports:
//!
//! * availability (op success rate) and stale reads,
//! * the hinted-handoff ledger (`hints_stored` / `hints_drained` — the
//!   conservation test holds `stored == drained + dropped`),
//! * keys pushed to new owners by churn (`rebalanced_keys`),
//! * ownership-aware convergence at the horizon (diverged key count),
//! * ring balance over the 100k-key domain: max/mean keys per node.
//!
//! Like every grid, the run is a pure function of (config, seeds) and
//! byte-identical across `--jobs` levels.

use bench::{f1, f3, print_table, seed_mean, Obs};
use consistency::{check_owner_convergence, measure_staleness};
use rec_core::scheme::ChurnPlan;
use rec_core::{Experiment, Grid, Scheme};
use replication::sharded::Ring;
use replication::Composition;
use serde::Serialize;
use simnet::{Duration, FaultSchedule, LatencyModel, NodeId, SimTime};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

/// Full key domain the ring-balance columns scan (and the workload key
/// space): the acceptance bar for "cluster scale" is ≥ 100k keys.
const KEY_DOMAIN: u64 = 100_000;

/// Preference-list size, vnodes per physical node, and ring spares.
const N: usize = 3;
const VNODES: usize = 16;
const SPARES: usize = 2;

/// Cluster sizes swept.
const CLUSTERS: [usize; 5] = [5, 20, 50, 100, 200];

#[derive(Serialize)]
struct Row {
    nodes: usize,
    churn_events: usize,
    availability: f64,
    stale_reads: f64,
    hints_stored: f64,
    hints_drained: f64,
    rebalanced_keys: f64,
    owner_diverged_keys: f64,
    ring_max_keys_per_node: u64,
    ring_mean_keys_per_node: f64,
    seeds: u64,
}

/// The churn plan a variant runs: none, or a rolling restart touching
/// one node per 3 s from t=3 s (scaled to 4 events so small and large
/// clusters see the same event count, i.e. a higher per-node rate on
/// small clusters — the interesting regime).
fn churn(on: bool, nodes: usize) -> ChurnPlan {
    if on {
        ChurnPlan::rolling(nodes, Duration::from_secs(3), 4, SimTime::from_secs(3))
    } else {
        ChurnPlan::none()
    }
}

/// Cut two owners of key 0 for a 3 s window: on small clusters this
/// starves write quorums for a visible key slice (hints flow), on large
/// ones it is background noise — exactly the availability story the
/// sweep is after.
fn nemesis(nodes: usize) -> FaultSchedule {
    let ring = Ring::new(N, VNODES, (0..nodes as u32).map(NodeId));
    let owners = ring.owners(0);
    FaultSchedule::none().partition(
        vec![owners[0], owners[1]],
        SimTime::from_secs(4),
        SimTime::from_secs(7),
    )
}

fn scheme(nodes: usize, with_churn: bool) -> Scheme {
    Scheme::Sharded {
        inner: Composition::quorum(N, 2, 2, true, SPARES),
        nodes,
        vnodes: VNODES,
        churn: churn(with_churn, nodes),
    }
}

/// Ownership balance over the full key domain: (max, mean) keys-per-node
/// counting each key once per owner.
fn ring_balance(nodes: usize) -> (u64, f64) {
    let ring = Ring::new(N, VNODES, (0..nodes as u32).map(NodeId));
    let mut per_node = vec![0u64; nodes];
    for key in 0..KEY_DOMAIN {
        for o in ring.owners(key) {
            per_node[o.index()] += 1;
        }
    }
    let max = per_node.iter().copied().max().unwrap_or(0);
    let mean = per_node.iter().sum::<u64>() as f64 / nodes as f64;
    (max, mean)
}

fn main() {
    let obs = Obs::from_args();
    let workload = WorkloadSpec {
        keys: KEY_DOMAIN,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 20_000 },
        sessions: 8,
        ops_per_session: 450,
    };
    let variants: Vec<(usize, bool)> =
        CLUSTERS.iter().flat_map(|&nodes| [(nodes, false), (nodes, true)]).collect();
    let mut grid = Grid::new();
    for &(nodes, with_churn) in &variants {
        grid.push(
            format!("ring({nodes}x{VNODES}{})", if with_churn { ",churn" } else { "" }),
            Experiment::new(scheme(nodes, with_churn))
                .latency(LatencyModel::lan())
                .workload(workload.clone())
                .faults(nemesis(nodes))
                .seed(4242)
                .horizon(SimTime::from_secs(20)),
        );
    }
    let cells = obs.run_grid(grid);

    let mut rows = Vec::new();
    for (&(nodes, with_churn), seeds) in variants.iter().zip(cells.chunks(obs.seeds as usize)) {
        let ring = Ring::new(N, VNODES, (0..nodes as u32).map(NodeId));
        let mean =
            |f: &dyn Fn(usize) -> f64| seed_mean(&(0..seeds.len()).map(f).collect::<Vec<_>>());
        let counter = |c: obs::Counter| mean(&|i| seeds[i].result.metrics.counter(c) as f64);
        let diverged = mean(&|i| {
            let server: Vec<_> = seeds[i]
                .result
                .final_versions
                .iter()
                .copied()
                .filter(|&(n, _, _)| n.index() < nodes)
                .collect();
            check_owner_convergence(&server, |k| ring.owners(k)).diverged.len() as f64
        });
        let (max_keys, mean_keys) = ring_balance(nodes);
        rows.push(Row {
            nodes,
            churn_events: churn(with_churn, nodes).events.len(),
            availability: mean(&|i| seeds[i].result.trace.success_rate()),
            stale_reads: mean(&|i| measure_staleness(&seeds[i].result.trace).stale_reads as f64),
            hints_stored: counter(obs::Counter::HintsStored),
            hints_drained: counter(obs::Counter::HintsDrained),
            rebalanced_keys: counter(obs::Counter::RebalancedKeys),
            owner_diverged_keys: diverged,
            ring_max_keys_per_node: max_keys,
            ring_mean_keys_per_node: mean_keys,
            seeds: obs.seeds,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.churn_events.to_string(),
                f3(r.availability),
                f1(r.stale_reads),
                f1(r.hints_stored),
                f1(r.hints_drained),
                f1(r.rebalanced_keys),
                f1(r.owner_diverged_keys),
                format!("{}/{}", r.ring_max_keys_per_node, f1(r.ring_mean_keys_per_node)),
            ]
        })
        .collect();
    print_table(
        "E12: ring-sharded sloppy quorum vs cluster size and churn (100k-key domain)",
        &[
            "nodes",
            "churn",
            "avail",
            "stale",
            "hints",
            "drained",
            "rebalanced",
            "diverged",
            "max/mean keys",
        ],
        &table,
    );
    obs.save("e12_ring_scale", &rows);
}
