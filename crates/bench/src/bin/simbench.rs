//! simbench — simulator-core throughput benchmark.
//!
//! Measures events/sec, ns/event, and peak RSS for both event-queue
//! backends ([`simnet::QueueKind`]) across two config families:
//!
//! * `storm/*` — synthetic message storms that keep a large, constant
//!   in-flight population (the queue-depth regimes where backend choice
//!   dominates: small/medium/large topologies), and
//! * `proto/*` — every [`FuzzScheme`] replication protocol under its
//!   medium-intensity nemesis schedule (realistic event mixes; actor
//!   logic shares the bill with the queue).
//!
//! Each config runs in a fresh subprocess by default so `peak_rss_bytes`
//! (`VmHWM` from `/proc/self/status`) is per-config rather than a
//! high-water mark over the whole suite; `--in-process` collapses
//! everything into one process (faster, RSS becomes cumulative).
//!
//! The output document (`BENCH_simnet.json`, schema in
//! `docs/PERFORMANCE.md`) is checked into the repo as the performance
//! trajectory baseline. Wall-clock numbers are machine-dependent; the
//! `--check` mode therefore calibrates a machine-speed factor from the
//! heap rows before comparing (see `check_against_baseline`).
//!
//! Usage (from the workspace root):
//!
//! ```text
//! cargo run --release --bin simbench                    # full run -> BENCH_simnet.json
//! cargo run --release --bin simbench -- --smoke --out /tmp/b.json --check BENCH_simnet.json
//! cargo run --release --bin simbench -- --determinism-check --jobs 8
//! ```
//!
//! Flags: `--smoke` (≈10% of the events, same queue depths), `--out
//! <path>`, `--check <baseline.json>` (exit 1 on >20% events/sec
//! regression), `--determinism-check` (same-seed byte-identity at
//! `--jobs 1` vs `--jobs N`, then exit), `--profile` (per-handler
//! profile of every proto config → `results/profile_protos.json` +
//! `.folded`, then exit; see `docs/PROFILING.md`), `--jobs <n>`,
//! `--in-process`. `--one <name> --queue <heap|wheel>` is the internal
//! subprocess mode.

use bench::{print_table, results_dir, save_json};
use obs::{FoldWeight, Recorder};
use rec_core::fuzz::{fuzz_workload, generate_case, FuzzScheme, FUZZ_HORIZON_MS};
use rec_core::grid::{Grid, RecorderSpec};
use rec_core::Experiment;
use serde::Serialize;
use simnet::nemesis::{self, IntensityProfile};
use simnet::{Actor, Context, Duration, LatencyModel, NodeId, QueueKind, Sim, SimConfig, SimTime};
use std::process::Command;
use std::time::Instant;

/// Schema version of the output document (bump on field changes and
/// update the table in docs/PERFORMANCE.md).
const SCHEMA_VERSION: u64 = 1;

/// One measured `(config, queue)` cell — a row of `configs` in
/// `BENCH_simnet.json`. Field names are the schema documented in
/// docs/PERFORMANCE.md (drift is pinned by `tests/performance_doc.rs`).
#[derive(Debug, Clone, Serialize)]
struct Row {
    name: String,
    family: String,
    queue: String,
    nodes: u64,
    inflight: u64,
    events: u64,
    elapsed_ns: u64,
    events_per_sec: f64,
    ns_per_event: f64,
    peak_rss_bytes: u64,
    speedup_vs_heap: f64,
}

/// A benchmark configuration (before choosing a queue backend).
#[derive(Debug, Clone)]
enum Config {
    /// Synthetic storm: `nodes` actors forward `inflight` messages
    /// `hops` times each through the uniform-latency network.
    Storm { name: &'static str, nodes: usize, inflight: usize, hops: u64 },
    /// A replication protocol under its medium-intensity nemesis.
    Proto { scheme: FuzzScheme },
}

impl Config {
    fn name(&self) -> String {
        match self {
            Config::Storm { name, .. } => format!("storm/{name}"),
            Config::Proto { scheme } => format!("proto/{}", scheme.label()),
        }
    }

    fn family(&self) -> &'static str {
        match self {
            Config::Storm { .. } => "storm",
            Config::Proto { .. } => "proto",
        }
    }
}

/// The benchmark suite. Storm sizes are chosen so the queue depth (the
/// `inflight` population) spans three orders of magnitude; `--smoke`
/// keeps the depths (so events/sec stays comparable to a full run) and
/// cuts only the hop budget, i.e. how long each depth is sustained.
fn suite(smoke: bool) -> Vec<Config> {
    let mut configs = vec![
        Config::Storm {
            name: "small",
            nodes: 64,
            inflight: 4_096,
            hops: if smoke { 16 } else { 96 },
        },
        Config::Storm {
            name: "medium",
            nodes: 256,
            inflight: 65_536,
            hops: if smoke { 4 } else { 20 },
        },
        Config::Storm {
            name: "large",
            nodes: 1_024,
            inflight: 262_144,
            hops: if smoke { 2 } else { 8 },
        },
        Config::Storm {
            name: "xlarge",
            nodes: 1_024,
            inflight: 524_288,
            hops: if smoke { 1 } else { 4 },
        },
    ];
    configs.extend(FuzzScheme::ALL.into_iter().map(|scheme| Config::Proto { scheme }));
    configs
}

/// Storm actor: forward the message (a remaining-hop counter) to a
/// random peer until the counter hits zero. The in-flight population is
/// constant until hops drain, so the queue holds ~`inflight` events for
/// the whole measured window.
struct StormNode {
    nodes: usize,
}

impl Actor<u64> for StormNode {
    fn on_start(&mut self, _ctx: &mut Context<u64>) {}

    fn on_message(&mut self, ctx: &mut Context<u64>, _from: NodeId, hops_left: u64) {
        if hops_left > 0 {
            let to = NodeId(ctx.rng().index(self.nodes) as u32);
            ctx.send(to, hops_left - 1);
        }
    }
}

/// Seeder actor (node 0 doubles as one): storms are kicked off via
/// `inject_at` from the driver, so no dedicated seeder is needed.
fn run_storm(nodes: usize, inflight: usize, hops: u64, queue: QueueKind) -> (u64, u64) {
    let mut sim: Sim<u64> =
        Sim::new(SimConfig::default().seed(0xbeef).queue(queue).latency(LatencyModel::Uniform {
            min: Duration::from_micros(1),
            max: Duration::from_micros(1_000),
        }));
    for _ in 0..nodes {
        sim.add_node(Box::new(StormNode { nodes }));
    }
    // Seed the in-flight population spread across all nodes and the
    // first millisecond, so the queue depth ramps to `inflight` and
    // stays there until hop budgets drain.
    for i in 0..inflight {
        let at = SimTime::from_micros((i % 1_000) as u64 + 1);
        sim.inject_at(at, NodeId((i % nodes) as u32), NodeId(((i * 7 + 1) % nodes) as u32), hops);
    }
    let start = Instant::now();
    let events = sim.run_until(SimTime::from_secs(3_600));
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    (events, elapsed_ns)
}

/// Run one protocol config: the fuzz harness deployment for `scheme`
/// under its seed-42 medium nemesis, with a denser workload than the
/// fuzzer's (more sessions/ops, shorter think time) so the measured
/// window is dominated by steady-state traffic.
fn run_proto(scheme: FuzzScheme, queue: QueueKind, smoke: bool) -> (u64, u64) {
    let case = generate_case(scheme, 42, &IntensityProfile::medium());
    let mut workload = fuzz_workload();
    workload.sessions = 8;
    workload.ops_per_session = if smoke { 40 } else { 400 };
    workload.arrival = workload::Arrival::Closed { think_us: 2_000 };
    let experiment = Experiment::new(scheme.to_scheme())
        .workload(workload)
        .latency(LatencyModel::lan())
        .faults(nemesis::to_schedule(&case.events))
        .seed(42)
        .horizon(SimTime::from_millis(FUZZ_HORIZON_MS))
        .queue(queue);
    let start = Instant::now();
    let result = experiment.run();
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    (result.events, elapsed_ns)
}

/// Peak RSS of this process in bytes (`VmHWM` from `/proc/self/status`);
/// 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Measure one `(config, queue)` cell in this process.
fn measure(config: &Config, queue: QueueKind, smoke: bool) -> Row {
    let (nodes, inflight, (events, elapsed_ns)) = match *config {
        Config::Storm { nodes, inflight, hops, .. } => {
            (nodes as u64, inflight as u64, run_storm(nodes, inflight, hops, queue))
        }
        Config::Proto { scheme } => {
            (scheme.server_nodes() as u64, 0, run_proto(scheme, queue, smoke))
        }
    };
    let secs = elapsed_ns as f64 / 1e9;
    Row {
        name: config.name(),
        family: config.family().to_string(),
        queue: queue.label().to_string(),
        nodes,
        inflight,
        events,
        elapsed_ns,
        events_per_sec: if secs > 0.0 { events as f64 / secs } else { 0.0 },
        ns_per_event: if events > 0 { elapsed_ns as f64 / events as f64 } else { 0.0 },
        peak_rss_bytes: peak_rss_bytes(),
        speedup_vs_heap: 0.0, // filled in by the parent once both rows exist
    }
}

/// Measure one cell in a fresh subprocess (per-config peak RSS). Falls
/// back to in-process measurement if re-exec fails.
fn measure_subprocess(config: &Config, queue: QueueKind, smoke: bool) -> Row {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(_) => return measure(config, queue, smoke),
    };
    let mut cmd = Command::new(exe);
    cmd.arg("--one").arg(config.name()).arg("--queue").arg(queue.label());
    if smoke {
        cmd.arg("--smoke");
    }
    let out = match cmd.output() {
        Ok(o) if o.status.success() => o,
        _ => return measure(config, queue, smoke),
    };
    let stdout = String::from_utf8_lossy(&out.stdout);
    for line in stdout.lines() {
        if let Some(json) = line.strip_prefix("ROW ") {
            if let Ok(v) = serde_json::parse_value(json) {
                return row_from_value(&v);
            }
        }
    }
    measure(config, queue, smoke)
}

/// Rehydrate a [`Row`] from the subprocess's `ROW {json}` line.
fn row_from_value(v: &serde::Value) -> Row {
    let s = |k: &str| v.get(k).and_then(|x| x.as_str()).unwrap_or_default().to_string();
    let u = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
    let f = |k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
    Row {
        name: s("name"),
        family: s("family"),
        queue: s("queue"),
        nodes: u("nodes"),
        inflight: u("inflight"),
        events: u("events"),
        elapsed_ns: u("elapsed_ns"),
        events_per_sec: f("events_per_sec"),
        ns_per_event: f("ns_per_event"),
        peak_rss_bytes: u("peak_rss_bytes"),
        speedup_vs_heap: f("speedup_vs_heap"),
    }
}

/// `--profile` mode: run every proto config under the in-sim handler
/// profiler and write `results/profile_protos.json` (a `profile` block
/// per scheme) plus `results/profile_protos.folded` (call-count-weighted
/// flamegraph stacks). Counts and allocation tallies are jobs-invariant,
/// so both files are reproducible artifacts; query them with
/// `profquery` (see `docs/PROFILING.md`).
fn profile_protos(jobs: usize, smoke: bool) {
    let mut grid = Grid::new();
    for scheme in FuzzScheme::ALL {
        let case = generate_case(scheme, 42, &IntensityProfile::medium());
        let mut workload = fuzz_workload();
        workload.sessions = 8;
        workload.ops_per_session = if smoke { 40 } else { 400 };
        workload.arrival = workload::Arrival::Closed { think_us: 2_000 };
        grid.push(
            scheme.label(),
            Experiment::new(scheme.to_scheme())
                .workload(workload)
                .latency(LatencyModel::lan())
                .faults(nemesis::to_schedule(&case.events))
                .seed(42)
                .horizon(SimTime::from_millis(FUZZ_HORIZON_MS)),
        );
    }
    let cells = grid.profile(true).run(jobs, RecorderSpec::Counters);
    let agg = Recorder::enabled();
    for cell in &cells {
        agg.absorb(&cell.recorder);
    }
    let report = agg.report();
    let profile = report.profile.as_ref().expect("profiled grid produces a profile");

    let mut hot: Vec<(String, u64, u64, u64)> = profile
        .schemes
        .iter()
        .flat_map(|s| {
            s.handlers.iter().map(|h| {
                (format!("{};{}", s.scheme, h.frame()), h.invocations, h.alloc_bytes, h.alloc_count)
            })
        })
        .collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let rows: Vec<Vec<String>> = hot
        .iter()
        .take(10)
        .map(|(frame, calls, bytes, count)| {
            vec![frame.clone(), calls.to_string(), bytes.to_string(), count.to_string()]
        })
        .collect();
    print_table("hot handlers (by calls)", &["frame", "calls", "alloc_bytes", "allocs"], &rows);

    let doc = serde::Value::Object(vec![
        ("schema_version".to_string(), serde::Value::U64(SCHEMA_VERSION)),
        ("tool".to_string(), serde::Value::String("simbench".to_string())),
        (
            "mode".to_string(),
            serde::Value::String(if smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("profile".to_string(), profile.to_value()),
    ]);
    save_json("profile_protos", &doc);
    let path = results_dir().join("profile_protos.folded");
    match std::fs::write(&path, profile.to_folded(FoldWeight::Calls)) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => {
            eprintln!("simbench: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Same-seed byte-identity across `--jobs` levels, on the wheel backend:
/// the cheap standing guard the CI smoke job runs on every PR.
fn determinism_check(jobs: usize) -> bool {
    let run = |jobs: usize| -> Vec<(String, String)> {
        let mut grid = Grid::new();
        for scheme in [FuzzScheme::MajorityQuorum, FuzzScheme::EventualSticky, FuzzScheme::Paxos] {
            let case = generate_case(scheme, 11, &IntensityProfile::medium());
            grid.push(
                scheme.label(),
                Experiment::new(scheme.to_scheme())
                    .workload(fuzz_workload())
                    .faults(nemesis::to_schedule(&case.events))
                    .seed(11)
                    .horizon(SimTime::from_millis(FUZZ_HORIZON_MS))
                    .queue(QueueKind::TimingWheel),
            );
        }
        grid.seeds(2)
            .run(jobs, RecorderSpec::EventLog)
            .into_iter()
            .map(|cell| {
                (
                    serde_json::to_string(cell.result.trace.records()).expect("serializes"),
                    cell.recorder.export_jsonl(),
                )
            })
            .collect()
    };
    let serial = run(1);
    let parallel = run(jobs.max(2));
    let ok = serial == parallel;
    if ok {
        println!("determinism-check: PASS (jobs=1 vs jobs={}, byte-identical)", jobs.max(2));
    } else {
        eprintln!("determinism-check: FAIL — wheel grid output depends on --jobs");
    }
    ok
}

/// Compare measured rows against a checked-in baseline, calibrated for
/// machine speed: the heap backend is the reference implementation, so
/// the ratio of measured-to-baseline heap events/sec estimates how fast
/// this machine is relative to the one that produced the baseline. A
/// wheel row regresses when it falls below 80% of its
/// machine-speed-adjusted baseline.
fn check_against_baseline(rows: &[Row], baseline_path: &str) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let doc = match serde_json::parse_value(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check: cannot parse baseline {baseline_path}: {e:?}");
            return false;
        }
    };
    let empty = [];
    let base_rows: Vec<Row> = doc
        .get("configs")
        .and_then(|c| c.as_array())
        .unwrap_or(&empty)
        .iter()
        .map(row_from_value)
        .collect();
    let base_eps = |name: &str, queue: &str| -> Option<f64> {
        base_rows
            .iter()
            .find(|r| r.name == name && r.queue == queue)
            .map(|r| r.events_per_sec)
            .filter(|&e| e > 0.0)
    };
    // Calibrate: how fast is this machine vs the baseline machine, per
    // the reference (heap) backend? Only deep-queue storm rows are
    // gated — proto rows and storm/small finish in milliseconds and are
    // too timing-noisy for a 20% threshold; they are recorded for the
    // trajectory, not checked.
    let gated = |r: &&Row| r.family == "storm" && r.inflight >= 65_536;
    let mut ratios = Vec::new();
    for row in rows.iter().filter(gated).filter(|r| r.queue == "heap") {
        if let Some(base) = base_eps(&row.name, "heap") {
            ratios.push(row.events_per_sec / base);
        }
    }
    if ratios.is_empty() {
        eprintln!("check: no heap rows shared with the baseline; cannot calibrate");
        return false;
    }
    let factor = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("check: machine-speed factor vs baseline = {factor:.2}x");
    let mut ok = true;
    for row in rows.iter().filter(gated).filter(|r| r.queue == "wheel") {
        let Some(base) = base_eps(&row.name, "wheel") else { continue };
        let floor = 0.8 * base * factor;
        if row.events_per_sec < floor {
            eprintln!(
                "check: REGRESSION {}/{}: {:.0} events/sec < floor {:.0} \
                 (baseline {:.0} x factor {:.2} x 0.8)",
                row.name, row.queue, row.events_per_sec, floor, base, factor
            );
            ok = false;
        }
    }
    if ok {
        println!("check: PASS — no wheel config regressed >20% vs {baseline_path}");
    }
    ok
}

/// The full output document.
#[derive(Serialize)]
struct Doc {
    schema_version: u64,
    tool: String,
    mode: String,
    configs: Vec<Row>,
}

struct Args {
    smoke: bool,
    in_process: bool,
    determinism: bool,
    profile: bool,
    jobs: usize,
    out: String,
    check: Option<String>,
    one: Option<String>,
    queue: QueueKind,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        in_process: false,
        determinism: false,
        profile: false,
        jobs: 8,
        out: "BENCH_simnet.json".to_string(),
        check: None,
        one: None,
        queue: QueueKind::TimingWheel,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let take = |a: &str, flag: &str, it: &mut dyn Iterator<Item = String>| -> Option<String> {
            if a == flag {
                it.next()
            } else {
                a.strip_prefix(&format!("{flag}=")).map(str::to_string)
            }
        };
        if a == "--smoke" {
            args.smoke = true;
        } else if a == "--in-process" {
            args.in_process = true;
        } else if a == "--determinism-check" {
            args.determinism = true;
        } else if a == "--profile" {
            args.profile = true;
        } else if let Some(n) = take(&a, "--jobs", &mut it) {
            args.jobs = n.parse().expect("--jobs expects a positive integer");
        } else if let Some(p) = take(&a, "--out", &mut it) {
            args.out = p;
        } else if let Some(p) = take(&a, "--check", &mut it) {
            args.check = Some(p);
        } else if let Some(n) = take(&a, "--one", &mut it) {
            args.one = Some(n);
        } else if let Some(q) = take(&a, "--queue", &mut it) {
            args.queue = QueueKind::by_name(&q)
                .unwrap_or_else(|| panic!("--queue expects 'heap' or 'wheel', got {q:?}"));
        } else {
            eprintln!("simbench: unknown argument {a:?} (see docs/PERFORMANCE.md)");
            std::process::exit(2);
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // Internal subprocess mode: measure one cell, print it, exit.
    if let Some(name) = &args.one {
        let config = suite(args.smoke)
            .into_iter()
            .find(|c| &c.name() == name)
            .unwrap_or_else(|| panic!("unknown config {name:?}"));
        let row = measure(&config, args.queue, args.smoke);
        println!("ROW {}", serde_json::to_string(&row).expect("row serializes"));
        return;
    }

    if args.determinism {
        std::process::exit(if determinism_check(args.jobs) { 0 } else { 1 });
    }

    if args.profile {
        profile_protos(args.jobs, args.smoke);
        return;
    }

    let mode = if args.smoke { "smoke" } else { "full" };
    println!("simbench: mode={mode}, {} configs x 2 queues", suite(args.smoke).len());
    let mut rows: Vec<Row> = Vec::new();
    for config in suite(args.smoke) {
        let mut heap = if args.in_process {
            measure(&config, QueueKind::BinaryHeap, args.smoke)
        } else {
            measure_subprocess(&config, QueueKind::BinaryHeap, args.smoke)
        };
        let mut wheel = if args.in_process {
            measure(&config, QueueKind::TimingWheel, args.smoke)
        } else {
            measure_subprocess(&config, QueueKind::TimingWheel, args.smoke)
        };
        heap.speedup_vs_heap = 1.0;
        wheel.speedup_vs_heap = if heap.events_per_sec > 0.0 {
            wheel.events_per_sec / heap.events_per_sec
        } else {
            0.0
        };
        println!(
            "  {:<24} heap {:>12.0} ev/s | wheel {:>12.0} ev/s | {:.2}x",
            heap.name, heap.events_per_sec, wheel.events_per_sec, wheel.speedup_vs_heap
        );
        rows.push(heap);
        rows.push(wheel);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.queue.clone(),
                r.events.to_string(),
                format!("{:.0}", r.events_per_sec),
                format!("{:.1}", r.ns_per_event),
                format!("{:.1}", r.peak_rss_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", r.speedup_vs_heap),
            ]
        })
        .collect();
    print_table(
        "simbench",
        &["config", "queue", "events", "events/sec", "ns/event", "rss MiB", "speedup"],
        &table,
    );

    let doc = Doc {
        schema_version: SCHEMA_VERSION,
        tool: "simbench".to_string(),
        mode: mode.to_string(),
        configs: rows.clone(),
    };
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    match std::fs::write(&args.out, json + "\n") {
        Ok(()) => println!("[saved {}]", args.out),
        Err(e) => {
            eprintln!("simbench: cannot write {}: {e}", args.out);
            std::process::exit(1);
        }
    }

    if let Some(baseline) = &args.check {
        if !check_against_baseline(&rows, baseline) {
            std::process::exit(1);
        }
    }
}
