//! E5 (Figure): anti-entropy convergence time vs. cluster size and gossip
//! fanout.
//!
//! A burst of writes lands at replica 0 of a gossip-only eventual store;
//! pollers at every replica probe until each write is visible everywhere.
//! Convergence time is the last replica's first-sighting minus the write
//! ack. Expected shape: time grows ~logarithmically with cluster size and
//! shrinks with fanout (epidemic dissemination), with diminishing returns
//! beyond fanout 2–3.

use bench::{f1, pm, print_table, seed_stat, Obs, SeedStat};
use obs::Recorder;
use replication::common::{ClientCore, Guarantees, ScriptOp};
use replication::eventual::{
    ConflictMode, EventualClient, EventualConfig, EventualReplica, GossipConfig, TargetPolicy,
};
use serde::Serialize;
use simnet::{optrace, Duration, LatencyModel, NodeId, OpKind, Sim, SimConfig, SimTime};

const KEYS: u64 = 5;
const POLL_US: u64 = 5_000;

#[derive(Serialize)]
struct Row {
    replicas: usize,
    fanout: usize,
    gossip_interval_ms: u64,
    mean_convergence_ms: f64,
    mean_convergence_ci95: f64,
    max_convergence_ms: f64,
    unconverged: u64,
    seeds: u64,
}

/// Per-seed measurement (one grid cell).
struct Cell {
    mean_convergence_ms: f64,
    max_convergence_ms: f64,
    unconverged: u64,
}

fn run(replicas: usize, fanout: usize, interval_ms: u64, seed: u64, rec: &Recorder) -> Cell {
    let trace = optrace::shared_trace();
    let cfg = EventualConfig {
        eager: false,
        gossip: Some(GossipConfig { interval: Duration::from_millis(interval_ms), fanout }),
        ..EventualConfig::default_lww(replicas)
    };
    let mut sim = Sim::new(
        SimConfig::default()
            .seed(seed)
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(5),
            })
            .recorder(rec.clone()),
    );
    for _ in 0..replicas {
        sim.add_node(Box::new(EventualReplica::new(cfg.clone())));
    }
    // Writer: burst of KEYS writes at replica 0.
    let writer_script: Vec<ScriptOp> =
        (0..KEYS).map(|k| ScriptOp { gap_us: 1_000, kind: OpKind::Write, key: k }).collect();
    sim.add_node(Box::new(EventualClient::new(
        1,
        writer_script,
        trace.clone(),
        replicas,
        TargetPolicy::Sticky(NodeId(0)),
        Guarantees::none(),
        ConflictMode::Lww,
    )));
    // Pollers: one per replica, cycling through the keys.
    let polls_per_key = 1_200u64; // 1200 * 5ms = 6s of polling per key
    for r in 0..replicas {
        let script: Vec<ScriptOp> = (0..KEYS * polls_per_key)
            .map(|i| ScriptOp { gap_us: POLL_US / KEYS, kind: OpKind::Read, key: i % KEYS })
            .collect();
        sim.add_node(Box::new(EventualClient::new(
            2 + r as u64,
            script,
            trace.clone(),
            replicas,
            TargetPolicy::Sticky(NodeId(r as u32)),
            Guarantees::none(),
            ConflictMode::Lww,
        )));
    }
    sim.run_until(SimTime::from_secs(10));
    let t = trace.borrow();

    // Write ack times per key.
    let mut write_done = vec![None; KEYS as usize];
    for r in t.records().iter().filter(|r| r.session == 1 && r.ok) {
        write_done[r.key as usize] = Some(r.completed);
    }
    // First sighting per (key, poller).
    let mut conv = Vec::new();
    let mut unconverged = 0u64;
    for k in 0..KEYS {
        let expected = ClientCore::unique_value(1, k + 1);
        let Some(done) = write_done[k as usize] else {
            unconverged += 1;
            continue;
        };
        let mut worst: Option<SimTime> = None;
        let mut all_seen = true;
        for poller in 2..(2 + replicas as u64) {
            let first = t
                .records()
                .iter()
                .filter(|r| {
                    r.session == poller && r.key == k && r.ok && r.value_read.contains(&expected)
                })
                .map(|r| r.completed)
                .min();
            match first {
                Some(ts) => worst = Some(worst.map_or(ts, |w: SimTime| w.max(ts))),
                None => all_seen = false,
            }
        }
        if let (Some(w), true) = (worst, all_seen) {
            conv.push(w.saturating_since(done).as_millis_f64());
        } else {
            unconverged += 1;
        }
    }
    let mean = if conv.is_empty() { 0.0 } else { conv.iter().sum::<f64>() / conv.len() as f64 };
    let max = conv.iter().cloned().fold(0.0, f64::max);
    Cell { mean_convergence_ms: mean, max_convergence_ms: max, unconverged }
}

fn main() {
    let obs = Obs::from_args();
    let mut params = Vec::new();
    for &replicas in &[4usize, 8, 16] {
        for &fanout in &[1usize, 2, 3] {
            params.push((replicas, fanout));
        }
    }
    let results = obs.sweep(&params, 2024, |&(replicas, fanout), seed, rec| {
        run(replicas, fanout, 50, seed, rec)
    });

    let mut rows = Vec::new();
    let mut means: Vec<SeedStat> = Vec::new();
    for (&(replicas, fanout), cells) in params.iter().zip(&results) {
        let mean = seed_stat(&cells.iter().map(|c| c.mean_convergence_ms).collect::<Vec<_>>());
        rows.push(Row {
            replicas,
            fanout,
            gossip_interval_ms: 50,
            mean_convergence_ms: mean.mean,
            mean_convergence_ci95: mean.ci95,
            max_convergence_ms: cells.iter().map(|c| c.max_convergence_ms).fold(0.0, f64::max),
            unconverged: cells.iter().map(|c| c.unconverged).sum(),
            seeds: obs.seeds,
        });
        means.push(mean);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&means)
        .map(|(x, mean)| {
            vec![
                x.replicas.to_string(),
                x.fanout.to_string(),
                x.gossip_interval_ms.to_string(),
                pm(*mean, f1),
                f1(x.max_convergence_ms),
                x.unconverged.to_string(),
            ]
        })
        .collect();
    print_table(
        "E5: anti-entropy convergence (gossip-only, 50ms rounds)",
        &["replicas", "fanout", "interval", "mean ms", "max ms", "unconverged"],
        &table,
    );
    obs.save("e5_gossip_convergence", &rows);
}
