//! E6 (Table): concurrent-update loss — LWW read-modify-write vs. CRDT
//! counters.
//!
//! `sessions` clients each apply `increments` increments of +1 to one
//! shared counter key at their local replica of an eventual store.
//!
//! * **LWW mode**: the increment is a read-modify-write; concurrent RMWs
//!   overwrite each other and increments vanish.
//! * **Counter (CRDT) mode**: writes are PN-counter increments merged as
//!   a semilattice; nothing is ever lost.
//!
//! Expected shape: LWW loses more as concurrency rises (tens of percent
//! with several writers); the CRDT loses exactly zero at every level.

use bench::{pct, pm, print_table, seed_stat, Obs, SeedStat};
use obs::Recorder;
use replication::common::{ClientCore, Guarantees, ScriptOp};
use replication::eventual::{
    ConflictMode, EventualClient, EventualConfig, EventualReplica, GossipConfig, TargetPolicy,
};
use serde::Serialize;
use simnet::{optrace, Duration, LatencyModel, NodeId, OpKind, Sim, SimConfig, SimTime};

const COUNTER_KEY: u64 = 0;

#[derive(Serialize)]
struct Row {
    mode: String,
    writers: usize,
    increments_each: u64,
    expected: i64,
    /// Mean surviving increments across seeds.
    observed: f64,
    lost: f64,
    loss_rate: f64,
    loss_rate_ci95: f64,
    seeds: u64,
}

/// Per-seed measurement (one grid cell).
struct Cell {
    mode: &'static str,
    expected: i64,
    observed: i64,
}

/// Run the LWW read-modify-write variant: each client alternates
/// read(counter) / write(counter) — the write is "value+1" only
/// conceptually; with unique write ids we count *surviving writes*
/// instead: expected survivors == total writes is impossible under LWW on
/// one register, so we measure lost increments by having each client do
/// local RMW cycles and checking how many of the final reads chain back.
///
/// Concretely: every client performs `k` write ops; after quiescence the
/// register holds exactly one winner. Each *overwritten-without-being-
/// observed* write is a lost update. We approximate the paper's metric by
/// counting committed increments as "observed by the final value's causal
/// chain": with LWW there is no chain, so survivors = 1 per concurrent
/// batch. To keep the measurement honest and simple, the LWW row counts
/// `lost = total_writes - distinct_values_ever_read_by_anyone_last`,
/// which for a single register equals `total_writes - 1` under full
/// concurrency and less under serialization. The CRDT row measures the
/// true counter value.
fn run_lww(writers: usize, increments: u64, seed: u64, rec: &Recorder) -> Cell {
    let trace = optrace::shared_trace();
    let replicas = writers.clamp(2, 4);
    let cfg = EventualConfig {
        eager: true,
        gossip: Some(GossipConfig { interval: Duration::from_millis(10), fanout: 2 }),
        ..EventualConfig::default_lww(replicas)
    };
    let mut sim = Sim::new(
        SimConfig::default()
            .seed(seed)
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(15),
            })
            .recorder(rec.clone()),
    );
    for _ in 0..replicas {
        sim.add_node(Box::new(EventualReplica::new(cfg.clone())));
    }
    for wtr in 0..writers {
        // RMW cycle: read then write, think time ~2ms.
        let mut script = Vec::new();
        for _ in 0..increments {
            script.push(ScriptOp { gap_us: 2_000, kind: OpKind::Read, key: COUNTER_KEY });
            script.push(ScriptOp { gap_us: 100, kind: OpKind::Write, key: COUNTER_KEY });
        }
        sim.add_node(Box::new(EventualClient::new(
            wtr as u64 + 1,
            script,
            trace.clone(),
            replicas,
            TargetPolicy::Sticky(NodeId((wtr % replicas) as u32)),
            Guarantees::none(),
            ConflictMode::Lww,
        )));
    }
    sim.run_until(SimTime::from_secs(120));
    let t = trace.borrow();
    // Reconstruct the RMW chain: the final value is one write; walk
    // backwards: a write "incorporated" the value its session read just
    // before it. Increments that are not on the final chain are lost.
    let final_write = t
        .records()
        .iter()
        .filter(|r| r.kind == OpKind::Write && r.ok)
        .max_by_key(|r| r.stamp)
        .expect("writes happened");
    let mut chain = 0i64;
    let mut cursor = Some(final_write);
    while let Some(w) = cursor {
        chain += 1;
        // The read this session performed immediately before this write.
        let prior_read = t
            .records()
            .iter()
            .rfind(|r| r.session == w.session && r.kind == OpKind::Read && r.op_id == w.op_id - 1);
        cursor = prior_read.and_then(|r| {
            r.value_read.first().and_then(|v| {
                t.records().iter().find(|x| x.kind == OpKind::Write && x.value_written == Some(*v))
            })
        });
    }
    let expected = (writers as i64) * (increments as i64);
    Cell { mode: "LWW (RMW)", expected, observed: chain }
}

fn run_crdt(writers: usize, increments: u64, seed: u64, rec: &Recorder) -> Cell {
    let trace = optrace::shared_trace();
    let replicas = writers.clamp(2, 4);
    let cfg = EventualConfig {
        eager: true,
        gossip: Some(GossipConfig { interval: Duration::from_millis(10), fanout: 2 }),
        mode: ConflictMode::Counter,
        ..EventualConfig::default_lww(replicas)
    };
    let mut sim = Sim::new(
        SimConfig::default()
            .seed(seed)
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(15),
            })
            .recorder(rec.clone()),
    );
    for _ in 0..replicas {
        sim.add_node(Box::new(EventualReplica::new(cfg.clone())));
    }
    // In counter mode a "write" increments by the value field; to add +1
    // per op we cannot use the unique-value convention, so clients write
    // and we count ops: expected = writers * increments, and the counter
    // accumulates unique ids — instead we make each increment +value and
    // compute expected as the sum of unique ids written.
    let mut expected: i64 = 0;
    for wtr in 0..writers {
        let script: Vec<ScriptOp> = (0..increments)
            .map(|_| ScriptOp { gap_us: 2_000, kind: OpKind::Write, key: COUNTER_KEY })
            .collect();
        for op in 1..=increments {
            expected += ClientCore::unique_value(wtr as u64 + 1, op) as i64;
        }
        sim.add_node(Box::new(EventualClient::new(
            wtr as u64 + 1,
            script,
            trace.clone(),
            replicas,
            TargetPolicy::Sticky(NodeId((wtr % replicas) as u32)),
            Guarantees::none(),
            ConflictMode::Counter,
        )));
    }
    // A reader polls late to get the converged value.
    sim.add_node(Box::new(EventualClient::new(
        999,
        vec![ScriptOp { gap_us: 60_000_000, kind: OpKind::Read, key: COUNTER_KEY }],
        trace.clone(),
        replicas,
        TargetPolicy::Sticky(NodeId(0)),
        Guarantees::none(),
        ConflictMode::Counter,
    )));
    sim.run_until(SimTime::from_secs(120));
    let t = trace.borrow();
    let observed = t
        .records()
        .iter()
        .find(|r| r.session == 999 && r.ok)
        .and_then(|r| r.value_read.first().copied())
        .unwrap_or(0) as i64;
    Cell { mode: "CRDT counter", expected, observed }
}

const INCREMENTS: u64 = 25;

fn main() {
    let obs = Obs::from_args();
    let mut params = Vec::new();
    for &writers in &[2usize, 4, 8] {
        params.push((false, writers)); // LWW
        params.push((true, writers)); // CRDT
    }
    let results = obs.sweep(&params, 5, |&(crdt, writers), seed, rec| {
        if crdt {
            run_crdt(writers, INCREMENTS, seed, rec)
        } else {
            run_lww(writers, INCREMENTS, seed, rec)
        }
    });

    let mut rows = Vec::new();
    let mut losses: Vec<SeedStat> = Vec::new();
    for (&(_, writers), cells) in params.iter().zip(&results) {
        let expected = cells[0].expected;
        let loss = seed_stat(
            &cells
                .iter()
                .map(|c| (c.expected - c.observed) as f64 / c.expected.max(1) as f64)
                .collect::<Vec<_>>(),
        );
        let observed = seed_stat(&cells.iter().map(|c| c.observed as f64).collect::<Vec<_>>()).mean;
        rows.push(Row {
            mode: cells[0].mode.to_string(),
            writers,
            increments_each: INCREMENTS,
            expected,
            observed,
            lost: expected as f64 - observed,
            loss_rate: loss.mean,
            loss_rate_ci95: loss.ci95,
            seeds: obs.seeds,
        });
        losses.push(loss);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&losses)
        .map(|(x, loss)| {
            vec![
                x.mode.clone(),
                x.writers.to_string(),
                x.increments_each.to_string(),
                x.expected.to_string(),
                format!("{:.1}", x.observed),
                format!("{:.1}", x.lost),
                pm(*loss, pct),
            ]
        })
        .collect();
    print_table(
        "E6: lost updates — LWW read-modify-write vs CRDT counter",
        &["mode", "writers", "incr each", "expected", "observed", "lost", "loss"],
        &table,
    );
    obs.save("e6_conflict_resolution", &rows);
}
