//! Flat-memory harness for the streaming consistency checkers.
//!
//! Feeds a deterministic synthetic operation stream (a seeded LCG — no
//! wall clock, no OS randomness) through a bounded-window
//! [`consistency::StreamVerifier`] and reports peak RSS, so the
//! bounded-memory claim in `docs/CHECKERS.md` is measurable rather than
//! asserted. The stream rotates session ids and spreads writes over a
//! fixed key space, so both the per-session and per-key checker state
//! face continuous eviction pressure; it is constructed violation-free,
//! so the violation log cannot grow either.
//!
//! ```text
//! checkerbench --ops 1000000 --window-ms 2000     # one run, JSON row
//! checkerbench --grow-check                       # N vs 10N RSS gate
//! ```
//!
//! `--grow-check` re-executes this binary (the simbench subprocess
//! pattern: `VmHWM` from `/proc/self/status` is a per-process
//! high-water mark) at `--ops N` and `--ops 10N` and exits non-zero if
//! peak RSS grew by 10% or more — the CI regression gate for
//! `tests/checker_stream_memory.rs`.

use consistency::{StreamConfig, StreamVerifier, Watermark};
use simnet::{Duration, NodeId, OpKind, OpRecord, SimTime};

/// Keys the synthetic stream writes to.
const KEYS: u64 = 64;
/// Ops per rotating session before it is abandoned (eviction pressure).
const SESSION_SPAN: u64 = 200;
/// Watermark advance cadence, in ops.
const CHUNK: usize = 256;

/// The newest acknowledged write: `(key, value, stamp)`.
type LastWrite = (u64, u64, (u64, u64));

fn main() {
    let mut ops: u64 = 1_000_000;
    let mut window_ms: u64 = 2_000;
    let mut grow_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let take = |flag: &str, args: &mut dyn Iterator<Item = String>| -> Option<String> {
            if a == flag {
                args.next()
            } else {
                a.strip_prefix(&format!("{flag}=")).map(str::to_string)
            }
        };
        if let Some(n) = take("--ops", &mut args) {
            ops = n.parse().expect("--ops expects an integer");
        } else if let Some(n) = take("--window-ms", &mut args) {
            window_ms = n.parse().expect("--window-ms expects milliseconds");
        } else if a == "--grow-check" {
            grow_check = true;
        } else {
            eprintln!("checkerbench: unknown flag `{a}`");
            std::process::exit(2);
        }
    }
    if grow_check {
        std::process::exit(run_grow_check(ops / 10, window_ms));
    }
    let (violations, evicted) = run_stream(ops, window_ms);
    println!(
        "{{\"ops\":{ops},\"window_ms\":{window_ms},\"violations\":{violations},\
         \"events_evicted\":{evicted},\"peak_rss_bytes\":{}}}",
        peak_rss_bytes()
    );
}

/// Feed `n` synthetic ops through a bounded-window verifier; returns
/// `(violations, events_evicted)`. The stream is violation-free by
/// construction: every read observes the newest write to its key, and
/// write stamps increase globally.
fn run_stream(n: u64, window_ms: u64) -> (usize, u64) {
    let mut verifier = StreamVerifier::new(StreamConfig {
        window: Some(Duration::from_millis(window_ms)),
        retain_samples: false,
        ..StreamConfig::default()
    });
    let mut last_write: Vec<Option<LastWrite>> = vec![None; KEYS as usize];
    let mut lcg: u64 = 0x9E3779B97F4A7C15;
    let mut newest_key: Option<u64> = None;
    let mut chunk: Vec<OpRecord> = Vec::with_capacity(CHUNK);
    for i in 0..n {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let t = SimTime::from_micros((i + 1) * 500);
        let session = i / SESSION_SPAN;
        let write = (lcg >> 33) & 1 == 0 || newest_key.is_none();
        let rec = if write {
            let key = (lcg >> 40) % KEYS;
            let value = i + 1;
            let stamp = (i + 1, 0);
            last_write[key as usize] = Some((key, value, stamp));
            newest_key = Some(key);
            OpRecord {
                session,
                op_id: i,
                key,
                kind: OpKind::Write,
                value_written: Some(value),
                value_read: vec![],
                invoked: SimTime::from_micros(t.as_micros() - 200),
                completed: t,
                replica: NodeId(0),
                ok: true,
                version_ts: None,
                stamp: Some(stamp),
            }
        } else {
            // Read the most recently written key and observe its newest
            // value: fresh, session-clean, monotone.
            let (key, value, stamp) = last_write[newest_key.unwrap() as usize].unwrap();
            OpRecord {
                session,
                op_id: i,
                key,
                kind: OpKind::Read,
                value_written: None,
                value_read: vec![value],
                invoked: SimTime::from_micros(t.as_micros() - 200),
                completed: t,
                replica: NodeId(0),
                ok: true,
                version_ts: Some(SimTime::from_micros(value * 500)),
                stamp: Some(stamp),
            }
        };
        chunk.push(rec);
        if chunk.len() == CHUNK {
            for op in &chunk {
                verifier.feed(op);
            }
            verifier.advance(Watermark::at(t));
            chunk.clear();
        }
    }
    for op in &chunk {
        verifier.feed(op);
    }
    let reports = verifier.finish();
    (reports.violations.len(), reports.events_evicted)
}

/// Re-exec this binary at `base` and `10 * base` ops and gate on peak
/// RSS growth staying under 10%. Returns the process exit code.
fn run_grow_check(base: u64, window_ms: u64) -> i32 {
    let base = base.max(100_000);
    let small = measure_subprocess(base, window_ms);
    let large = measure_subprocess(base * 10, window_ms);
    let (Some(small), Some(large)) = (small, large) else {
        eprintln!("checkerbench: could not measure subprocess RSS");
        return 1;
    };
    if small == 0 || large == 0 {
        // procfs unavailable (non-Linux): nothing to gate on.
        println!("grow-check: skipped (no VmHWM)");
        return 0;
    }
    let growth = (large as f64 - small as f64) / small as f64;
    println!(
        "grow-check: ops {base} -> {} : peak RSS {small} -> {large} bytes ({:+.1}%)",
        base * 10,
        growth * 100.0
    );
    if growth >= 0.10 {
        eprintln!(
            "FAIL: peak RSS grew {:.1}% (>= 10%) across a 10x longer trace — \
             streaming checker state is not flat",
            growth * 100.0
        );
        1
    } else {
        0
    }
}

/// Run `checkerbench --ops <ops>` in a fresh subprocess and parse
/// `peak_rss_bytes` from its JSON row.
fn measure_subprocess(ops: u64, window_ms: u64) -> Option<u64> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .arg(format!("--ops={ops}"))
        .arg(format!("--window-ms={window_ms}"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let tail = text.split("\"peak_rss_bytes\":").nth(1)?;
    tail.trim_end().trim_end_matches('}').trim().parse().ok()
}

/// Peak RSS of this process in bytes (`VmHWM` from `/proc/self/status`);
/// 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}
