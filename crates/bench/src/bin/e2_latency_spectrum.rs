//! E2 (Figure): operation latency across the consistency spectrum in a
//! five-region geo deployment.
//!
//! One series per scheme: read and write p50/p99 under identical
//! workloads. Expected shape (who wins): eventual/causal serve locally
//! (sub-ms to few-ms), quorum pays one WAN quorum round trip, primary-sync
//! pays the farthest-backup round trip on writes, Paxos pays a majority
//! round trip on *every* op (reads go through the log). Multi-seed runs
//! (`--seeds N`) report seed means with a 95% CI on read p99.

use bench::{f1, pm, print_table, seed_stat, Obs, SeedStat};
use rec_core::metrics::latency_summary;
use rec_core::{Experiment, Grid, Scheme};
use serde::Serialize;
use simnet::{Duration, LatencyModel};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    scheme: String,
    read_p50_ms: f64,
    read_p99_ms: f64,
    read_p99_ci95: f64,
    write_p50_ms: f64,
    write_p99_ms: f64,
    availability: f64,
    seeds: u64,
}

fn main() {
    let obs = Obs::from_args();
    let workload = WorkloadSpec {
        keys: 50,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 20_000 },
        sessions: 10,
        ops_per_session: 80,
    };
    let schemes = vec![
        Scheme::eventual(5),
        Scheme::Causal { replicas: 5 },
        Scheme::quorum(5, 2, 2),
        Scheme::quorum(5, 3, 3),
        Scheme::PrimaryAsync { replicas: 5, ship_interval: Duration::from_millis(100) },
        Scheme::PrimarySync { replicas: 5 },
        Scheme::Paxos { nodes: 5 },
    ];
    let mut grid = Grid::new();
    for scheme in schemes {
        grid.push(
            scheme.label(),
            Experiment::new(scheme)
                .latency(LatencyModel::geo_five_regions(5))
                .workload(workload.clone())
                .seed(1234)
                .horizon(simnet::SimTime::from_secs(300)),
        );
    }
    let cells = obs.run_grid(grid);

    let mut rows = Vec::new();
    let mut p99s: Vec<SeedStat> = Vec::new();
    for seeds in cells.chunks(obs.seeds as usize) {
        let lats: Vec<_> = seeds.iter().map(|c| latency_summary(&c.result.trace)).collect();
        let col = |f: &dyn Fn(usize) -> f64| seed_stat(&(0..lats.len()).map(f).collect::<Vec<_>>());
        let read_p99 = col(&|i| lats[i].reads.p99);
        rows.push(Row {
            scheme: seeds[0].label.clone(),
            read_p50_ms: col(&|i| lats[i].reads.p50).mean,
            read_p99_ms: read_p99.mean,
            read_p99_ci95: read_p99.ci95,
            write_p50_ms: col(&|i| lats[i].writes.p50).mean,
            write_p99_ms: col(&|i| lats[i].writes.p99).mean,
            availability: col(&|i| seeds[i].result.trace.success_rate()).mean,
            seeds: obs.seeds,
        });
        p99s.push(read_p99);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&p99s)
        .map(|(x, p99)| {
            vec![
                x.scheme.clone(),
                f1(x.read_p50_ms),
                pm(*p99, f1),
                f1(x.write_p50_ms),
                f1(x.write_p99_ms),
                format!("{:.3}", x.availability),
            ]
        })
        .collect();
    print_table(
        "E2: latency across the consistency spectrum (5-region geo)",
        &["scheme", "read p50", "read p99", "write p50", "write p99", "avail"],
        &table,
    );
    obs.save("e2_latency_spectrum", &rows);
}
