//! E2 (Figure): operation latency across the consistency spectrum in a
//! five-region geo deployment.
//!
//! One series per scheme: read and write p50/p99 under identical
//! workloads. Expected shape (who wins): eventual/causal serve locally
//! (sub-ms to few-ms), quorum pays one WAN quorum round trip, primary-sync
//! pays the farthest-backup round trip on writes, Paxos pays a majority
//! round trip on *every* op (reads go through the log).

use bench::{f1, print_table, Obs};
use rec_core::metrics::latency_summary;
use rec_core::{Experiment, Scheme};
use serde::Serialize;
use simnet::{Duration, LatencyModel};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    scheme: String,
    read_p50_ms: f64,
    read_p99_ms: f64,
    write_p50_ms: f64,
    write_p99_ms: f64,
    availability: f64,
}

fn main() {
    let obs = Obs::from_args();
    let workload = WorkloadSpec {
        keys: 50,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 20_000 },
        sessions: 10,
        ops_per_session: 80,
    };
    let schemes = vec![
        Scheme::eventual(5),
        Scheme::Causal { replicas: 5 },
        Scheme::quorum(5, 2, 2),
        Scheme::quorum(5, 3, 3),
        Scheme::PrimaryAsync { replicas: 5, ship_interval: Duration::from_millis(100) },
        Scheme::PrimarySync { replicas: 5 },
        Scheme::Paxos { nodes: 5 },
    ];
    let mut rows = Vec::new();
    for scheme in schemes {
        let label = scheme.label();
        let res = Experiment::new(scheme)
            .latency(LatencyModel::geo_five_regions(5))
            .workload(workload.clone())
            .seed(1234)
            .recorder(obs.recorder.clone())
            .horizon(simnet::SimTime::from_secs(300))
            .run();
        let lat = latency_summary(&res.trace);
        rows.push(Row {
            scheme: label,
            read_p50_ms: lat.reads.p50,
            read_p99_ms: lat.reads.p99,
            write_p50_ms: lat.writes.p50,
            write_p99_ms: lat.writes.p99,
            availability: res.trace.success_rate(),
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|x| {
            vec![
                x.scheme.clone(),
                f1(x.read_p50_ms),
                f1(x.read_p99_ms),
                f1(x.write_p50_ms),
                f1(x.write_p99_ms),
                format!("{:.3}", x.availability),
            ]
        })
        .collect();
    print_table(
        "E2: latency across the consistency spectrum (5-region geo)",
        &["scheme", "read p50", "read p99", "write p50", "write p99", "avail"],
        &table,
    );
    obs.save("e2_latency_spectrum", &rows);
}
