//! E10 (Table): the throughput/latency price of synchrony on a
//! write-heavy workload.
//!
//! Write-only closed-loop clients against each propagation mode in a LAN.
//! Expected shape (who wins): async primary acknowledges after one round
//! trip (fastest); majority quorum adds a parallel quorum wait; sync
//! primary waits for *all* backups (slowest of the primary family); Paxos
//! pays leader + majority round trips. Closed-loop throughput is the
//! mirror image of latency. Multi-seed runs (`--seeds N`) report seed
//! means with a 95% CI on write p99.

use bench::{f1, pm, print_table, seed_stat, Obs, SeedStat};
use rec_core::metrics::{latency_summary, throughput_ops_per_sec};
use rec_core::{Experiment, Grid, Scheme};
use serde::Serialize;
use simnet::{Duration, LatencyModel, SimTime};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    scheme: String,
    write_p50_ms: f64,
    write_p99_ms: f64,
    write_p99_ci95: f64,
    ops_per_sec: f64,
    availability: f64,
    seeds: u64,
}

fn main() {
    let obs = Obs::from_args();
    let workload = WorkloadSpec {
        keys: 100,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::write_only(),
        arrival: Arrival::Closed { think_us: 1_000 },
        sessions: 8,
        ops_per_session: 200,
    };
    let schemes = vec![
        Scheme::eventual(3),
        Scheme::PrimaryAsync { replicas: 3, ship_interval: Duration::from_millis(50) },
        Scheme::quorum(3, 2, 2),
        Scheme::PrimarySync { replicas: 3 },
        Scheme::Paxos { nodes: 3 },
    ];
    let mut grid = Grid::new();
    for scheme in schemes {
        grid.push(
            scheme.label(),
            Experiment::new(scheme)
                .latency(LatencyModel::lan())
                .workload(workload.clone())
                .seed(3)
                .horizon(SimTime::from_secs(120)),
        );
    }
    let cells = obs.run_grid(grid);

    let mut rows = Vec::new();
    let mut p99s: Vec<SeedStat> = Vec::new();
    for seeds in cells.chunks(obs.seeds as usize) {
        let lats: Vec<_> = seeds.iter().map(|c| latency_summary(&c.result.trace)).collect();
        let col = |f: &dyn Fn(usize) -> f64| seed_stat(&(0..lats.len()).map(f).collect::<Vec<_>>());
        let p99 = col(&|i| lats[i].writes.p99);
        rows.push(Row {
            scheme: seeds[0].label.clone(),
            write_p50_ms: col(&|i| lats[i].writes.p50).mean,
            write_p99_ms: p99.mean,
            write_p99_ci95: p99.ci95,
            ops_per_sec: col(&|i| throughput_ops_per_sec(&seeds[i].result.trace)).mean,
            availability: col(&|i| seeds[i].result.trace.success_rate()).mean,
            seeds: obs.seeds,
        });
        p99s.push(p99);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&p99s)
        .map(|(x, p99)| {
            vec![
                x.scheme.clone(),
                f1(x.write_p50_ms),
                pm(*p99, f1),
                f1(x.ops_per_sec),
                format!("{:.3}", x.availability),
            ]
        })
        .collect();
    print_table(
        "E10: cost of synchrony (write-only, LAN, 8 closed-loop clients)",
        &["scheme", "write p50", "write p99", "ops/s", "avail"],
        &table,
    );
    obs.save("e10_sync_cost", &rows);
}
