//! E10 (Table): the throughput/latency price of synchrony on a
//! write-heavy workload.
//!
//! Write-only closed-loop clients against each propagation mode in a LAN.
//! Expected shape (who wins): async primary acknowledges after one round
//! trip (fastest); majority quorum adds a parallel quorum wait; sync
//! primary waits for *all* backups (slowest of the primary family); Paxos
//! pays leader + majority round trips. Closed-loop throughput is the
//! mirror image of latency.

use bench::{f1, print_table, Obs};
use rec_core::metrics::{latency_summary, throughput_ops_per_sec};
use rec_core::{Experiment, Scheme};
use serde::Serialize;
use simnet::{Duration, LatencyModel, SimTime};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    scheme: String,
    write_p50_ms: f64,
    write_p99_ms: f64,
    ops_per_sec: f64,
    availability: f64,
}

fn main() {
    let obs = Obs::from_args();
    let workload = WorkloadSpec {
        keys: 100,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::write_only(),
        arrival: Arrival::Closed { think_us: 1_000 },
        sessions: 8,
        ops_per_session: 200,
    };
    let schemes = vec![
        Scheme::eventual(3),
        Scheme::PrimaryAsync { replicas: 3, ship_interval: Duration::from_millis(50) },
        Scheme::quorum(3, 2, 2),
        Scheme::PrimarySync { replicas: 3 },
        Scheme::Paxos { nodes: 3 },
    ];
    let mut rows = Vec::new();
    for scheme in schemes {
        let label = scheme.label();
        let res = Experiment::new(scheme)
            .latency(LatencyModel::lan())
            .workload(workload.clone())
            .seed(3)
            .recorder(obs.recorder.clone())
            .horizon(SimTime::from_secs(120))
            .run();
        let lat = latency_summary(&res.trace);
        rows.push(Row {
            scheme: label,
            write_p50_ms: lat.writes.p50,
            write_p99_ms: lat.writes.p99,
            ops_per_sec: throughput_ops_per_sec(&res.trace),
            availability: res.trace.success_rate(),
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|x| {
            vec![
                x.scheme.clone(),
                f1(x.write_p50_ms),
                f1(x.write_p99_ms),
                f1(x.ops_per_sec),
                format!("{:.3}", x.availability),
            ]
        })
        .collect();
    print_table(
        "E10: cost of synchrony (write-only, LAN, 8 closed-loop clients)",
        &["scheme", "write p50", "write p99", "ops/s", "avail"],
        &table,
    );
    obs.save("e10_sync_cost", &rows);
}
