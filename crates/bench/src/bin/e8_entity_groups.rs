//! E8 (Figure): entity-group transactions — abort rate and commit latency
//! vs. contention and group span (Megastore-style).
//!
//! Clients run read-modify-write transactions over a keyspace with
//! Zipfian-skewed key choice. Contention rises with skew; the group span
//! compares single-group fast commits against cross-group 2PC and
//! registrar-backed 2PC (Paxos-Commit-lite). Expected shape: aborts grow
//! with skew; cross-group txns pay ~2x latency (prepare+decide) and the
//! registrar adds another round trip; single-group aborts stay cheapest.

use bench::{f1, pct, pm, print_table, seed_stat, Obs, SeedStat};
use obs::Recorder;
use rand::RngCore;
use serde::Serialize;
use simnet::{Duration, LatencyModel, Sim, SimConfig, SimRng, SimTime};
use txn::client::{shared_stats, SharedTxnStats};
use txn::{GroupNode, TxnClient, TxnConfig, TxnSpec};
use workload::ZipfSampler;

#[derive(Serialize)]
struct Row {
    span: String,
    theta: f64,
    clients: usize,
    committed: u64,
    aborted: u64,
    timed_out: u64,
    abort_rate: f64,
    abort_rate_ci95: f64,
    mean_commit_ms: f64,
    seeds: u64,
}

/// Per-seed measurement (one grid cell).
struct Cell {
    committed: u64,
    aborted: u64,
    timed_out: u64,
    abort_rate: f64,
    mean_commit_ms: f64,
}

const KEYS_PER_GROUP: u64 = 20;

fn run(
    cross_group: bool,
    registrar: usize,
    theta: f64,
    clients: usize,
    seed: u64,
    rec: &Recorder,
) -> Cell {
    let nodes = 3usize;
    let cfg = TxnConfig::new(nodes);
    let mut sim = Sim::new(
        SimConfig::default()
            .seed(seed)
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(8),
            })
            .recorder(rec.clone()),
    );
    for _ in 0..nodes {
        sim.add_node(Box::new(GroupNode::new(cfg)));
    }
    let mut all_stats: Vec<SharedTxnStats> = Vec::new();
    let mut rng = SimRng::new(seed ^ 0xabcd);
    for c in 0..clients {
        let mut zipf = ZipfSampler::new(KEYS_PER_GROUP, theta);
        let stats = shared_stats();
        all_stats.push(stats.clone());
        let script: Vec<TxnSpec> = (0..60)
            .map(|_| {
                let k1 = zipf.sample(&mut rng);
                let v = rng.next_u64() & 0xffff;
                if cross_group {
                    let k2 = zipf.sample(&mut rng);
                    TxnSpec {
                        gap_us: 10_000,
                        parts: vec![(0, vec![k1], vec![(k1, v)]), (1, vec![k2], vec![(k2, v)])],
                    }
                } else {
                    TxnSpec { gap_us: 10_000, parts: vec![(0, vec![k1], vec![(k1, v)])] }
                }
            })
            .collect();
        sim.add_node(Box::new(TxnClient::new(c as u64 + 1, cfg, script, stats, registrar)));
    }
    sim.run_until(SimTime::from_secs(120));
    let mut committed = 0;
    let mut aborted = 0;
    let mut timed_out = 0;
    let mut latencies = Vec::new();
    for s in &all_stats {
        let s = s.borrow();
        committed += s.committed;
        aborted += s.aborted;
        timed_out += s.timed_out;
        latencies.extend(s.commit_latency_ms.iter().copied());
    }
    let total = committed + aborted + timed_out;
    Cell {
        committed,
        aborted,
        timed_out,
        abort_rate: if total == 0 { 0.0 } else { (aborted + timed_out) as f64 / total as f64 },
        mean_commit_ms: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
    }
}

const CLIENTS: usize = 8;

fn main() {
    let obs = Obs::from_args();
    // (cross_group, registrar, theta)
    let mut params: Vec<(bool, usize, f64)> = Vec::new();
    for &theta in &[0.2f64, 0.6, 0.9, 0.99] {
        params.push((false, 0, theta));
    }
    for &theta in &[0.2f64, 0.9] {
        params.push((true, 0, theta));
        params.push((true, 2, theta));
    }
    let results = obs.sweep(&params, 77, |&(cross_group, registrar, theta), seed, rec| {
        run(cross_group, registrar, theta, CLIENTS, seed, rec)
    });

    let mut rows = Vec::new();
    let mut aborts: Vec<SeedStat> = Vec::new();
    for (&(cross_group, registrar, theta), cells) in params.iter().zip(&results) {
        let span = match (cross_group, registrar) {
            (false, _) => "1 group".to_string(),
            (true, 0) => "2 groups (2PC)".to_string(),
            (true, k) => format!("2 groups (2PC+reg{k})"),
        };
        let abort = seed_stat(&cells.iter().map(|c| c.abort_rate).collect::<Vec<_>>());
        rows.push(Row {
            span,
            theta,
            clients: CLIENTS,
            committed: cells.iter().map(|c| c.committed).sum(),
            aborted: cells.iter().map(|c| c.aborted).sum(),
            timed_out: cells.iter().map(|c| c.timed_out).sum(),
            abort_rate: abort.mean,
            abort_rate_ci95: abort.ci95,
            mean_commit_ms: seed_stat(&cells.iter().map(|c| c.mean_commit_ms).collect::<Vec<_>>())
                .mean,
            seeds: obs.seeds,
        });
        aborts.push(abort);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&aborts)
        .map(|(x, abort)| {
            vec![
                x.span.clone(),
                format!("{:.2}", x.theta),
                x.clients.to_string(),
                x.committed.to_string(),
                (x.aborted + x.timed_out).to_string(),
                pm(*abort, pct),
                f1(x.mean_commit_ms),
            ]
        })
        .collect();
    print_table(
        "E8: entity-group transactions — contention and group span",
        &["span", "theta", "clients", "committed", "aborted", "abort rate", "commit ms"],
        &table,
    );
    obs.save("e8_entity_groups", &rows);
}
