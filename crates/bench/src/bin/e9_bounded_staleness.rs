//! E9 (Figure): read staleness vs. replication lag under asynchronous
//! primary-copy replication, and the bounded-staleness rejection rate.
//!
//! Backup reads against a primary that ships its log every `lag` ms. The
//! staleness CDF shifts right linearly with the shipping interval;
//! a bounded-staleness policy with bound B would reject exactly the reads
//! whose t-staleness exceeds B — reported for B ∈ {25, 50, 100, 250} ms.
//! Expected shape: P(stale) rises with lag; P(t > B) falls as B grows;
//! with lag << B nothing is rejected. Multi-seed runs (`--seeds N`)
//! report seed means with a 95% CI on P(stale).

use bench::{pct, pm, print_table, seed_stat, Obs, SeedStat};
use consistency::measure_staleness;
use rec_core::{Experiment, Grid, Scheme};
use serde::Serialize;
use simnet::{Duration, LatencyModel, SimTime};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    ship_ms: u64,
    p_stale: f64,
    p_stale_ci95: f64,
    mean_t_ms: f64,
    p_gt_25: f64,
    p_gt_50: f64,
    p_gt_100: f64,
    p_gt_250: f64,
    seeds: u64,
}

fn main() {
    let obs = Obs::from_args();
    let workload = WorkloadSpec {
        keys: 10,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 10_000 },
        sessions: 6,
        ops_per_session: 150,
    };
    let ships = [10u64, 25, 50, 100, 200, 400];
    let mut grid = Grid::new();
    for &ship_ms in &ships {
        grid.push(
            format!("ship{ship_ms}ms"),
            Experiment::new(Scheme::PrimaryAsync {
                replicas: 3,
                ship_interval: Duration::from_millis(ship_ms),
            })
            .latency(LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(5),
            })
            .workload(workload.clone())
            .seed(13)
            .horizon(SimTime::from_secs(120)),
        );
    }
    let cells = obs.run_grid(grid);

    let mut rows = Vec::new();
    let mut stales: Vec<SeedStat> = Vec::new();
    for (&ship_ms, seeds) in ships.iter().zip(cells.chunks(obs.seeds as usize)) {
        let sts: Vec<_> = seeds.iter().map(|c| measure_staleness(&c.result.trace)).collect();
        let stat = |f: &dyn Fn(usize) -> f64| seed_stat(&(0..sts.len()).map(f).collect::<Vec<_>>());
        let p_stale = stat(&|i| sts[i].p_stale());
        rows.push(Row {
            ship_ms,
            p_stale: p_stale.mean,
            p_stale_ci95: p_stale.ci95,
            mean_t_ms: stat(&|i| {
                let t = &sts[i].t_staleness_ms;
                if t.is_empty() {
                    0.0
                } else {
                    t.iter().sum::<f64>() / t.len() as f64
                }
            })
            .mean,
            p_gt_25: stat(&|i| sts[i].p_staler_than(25.0)).mean,
            p_gt_50: stat(&|i| sts[i].p_staler_than(50.0)).mean,
            p_gt_100: stat(&|i| sts[i].p_staler_than(100.0)).mean,
            p_gt_250: stat(&|i| sts[i].p_staler_than(250.0)).mean,
            seeds: obs.seeds,
        });
        stales.push(p_stale);
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&stales)
        .map(|(x, stale)| {
            vec![
                x.ship_ms.to_string(),
                pm(*stale, pct),
                format!("{:.1}", x.mean_t_ms),
                pct(x.p_gt_25),
                pct(x.p_gt_50),
                pct(x.p_gt_100),
                pct(x.p_gt_250),
            ]
        })
        .collect();
    print_table(
        "E9: staleness vs replication lag (async primary-copy, backup reads)",
        &["lag ms", "P(stale)", "mean t ms", "P(t>25)", "P(t>50)", "P(t>100)", "P(t>250)"],
        &table,
    );
    obs.save("e9_bounded_staleness", &rows);
}
