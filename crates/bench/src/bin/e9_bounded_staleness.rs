//! E9 (Figure): read staleness vs. replication lag under asynchronous
//! primary-copy replication, and the bounded-staleness rejection rate.
//!
//! Backup reads against a primary that ships its log every `lag` ms. The
//! staleness CDF shifts right linearly with the shipping interval;
//! a bounded-staleness policy with bound B would reject exactly the reads
//! whose t-staleness exceeds B — reported for B ∈ {25, 50, 100, 250} ms.
//! Expected shape: P(stale) rises with lag; P(t > B) falls as B grows;
//! with lag << B nothing is rejected.

use bench::{pct, print_table, Obs};
use consistency::measure_staleness;
use rec_core::{Experiment, Scheme};
use serde::Serialize;
use simnet::{Duration, LatencyModel, SimTime};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    ship_ms: u64,
    p_stale: f64,
    mean_t_ms: f64,
    p_gt_25: f64,
    p_gt_50: f64,
    p_gt_100: f64,
    p_gt_250: f64,
}

fn main() {
    let obs = Obs::from_args();
    let workload = WorkloadSpec {
        keys: 10,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 10_000 },
        sessions: 6,
        ops_per_session: 150,
    };
    let mut rows = Vec::new();
    for &ship_ms in &[10u64, 25, 50, 100, 200, 400] {
        let res = Experiment::new(Scheme::PrimaryAsync {
            replicas: 3,
            ship_interval: Duration::from_millis(ship_ms),
        })
        .latency(LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(5),
        })
        .workload(workload.clone())
        .seed(13)
        .recorder(obs.recorder.clone())
        .horizon(SimTime::from_secs(120))
        .run();
        let st = measure_staleness(&res.trace);
        let mean_t = if st.t_staleness_ms.is_empty() {
            0.0
        } else {
            st.t_staleness_ms.iter().sum::<f64>() / st.t_staleness_ms.len() as f64
        };
        rows.push(Row {
            ship_ms,
            p_stale: st.p_stale(),
            mean_t_ms: mean_t,
            p_gt_25: st.p_staler_than(25.0),
            p_gt_50: st.p_staler_than(50.0),
            p_gt_100: st.p_staler_than(100.0),
            p_gt_250: st.p_staler_than(250.0),
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|x| {
            vec![
                x.ship_ms.to_string(),
                pct(x.p_stale),
                format!("{:.1}", x.mean_t_ms),
                pct(x.p_gt_25),
                pct(x.p_gt_50),
                pct(x.p_gt_100),
                pct(x.p_gt_250),
            ]
        })
        .collect();
    print_table(
        "E9: staleness vs replication lag (async primary-copy, backup reads)",
        &["lag ms", "P(stale)", "mean t ms", "P(t>25)", "P(t>50)", "P(t>100)", "P(t>250)"],
        &table,
    );
    obs.save("e9_bounded_staleness", &rows);
}
