//! E1 (Table): probability and degree of staleness under partial quorums
//! (the PBS result, Bailis et al. 2012).
//!
//! Sweep (N, R, W) on the Dynamo-style quorum protocol with a write-heavy
//! Zipfian workload and report P(stale read), mean k-staleness, and
//! P(t-staleness > 10 ms). Expected shape: `R+W>N` rows read fresh
//! (intersection); partial quorums get staler as R+W shrinks; read repair
//! pulls staleness down.

use bench::{f3, pct, print_table, Obs};
use consistency::measure_staleness;
use obs::Recorder;
use rec_core::scheme::ClientPlacement;
use rec_core::{Experiment, Scheme};
use serde::Serialize;
use simnet::{Duration, LatencyModel};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    n: usize,
    r: usize,
    w: usize,
    read_repair: bool,
    intersecting: bool,
    p_stale: f64,
    mean_k: f64,
    p_t_gt_10ms: f64,
    reads: u64,
}

fn run(n: usize, r: usize, w: usize, read_repair: bool, seed: u64, rec: &Recorder) -> Row {
    // Hot keys, tight read-after-write loops, and heavy-tailed latency:
    // the regime where partial-quorum staleness actually shows (PBS fits
    // production latency with log-normal tails for the same reason).
    let workload = WorkloadSpec {
        keys: 5,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 500 },
        sessions: 12,
        ops_per_session: 150,
    };
    let exp = Experiment::new(Scheme::Quorum {
        n,
        r,
        w,
        read_repair,
        placement: ClientPlacement::Random,
    })
    .latency(LatencyModel::LogNormal { median: Duration::from_millis(3), sigma: 1.2 })
    .workload(workload)
    .seed(seed)
    .recorder(rec.clone());
    let res = exp.run();
    let st = measure_staleness(&res.trace);
    Row {
        n,
        r,
        w,
        read_repair,
        intersecting: r + w > n,
        p_stale: st.p_stale(),
        mean_k: st.mean_k(),
        p_t_gt_10ms: st.p_staler_than(10.0),
        reads: st.fresh_reads + st.stale_reads,
    }
}

fn main() {
    let obs = Obs::from_args();
    let mut rows = Vec::new();
    for &(n, r, w) in &[
        (3, 1, 1),
        (3, 1, 2),
        (3, 2, 1),
        (3, 2, 2),
        (3, 1, 3),
        (3, 3, 1),
        (5, 1, 1),
        (5, 2, 2),
        (5, 3, 3),
    ] {
        rows.push(run(n, r, w, false, 42, &obs.recorder));
    }
    // Read-repair ablation on the weakest configuration.
    rows.push(run(3, 1, 1, true, 42, &obs.recorder));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|x| {
            vec![
                x.n.to_string(),
                x.r.to_string(),
                x.w.to_string(),
                if x.read_repair { "yes" } else { "no" }.into(),
                if x.intersecting { "yes" } else { "no" }.into(),
                pct(x.p_stale),
                f3(x.mean_k),
                pct(x.p_t_gt_10ms),
                x.reads.to_string(),
            ]
        })
        .collect();
    print_table(
        "E1: staleness of partial quorums (PBS)",
        &["N", "R", "W", "repair", "R+W>N", "P(stale)", "mean k", "P(t>10ms)", "reads"],
        &table,
    );
    obs.save("e1_quorum_staleness", &rows);
}
