//! E1 (Table): probability and degree of staleness under partial quorums
//! (the PBS result, Bailis et al. 2012).
//!
//! Sweep (N, R, W) on the Dynamo-style quorum protocol with a write-heavy
//! Zipfian workload and report P(stale read), mean k-staleness, and
//! P(t-staleness > 10 ms). Expected shape: `R+W>N` rows read fresh
//! (intersection); partial quorums get staler as R+W shrinks; read repair
//! pulls staleness down. With `--seeds N` each configuration runs at N
//! seeds in parallel and the table reports mean ± 95% CI.

use bench::{f3, pct, pm, print_table, seed_stat, Obs, SeedStat};
use consistency::measure_staleness;
use rec_core::scheme::ClientPlacement;
use rec_core::{Experiment, Grid, Scheme};
use serde::Serialize;
use simnet::{Duration, LatencyModel};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

#[derive(Serialize)]
struct Row {
    n: usize,
    r: usize,
    w: usize,
    read_repair: bool,
    intersecting: bool,
    p_stale: f64,
    p_stale_ci95: f64,
    mean_k: f64,
    p_t_gt_10ms: f64,
    reads: u64,
    seeds: u64,
}

fn experiment(n: usize, r: usize, w: usize, read_repair: bool) -> Experiment {
    // Hot keys, tight read-after-write loops, and heavy-tailed latency:
    // the regime where partial-quorum staleness actually shows (PBS fits
    // production latency with log-normal tails for the same reason).
    let workload = WorkloadSpec {
        keys: 5,
        distribution: KeyDistribution::Zipfian { theta: 0.9 },
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 500 },
        sessions: 12,
        ops_per_session: 150,
    };
    Experiment::new(Scheme::Quorum { n, r, w, read_repair, placement: ClientPlacement::Random })
        .latency(LatencyModel::LogNormal { median: Duration::from_millis(3), sigma: 1.2 })
        .workload(workload)
        .seed(42)
}

fn main() {
    let obs = Obs::from_args();
    // Read-repair ablation rides along on the weakest configuration.
    let configs: Vec<(usize, usize, usize, bool)> = vec![
        (3, 1, 1, false),
        (3, 1, 2, false),
        (3, 2, 1, false),
        (3, 2, 2, false),
        (3, 1, 3, false),
        (3, 3, 1, false),
        (5, 1, 1, false),
        (5, 2, 2, false),
        (5, 3, 3, false),
        (3, 1, 1, true),
    ];
    let mut grid = Grid::new();
    for &(n, r, w, rr) in &configs {
        grid.push(format!("N{n}R{r}W{w}{}", if rr { "+rr" } else { "" }), experiment(n, r, w, rr));
    }
    let cells = obs.run_grid(grid);

    let mut rows = Vec::new();
    let mut stales: Vec<SeedStat> = Vec::new();
    for (&(n, r, w, read_repair), seeds) in configs.iter().zip(cells.chunks(obs.seeds as usize)) {
        let reports: Vec<_> = seeds.iter().map(|c| measure_staleness(&c.result.trace)).collect();
        let p_stale = seed_stat(&reports.iter().map(|s| s.p_stale()).collect::<Vec<_>>());
        rows.push(Row {
            n,
            r,
            w,
            read_repair,
            intersecting: r + w > n,
            p_stale: p_stale.mean,
            p_stale_ci95: p_stale.ci95,
            mean_k: seed_stat(&reports.iter().map(|s| s.mean_k()).collect::<Vec<_>>()).mean,
            p_t_gt_10ms: seed_stat(
                &reports.iter().map(|s| s.p_staler_than(10.0)).collect::<Vec<_>>(),
            )
            .mean,
            reads: reports.iter().map(|s| s.fresh_reads + s.stale_reads).sum(),
            seeds: obs.seeds,
        });
        stales.push(p_stale);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(&stales)
        .map(|(x, st)| {
            vec![
                x.n.to_string(),
                x.r.to_string(),
                x.w.to_string(),
                if x.read_repair { "yes" } else { "no" }.into(),
                if x.intersecting { "yes" } else { "no" }.into(),
                pm(*st, pct),
                f3(x.mean_k),
                pct(x.p_t_gt_10ms),
                x.reads.to_string(),
            ]
        })
        .collect();
    print_table(
        "E1: staleness of partial quorums (PBS)",
        &["N", "R", "W", "repair", "R+W>N", "P(stale)", "mean k", "P(t>10ms)", "reads"],
        &table,
    );
    obs.save("e1_quorum_staleness", &rows);
}
