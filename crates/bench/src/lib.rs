//! Shared plumbing for the experiment harnesses (E1–E10).
//!
//! Each `src/bin/e*_*.rs` binary regenerates one table or figure from
//! `EXPERIMENTS.md`: it builds a grid of config variants, runs every
//! variant at `--seeds N` seeds on `--jobs N` workers, prints the
//! seed-aggregated rows to stdout, and drops a machine-readable copy
//! under `results/<name>.json` so the recorded numbers are diffable
//! across runs. Results are byte-identical for any `--jobs` value; see
//! `EXPERIMENTS.md` ("Parallel grid execution") for the contract.

use obs::{MetricsReport, Recorder};
use rec_core::grid::RecorderSpec;
use rec_core::{default_jobs, par_map, CellResult, Grid};
use serde::Serialize;
use std::cell::RefCell;
use std::fs;
use std::path::PathBuf;

/// Count heap traffic so `--profile` can attribute allocations to
/// handlers (see `docs/PROFILING.md`). The counting wrapper is two
/// thread-local adds over the system allocator — cheap enough to leave
/// installed unconditionally in every harness binary linking this crate.
#[global_allocator]
static ALLOC: obs::CountingAlloc = obs::CountingAlloc;

/// Observability and grid wiring shared by every experiment binary:
/// `--jobs N` / `--seeds N` / `--trace-out <path>` handling, the
/// parallel sweep drivers ([`Obs::run_grid`], [`Obs::sweep`]), and the
/// aggregate [`Recorder`] the per-cell metrics fold into.
///
/// Every grid cell runs with its **own** recorder (no shared lock on
/// the hot path); after the pool drains, cells are folded into
/// [`Obs::recorder`] in deterministic grid order via
/// [`Recorder::absorb`], so the `metrics` block of `results/<name>.json`
/// is independent of `--jobs`. With `--trace-out <path>`, each cell's
/// JSONL event log lands in `<path stem>.cellNNN.<ext>` and the
/// concatenation (grid order) in `<path>` itself. See `docs/METRICS.md`
/// for the field-by-field contract.
pub struct Obs {
    /// Aggregate recorder the per-cell metrics are folded into.
    pub recorder: Recorder,
    /// Worker count for grid execution (`--jobs N`, default: num CPUs).
    pub jobs: usize,
    /// Seeds per grid variant (`--seeds N`, default 1; seed `k` of a
    /// variant runs at `base_seed + k`, so `--seeds 1` reproduces the
    /// historical single-seed numbers exactly).
    pub seeds: u64,
    /// Drop the windowed `timeseries` buckets from the saved results
    /// (`--summary-only`): counters, histograms, and rows survive, so the
    /// checked-in `results/*.json` stay compact and diffable. Also drops
    /// the `profile` block when `--profile` is on.
    pub summary_only: bool,
    /// Profile every handler invocation (`--profile`): the saved results
    /// gain a `profile` block and a `results/<name>.folded` flamegraph
    /// stack file. See `docs/PROFILING.md`.
    pub profile: bool,
    trace_out: Option<PathBuf>,
    /// Per-cell JSONL chunks in grid order, for the concatenated export.
    trace_chunks: RefCell<Vec<String>>,
    /// Cells finished so far (names the next per-cell trace file).
    cells_done: RefCell<usize>,
}

impl Obs {
    /// Build from `std::env::args`: recognizes `--trace-out <path>`,
    /// `--jobs <n>`, `--seeds <n>` (and their `=` forms) plus the bare
    /// `--summary-only` and `--profile` flags; other arguments are
    /// ignored.
    pub fn from_args() -> Self {
        let mut trace_out = None;
        let mut jobs = default_jobs();
        let mut seeds = 1u64;
        let mut summary_only = false;
        let mut profile = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--summary-only" {
                summary_only = true;
                continue;
            }
            if a == "--profile" {
                profile = true;
                continue;
            }
            let take = |flag: &str, args: &mut dyn Iterator<Item = String>| -> Option<String> {
                if a == flag {
                    args.next()
                } else {
                    a.strip_prefix(&format!("{flag}=")).map(str::to_string)
                }
            };
            if let Some(p) = take("--trace-out", &mut args) {
                trace_out = Some(PathBuf::from(p));
            } else if let Some(n) = take("--jobs", &mut args) {
                jobs = n.parse().expect("--jobs expects a positive integer");
                assert!(jobs >= 1, "--jobs must be at least 1");
            } else if let Some(n) = take("--seeds", &mut args) {
                seeds = n.parse().expect("--seeds expects a positive integer");
                assert!(seeds >= 1, "--seeds must be at least 1");
            }
        }
        Obs {
            recorder: Recorder::enabled(),
            jobs,
            seeds,
            summary_only,
            profile,
            trace_out,
            trace_chunks: RefCell::new(Vec::new()),
            cells_done: RefCell::new(0),
        }
    }

    /// The recorder kind each grid cell runs with: full event log when
    /// `--trace-out` was given, counters-only otherwise.
    pub fn cell_recorder_spec(&self) -> RecorderSpec {
        if self.trace_out.is_some() {
            RecorderSpec::EventLog
        } else {
            RecorderSpec::Counters
        }
    }

    /// Run an experiment [`Grid`] at `--seeds` seeds per variant on
    /// `--jobs` workers. Results return in deterministic grid order
    /// (variant-major, then seed) — chunk by `self.seeds` to group a
    /// variant's seed column. Per-cell metrics are folded into
    /// [`Obs::recorder`] and per-cell traces staged for [`Obs::save`].
    pub fn run_grid(&self, grid: Grid) -> Vec<CellResult> {
        let cells =
            grid.seeds(self.seeds).profile(self.profile).run(self.jobs, self.cell_recorder_spec());
        for cell in &cells {
            self.finish_cell(&cell.recorder);
        }
        cells
    }

    /// Parallel seed sweep for harnesses that drive `Sim` directly
    /// instead of going through [`rec_core::Experiment`].
    ///
    /// Runs `run(&params[i], base_seed + k, &recorder)` for every
    /// variant `i` × seed `k` on `--jobs` workers, each call with its
    /// own fresh recorder, and returns the results grouped per variant
    /// (`result[i][k]`), independent of scheduling. Metrics and traces
    /// are folded exactly as in [`Obs::run_grid`].
    pub fn sweep<P, R, F>(&self, params: &[P], base_seed: u64, run: F) -> Vec<Vec<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, u64, &Recorder) -> R + Sync,
    {
        let spec = self.cell_recorder_spec();
        let flat: Vec<(usize, u64)> =
            (0..params.len()).flat_map(|p| (0..self.seeds).map(move |s| (p, s))).collect();
        // Copy the flag out so the worker closure doesn't capture the
        // whole `Obs` (its RefCell trace staging is not Sync).
        let profile = self.profile;
        let mut results: Vec<(Recorder, R)> = par_map(&flat, self.jobs, |_, &(p, s)| {
            let rec = spec.make();
            if profile {
                // Direct-Sim harness: samples key under the default
                // "sim" scheme label unless the run sets one itself.
                rec.enable_profiling();
            }
            let r = run(&params[p], base_seed + s, &rec);
            (rec, r)
        });
        let mut grouped: Vec<Vec<R>> = Vec::with_capacity(params.len());
        let mut drain = results.drain(..);
        for _ in 0..params.len() {
            let mut column = Vec::with_capacity(self.seeds as usize);
            for _ in 0..self.seeds {
                let (rec, r) = drain.next().expect("one result per grid cell");
                self.finish_cell(&rec);
                column.push(r);
            }
            grouped.push(column);
        }
        grouped
    }

    /// Fold one finished cell into the aggregate: absorb its metrics
    /// and, when tracing, write its JSONL and stage it for the
    /// concatenated export. Called in grid order only.
    fn finish_cell(&self, cell: &Recorder) {
        self.recorder.absorb(cell);
        let idx = {
            let mut done = self.cells_done.borrow_mut();
            *done += 1;
            *done - 1
        };
        if self.trace_out.is_some() {
            let jsonl = cell.export_jsonl();
            let path = self.per_cell_trace_path(idx);
            if let Err(e) = fs::write(&path, &jsonl) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
            self.trace_chunks.borrow_mut().push(jsonl);
        }
    }

    /// Where cell `idx`'s trace lands: `--trace-out a/b.jsonl` maps to
    /// `a/b.cell042.jsonl` for cell 42 (cells count in grid order).
    pub fn per_cell_trace_path(&self, idx: usize) -> PathBuf {
        let base = self.trace_out.clone().expect("tracing enabled");
        let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
        let name = match base.extension().and_then(|e| e.to_str()) {
            Some(ext) => format!("{stem}.cell{idx:03}.{ext}"),
            None => format!("{stem}.cell{idx:03}"),
        };
        base.with_file_name(name)
    }

    /// Save `results/<name>.json` as `{"rows": ..., "metrics": ...}` and
    /// write the JSONL event trace(s) if `--trace-out` was given (the
    /// concatenation of all per-cell logs, in grid order). With
    /// `--profile`, a flamegraph stack file lands beside the JSON as
    /// `results/<name>.folded` (call-count weighted, so the checked-in
    /// file is deterministic; see `docs/PROFILING.md`).
    pub fn save<T: Serialize>(&self, name: &str, rows: &T) {
        let report = self.recorder.report();
        if let Some(profile) = &report.profile {
            let folded = profile.to_folded(obs::FoldWeight::Calls);
            let path = results_dir().join(format!("{name}.folded"));
            match fs::write(&path, folded) {
                Ok(()) => println!("[saved {}]", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
        let mut metrics = report.to_value();
        if self.summary_only {
            strip_timeseries(&mut metrics);
            strip_profile(&mut metrics);
        }
        let doc = serde::Value::Object(vec![
            ("rows".to_string(), rows.to_value()),
            ("metrics".to_string(), metrics),
        ]);
        save_json(name, &doc);
        if let Some(path) = &self.trace_out {
            let cells = self.trace_chunks.borrow();
            match fs::write(path, cells.concat()) {
                Ok(()) => {
                    println!("[trace saved to {} (+{} cell files)]", path.display(), cells.len())
                }
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
    }
}

/// Mean and a 95% confidence half-width over per-seed measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SeedStat {
    /// Sample mean.
    pub mean: f64,
    /// 95% CI half-width (normal approximation, `1.96·s/√n`; 0 when
    /// fewer than two samples).
    pub ci95: f64,
    /// Number of seeds.
    pub n: u64,
}

/// Aggregate per-seed values into a [`SeedStat`]. Summation runs in
/// input (seed) order, so the result is bitwise deterministic.
pub fn seed_stat(values: &[f64]) -> SeedStat {
    let n = values.len();
    if n == 0 {
        return SeedStat { mean: 0.0, ci95: 0.0, n: 0 };
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let ci95 = if n < 2 {
        0.0
    } else {
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
        1.96 * (var / n as f64).sqrt()
    };
    SeedStat { mean, ci95, n: n as u64 }
}

/// Mean of per-seed values (seed-order summation, deterministic).
pub fn seed_mean(values: &[f64]) -> f64 {
    seed_stat(values).mean
}

/// Format `mean ± ci95` for tables; the `±` part only appears with
/// multiple seeds, so single-seed tables look exactly as before.
pub fn pm(stat: SeedStat, fmt: impl Fn(f64) -> String) -> String {
    if stat.n > 1 {
        format!("{}±{}", fmt(stat.mean), fmt(stat.ci95))
    } else {
        fmt(stat.mean)
    }
}

/// Remove the `timeseries` member from a serialized metrics object (the
/// `--summary-only` export shape). Leaves every other key untouched; a
/// non-object value passes through unchanged.
pub fn strip_timeseries(metrics: &mut serde::Value) {
    if let serde::Value::Object(members) = metrics {
        members.retain(|(k, _)| k != "timeseries");
    }
}

/// Remove the `profile` member from a serialized metrics object
/// (`--summary-only` drops the per-handler detail; the
/// `handler_invocations` / `alloc_bytes` counters survive).
pub fn strip_profile(metrics: &mut serde::Value) {
    if let serde::Value::Object(members) = metrics {
        members.retain(|(k, _)| k != "profile");
    }
}

/// Save a results document of the form `{"rows": rows, "metrics":
/// metrics}` — the shape every `results/*.json` follows.
pub fn save_json_with_metrics<T: Serialize>(name: &str, rows: &T, metrics: &MetricsReport) {
    let doc = serde::Value::Object(vec![
        ("rows".to_string(), rows.to_value()),
        ("metrics".to_string(), metrics.to_value()),
    ]);
    save_json(name, &doc);
}

/// Print a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Where results land (`results/` at the workspace root, or the current
/// directory as a fallback when run from elsewhere).
pub fn results_dir() -> PathBuf {
    // The harnesses are run from the workspace root via `cargo run`; walk
    // up from the manifest dir so `cargo run -p bench` also works.
    let candidates = [
        PathBuf::from("results"),
        PathBuf::from("../../results"),
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    ];
    for c in &candidates {
        if c.is_dir() {
            return c.clone();
        }
    }
    let fallback = candidates[2].clone();
    let _ = fs::create_dir_all(&fallback);
    fallback
}

/// Save a serializable result set as JSON.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn seed_stat_mean_and_ci() {
        let empty = seed_stat(&[]);
        assert_eq!((empty.mean, empty.ci95, empty.n), (0.0, 0.0, 0));
        let one = seed_stat(&[4.0]);
        assert_eq!((one.mean, one.ci95, one.n), (4.0, 0.0, 1));
        let s = seed_stat(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // s² = 5/3, ci = 1.96·√(5/3/4) ≈ 1.2655
        assert!((s.ci95 - 1.2655).abs() < 1e-3, "ci {}", s.ci95);
        assert_eq!(pm(s, f1), "2.5±1.3");
        assert_eq!(pm(one, f1), "4.0");
    }

    #[test]
    fn strip_timeseries_removes_only_that_key() {
        let mut v = serde::Value::Object(vec![
            ("counters".to_string(), serde::Value::Object(vec![])),
            ("timeseries".to_string(), serde::Value::Object(vec![])),
            ("latencies".to_string(), serde::Value::Object(vec![])),
        ]);
        strip_timeseries(&mut v);
        let serde::Value::Object(members) = &v else { panic!("still an object") };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["counters", "latencies"]);
    }

    #[test]
    fn results_dir_exists_or_is_created() {
        let d = results_dir();
        assert!(d.is_dir() || fs::create_dir_all(&d).is_ok());
    }
}
