//! Shared plumbing for the experiment harnesses (E1–E10).
//!
//! Each `src/bin/e*_*.rs` binary regenerates one table or figure from
//! `EXPERIMENTS.md`: it sweeps its parameters, prints the rows to stdout,
//! and drops a machine-readable copy under `results/<name>.json` so the
//! recorded numbers are diffable across runs.

use obs::{MetricsReport, Recorder};
use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Observability wiring shared by every experiment binary: an enabled
/// [`Recorder`] threaded into each simulation run, plus `--trace-out
/// <path>` handling (export the structured event log as JSONL).
///
/// The aggregated counters/histograms across the binary's whole sweep
/// land in the `metrics` section of `results/<name>.json`; the JSONL
/// trace is only collected (and only costs memory) when `--trace-out`
/// is given. See `docs/METRICS.md` for the field-by-field contract.
pub struct Obs {
    /// The recorder to thread into each `Experiment` / `SimConfig`.
    pub recorder: Recorder,
    trace_out: Option<PathBuf>,
}

impl Obs {
    /// Build from `std::env::args`: recognizes `--trace-out <path>` and
    /// `--trace-out=<path>`; other arguments are ignored.
    pub fn from_args() -> Self {
        let mut trace_out = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--trace-out" {
                trace_out = args.next().map(PathBuf::from);
            } else if let Some(p) = a.strip_prefix("--trace-out=") {
                trace_out = Some(PathBuf::from(p));
            }
        }
        let recorder =
            if trace_out.is_some() { Recorder::with_event_log() } else { Recorder::enabled() };
        Obs { recorder, trace_out }
    }

    /// Save `results/<name>.json` as `{"rows": ..., "metrics": ...}` and
    /// write the JSONL event trace if `--trace-out` was given.
    pub fn save<T: Serialize>(&self, name: &str, rows: &T) {
        save_json_with_metrics(name, rows, &self.recorder.report());
        if let Some(path) = &self.trace_out {
            match self.recorder.write_jsonl(path) {
                Ok(()) => println!("[trace saved to {}]", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
    }
}

/// Save a results document of the form `{"rows": rows, "metrics":
/// metrics}` — the shape every `results/*.json` follows.
pub fn save_json_with_metrics<T: Serialize>(name: &str, rows: &T, metrics: &MetricsReport) {
    let doc = serde::Value::Object(vec![
        ("rows".to_string(), rows.to_value()),
        ("metrics".to_string(), metrics.to_value()),
    ]);
    save_json(name, &doc);
}

/// Print a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Where results land (`results/` at the workspace root, or the current
/// directory as a fallback when run from elsewhere).
pub fn results_dir() -> PathBuf {
    // The harnesses are run from the workspace root via `cargo run`; walk
    // up from the manifest dir so `cargo run -p bench` also works.
    let candidates = [
        PathBuf::from("results"),
        PathBuf::from("../../results"),
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    ];
    for c in &candidates {
        if c.is_dir() {
            return c.clone();
        }
    }
    let fallback = candidates[2].clone();
    let _ = fs::create_dir_all(&fallback);
    fallback
}

/// Save a serializable result set as JSON.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn results_dir_exists_or_is_created() {
        let d = results_dir();
        assert!(d.is_dir() || fs::create_dir_all(&d).is_ok());
    }
}
