//! Per-entity-group state: versioned store, commit log, OCC validation,
//! and write locks for two-phase commit.

use clocks::LamportTimestamp;
use kvstore::{Key, MvStore, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies an entity group.
pub type GroupId = u64;

/// Identifies a transaction (globally unique: `(session << 32) | seq`).
pub type TxnId = u64;

/// A committed transaction's footprint, kept for OCC validation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct CommittedFootprint {
    pos: u64,
    write_set: Vec<Key>,
}

/// Why validation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Conflict {
    /// A transaction committed after the snapshot wrote a key this
    /// transaction read or writes.
    OccConflict,
    /// A key is write-locked by an in-flight prepared transaction.
    Locked,
}

/// One entity group's state.
#[derive(Debug, Clone, Default)]
pub struct Group {
    store: MvStore,
    /// Position of the last committed transaction (0 = none).
    commit_pos: u64,
    /// Footprints of committed transactions (pruned below the horizon).
    history: Vec<CommittedFootprint>,
    /// Write locks: key → holding txn.
    locks: BTreeMap<Key, TxnId>,
    /// Prepared (locked, validated) transactions awaiting a decision.
    prepared: BTreeMap<TxnId, PreparedTxn>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PreparedTxn {
    writes: Vec<(Key, u64)>,
    /// When the prepare happened (µs) — for lock timeouts.
    prepared_at: u64,
}

impl Group {
    /// An empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current commit position (the snapshot a read phase returns).
    pub fn commit_pos(&self) -> u64 {
        self.commit_pos
    }

    /// Read keys at the current position.
    pub fn read(&self, keys: &[Key]) -> Vec<(Key, Option<u64>)> {
        keys.iter().map(|&k| (k, self.store.get(k).and_then(|v| v.value.as_u64()))).collect()
    }

    /// Raw store access (checker support).
    pub fn store(&self) -> &MvStore {
        &self.store
    }

    /// OCC validation: would a transaction that read `read_keys` at
    /// `snapshot` and writes `write_keys` commit cleanly now?
    pub fn validate(
        &self,
        snapshot: u64,
        read_keys: &[Key],
        write_keys: &[Key],
    ) -> Result<(), Conflict> {
        // Lock conflicts: anybody holding a write lock on my footprint.
        if read_keys.iter().chain(write_keys.iter()).any(|k| self.locks.contains_key(k)) {
            return Err(Conflict::Locked);
        }
        // OCC: committed writers after my snapshot intersecting my
        // footprint.
        for fp in self.history.iter().filter(|fp| fp.pos > snapshot) {
            if fp.write_set.iter().any(|k| read_keys.contains(k) || write_keys.contains(k)) {
                return Err(Conflict::OccConflict);
            }
        }
        Ok(())
    }

    /// Single-group fast path: validate and commit atomically.
    /// Returns the new commit position on success.
    pub fn commit_one(
        &mut self,
        snapshot: u64,
        read_keys: &[Key],
        writes: &[(Key, u64)],
        now_us: u64,
    ) -> Result<u64, Conflict> {
        let write_keys: Vec<Key> = writes.iter().map(|&(k, _)| k).collect();
        self.validate(snapshot, read_keys, &write_keys)?;
        Ok(self.apply(writes, now_us))
    }

    /// 2PC phase 1: validate, then lock the write set. The transaction
    /// stays prepared until [`Group::decide`].
    pub fn prepare(
        &mut self,
        txn: TxnId,
        snapshot: u64,
        read_keys: &[Key],
        writes: &[(Key, u64)],
        now_us: u64,
    ) -> Result<(), Conflict> {
        let write_keys: Vec<Key> = writes.iter().map(|&(k, _)| k).collect();
        self.validate(snapshot, read_keys, &write_keys)?;
        for k in &write_keys {
            self.locks.insert(*k, txn);
        }
        self.prepared.insert(txn, PreparedTxn { writes: writes.to_vec(), prepared_at: now_us });
        Ok(())
    }

    /// 2PC phase 2: apply or drop a prepared transaction, releasing its
    /// locks. Unknown transaction ids are ignored (duplicate decisions).
    /// Returns the commit position if the transaction applied.
    pub fn decide(&mut self, txn: TxnId, commit: bool, now_us: u64) -> Option<u64> {
        let prepared = self.prepared.remove(&txn)?;
        self.locks.retain(|_, holder| *holder != txn);
        if commit {
            Some(self.apply(&prepared.writes, now_us))
        } else {
            None
        }
    }

    /// Release locks of transactions prepared before `horizon_us` (the 2PC
    /// blocking mitigation), aborting them. Returns aborted txn ids.
    pub fn expire_locks(&mut self, horizon_us: u64) -> Vec<TxnId> {
        let expired: Vec<TxnId> = self
            .prepared
            .iter()
            .filter(|(_, p)| p.prepared_at < horizon_us)
            .map(|(&t, _)| t)
            .collect();
        for t in &expired {
            self.decide(*t, false, horizon_us);
        }
        expired
    }

    /// Number of currently held locks.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Number of prepared (in-doubt) transactions.
    pub fn prepared_count(&self) -> usize {
        self.prepared.len()
    }

    fn apply(&mut self, writes: &[(Key, u64)], now_us: u64) -> u64 {
        self.commit_pos += 1;
        let pos = self.commit_pos;
        for &(k, v) in writes {
            self.store.put(k, Value::from_u64(v), LamportTimestamp::new(pos, k), now_us);
        }
        self.history
            .push(CommittedFootprint { pos, write_set: writes.iter().map(|&(k, _)| k).collect() });
        // Prune footprints nobody can conflict with anymore (snapshots
        // older than 1000 positions are assumed dead — far beyond any
        // in-flight transaction in the experiments).
        if self.history.len() > 1_200 {
            let horizon = pos.saturating_sub(1_000);
            self.history.retain(|fp| fp.pos > horizon);
        }
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_commits() {
        let mut g = Group::new();
        assert_eq!(g.commit_pos(), 0);
        g.commit_one(0, &[], &[(1, 100)], 0).unwrap();
        assert_eq!(g.commit_pos(), 1);
        assert_eq!(g.read(&[1]), vec![(1, Some(100))]);
        assert_eq!(g.read(&[2]), vec![(2, None)]);
    }

    #[test]
    fn occ_aborts_stale_snapshot_conflict() {
        let mut g = Group::new();
        let snap = g.commit_pos(); // 0
                                   // Another txn commits a write to key 1 after our snapshot.
        g.commit_one(0, &[], &[(1, 100)], 0).unwrap();
        // We read key 1 at snapshot 0 and try to write key 2: read-write
        // conflict on key 1 → abort.
        let err = g.commit_one(snap, &[1], &[(2, 200)], 0).unwrap_err();
        assert_eq!(err, Conflict::OccConflict);
        // A disjoint transaction at the same stale snapshot commits fine.
        g.commit_one(snap, &[3], &[(4, 400)], 0).unwrap();
    }

    #[test]
    fn write_write_conflict_detected() {
        let mut g = Group::new();
        let snap = g.commit_pos();
        g.commit_one(snap, &[], &[(1, 100)], 0).unwrap();
        let err = g.commit_one(snap, &[], &[(1, 200)], 0).unwrap_err();
        assert_eq!(err, Conflict::OccConflict);
    }

    #[test]
    fn fresh_snapshot_commits() {
        let mut g = Group::new();
        g.commit_one(0, &[], &[(1, 100)], 0).unwrap();
        let snap = g.commit_pos();
        g.commit_one(snap, &[1], &[(1, 200)], 0).unwrap();
        assert_eq!(g.read(&[1]), vec![(1, Some(200))]);
    }

    #[test]
    fn prepare_locks_block_conflicting_commits() {
        let mut g = Group::new();
        let snap = g.commit_pos();
        g.prepare(77, snap, &[], &[(1, 100)], 0).unwrap();
        assert_eq!(g.lock_count(), 1);
        // A single-group commit touching key 1 hits the lock.
        assert_eq!(g.commit_one(snap, &[1], &[], 0), Err(Conflict::Locked));
        assert_eq!(g.commit_one(snap, &[], &[(1, 5)], 0), Err(Conflict::Locked));
        // Disjoint keys proceed.
        g.commit_one(snap, &[], &[(2, 5)], 0).unwrap();
    }

    #[test]
    fn decide_commit_applies_and_unlocks() {
        let mut g = Group::new();
        g.prepare(77, 0, &[], &[(1, 100)], 0).unwrap();
        let pos = g.decide(77, true, 10).expect("applied");
        assert_eq!(pos, 1);
        assert_eq!(g.lock_count(), 0);
        assert_eq!(g.read(&[1]), vec![(1, Some(100))]);
        // Duplicate decision is a no-op.
        assert_eq!(g.decide(77, true, 10), None);
    }

    #[test]
    fn decide_abort_drops_and_unlocks() {
        let mut g = Group::new();
        g.prepare(77, 0, &[], &[(1, 100)], 0).unwrap();
        assert_eq!(g.decide(77, false, 10), None);
        assert_eq!(g.lock_count(), 0);
        assert_eq!(g.read(&[1]), vec![(1, None)]);
        assert_eq!(g.commit_pos(), 0);
    }

    #[test]
    fn lock_expiry_aborts_in_doubt_txns() {
        let mut g = Group::new();
        g.prepare(77, 0, &[], &[(1, 100)], 1_000).unwrap();
        g.prepare(88, 0, &[], &[(2, 200)], 5_000).unwrap();
        let expired = g.expire_locks(3_000);
        assert_eq!(expired, vec![77]);
        assert_eq!(g.prepared_count(), 1);
        assert_eq!(g.lock_count(), 1);
        assert_eq!(g.read(&[1]), vec![(1, None)]);
    }

    #[test]
    fn prepare_conflicts_with_prepare() {
        let mut g = Group::new();
        g.prepare(77, 0, &[], &[(1, 100)], 0).unwrap();
        assert_eq!(g.prepare(88, 0, &[], &[(1, 200)], 0), Err(Conflict::Locked));
        assert_eq!(g.prepared_count(), 1);
    }
}
