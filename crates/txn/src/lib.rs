//! # txn — transactions over replicated, partitioned storage
//!
//! The tutorial's last act: how do you get transactions back once you have
//! given up global strong consistency? The Megastore/ElasTraS answer is
//! **entity groups**: partition keys into groups, give each group a serial
//! commit log, and run optimistic concurrency *within* a group — cheap,
//! single-home commits. Cross-group transactions pay for coordination:
//! two-phase commit, optionally with the commit decision replicated to a
//! registrar quorum first (a simplified Gray & Lamport *Paxos Commit*, so
//! a crashed coordinator cannot leave participants blocked forever).
//!
//! Pieces:
//! * [`group`] — per-group state: versioned store, commit log positions,
//!   OCC validation, write locks with timeout.
//! * [`manager`] — the `GroupNode` actor hosting many groups (home
//!   assignment: `group % nodes`), serving reads, single-group commits,
//!   and 2PC participant duties; plus the registrar role.
//! * [`client`] — a scripted transaction client: read phase across groups,
//!   then single-group fast commit or 2PC, recording commit/abort/latency
//!   into a [`client::TxnStats`].
//!
//! Experiment E8 sweeps contention and group spans to regenerate the
//! classic abort-rate and commit-latency curves.

pub mod client;
pub mod group;
pub mod manager;

pub use client::{TxnClient, TxnSpec, TxnStats};
pub use group::{Group, GroupId, TxnId};
pub use manager::{GroupNode, Msg, TxnConfig};
