//! A scripted transaction client: read phase, then single-group fast
//! commit or two-phase commit (optionally registrar-backed).

use crate::group::{GroupId, TxnId};
use crate::manager::{Msg, TxnConfig};
use kvstore::Key;
use obs::Counter;
use serde::{Deserialize, Serialize};
use simnet::{Actor, Context, Duration, NodeId, SimTime, SpanId, SpanStatus};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// One group's footprint in a transaction: `(group, read keys, writes)`.
pub type TxnPart = (GroupId, Vec<Key>, Vec<(Key, u64)>);

/// One scripted transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// Gap before starting, µs (after the previous transaction finished).
    pub gap_us: u64,
    /// Per-group footprint.
    pub parts: Vec<TxnPart>,
}

/// Aggregated results for one client (shared with the harness).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TxnStats {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions (validation/lock conflicts).
    pub aborted: u64,
    /// Transactions that timed out client-side.
    pub timed_out: u64,
    /// Commit latencies (ms) of committed transactions.
    pub commit_latency_ms: Vec<f64>,
    /// Commit latencies (ms) of aborted transactions (time wasted).
    pub abort_latency_ms: Vec<f64>,
}

impl TxnStats {
    /// Abort rate over finished transactions.
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted + self.timed_out;
        if total == 0 {
            0.0
        } else {
            (self.aborted + self.timed_out) as f64 / total as f64
        }
    }

    /// Mean commit latency (ms) over committed transactions.
    pub fn mean_commit_ms(&self) -> f64 {
        if self.commit_latency_ms.is_empty() {
            0.0
        } else {
            self.commit_latency_ms.iter().sum::<f64>() / self.commit_latency_ms.len() as f64
        }
    }
}

/// Shared stats handle.
pub type SharedTxnStats = Rc<RefCell<TxnStats>>;

/// Create an empty shared stats handle.
pub fn shared_stats() -> SharedTxnStats {
    Rc::new(RefCell::new(TxnStats::default()))
}

#[derive(Debug)]
enum Phase {
    /// Waiting for `ReadResp`s; collected snapshots/values so far.
    Reading { snapshots: BTreeMap<GroupId, u64>, outstanding: usize },
    /// Single-group commit sent.
    FastCommit,
    /// 2PC: waiting for votes.
    Voting { yes: BTreeSet<GroupId>, no: bool, outstanding: usize },
    /// Registrar round (decision being recorded).
    Registering { commit: bool, acks: usize, needed: usize },
    /// Decisions sent; waiting for acks.
    Deciding { commit: bool, outstanding: usize },
}

#[derive(Debug)]
struct InFlight {
    txn: TxnId,
    spec_idx: usize,
    started: SimTime,
    phase: Phase,
    timeout_timer: u64,
    /// Root span of the transaction's trace, closed in `finish`.
    span: SpanId,
}

const TAG_NEXT: u64 = 1;
const TAG_TIMEOUT_BASE: u64 = 1_000;

/// The transaction client actor.
pub struct TxnClient {
    session: u64,
    cfg: TxnConfig,
    script: Vec<TxnSpec>,
    next_idx: usize,
    seq: u64,
    stats: SharedTxnStats,
    inflight: Option<InFlight>,
    timeout: Duration,
    /// Registrar quorum size; 0 = plain 2PC (no registrar round).
    registrar_quorum: usize,
}

impl TxnClient {
    /// Create a client. `registrar_quorum` of 0 runs plain 2PC; a positive
    /// value records the decision at that many nodes before phase 2
    /// (Paxos-Commit-lite; use a majority of `cfg.nodes`).
    pub fn new(
        session: u64,
        cfg: TxnConfig,
        script: Vec<TxnSpec>,
        stats: SharedTxnStats,
        registrar_quorum: usize,
    ) -> Self {
        assert!(registrar_quorum <= cfg.nodes, "registrar quorum exceeds node count");
        TxnClient {
            session,
            cfg,
            script,
            next_idx: 0,
            seq: 0,
            stats,
            inflight: None,
            timeout: Duration::from_secs(2),
            registrar_quorum,
        }
    }

    fn schedule_next<M>(&mut self, ctx: &mut Context<M>) {
        if let Some(spec) = self.script.get(self.next_idx) {
            ctx.set_timer(Duration::from_micros(spec.gap_us), TAG_NEXT);
        }
    }

    fn start_txn(&mut self, ctx: &mut Context<Msg>) {
        let Some(spec) = self.script.get(self.next_idx).cloned() else {
            return;
        };
        self.next_idx += 1;
        self.seq += 1;
        let txn: TxnId = (self.session << 32) | self.seq;
        // Root of the transaction's trace: opened before the timeout timer
        // and the read fan-out so both carry the new context.
        let span = ctx.start_trace("txn");
        let timer = ctx.set_timer(self.timeout, TAG_TIMEOUT_BASE + self.seq);
        let outstanding = spec.parts.len();
        self.inflight = Some(InFlight {
            txn,
            spec_idx: self.next_idx - 1,
            started: ctx.now(),
            phase: Phase::Reading { snapshots: BTreeMap::new(), outstanding },
            timeout_timer: timer,
            span,
        });
        for (group, read_keys, _) in &spec.parts {
            ctx.send(
                self.cfg.home(*group),
                Msg::Read { txn, group: *group, keys: read_keys.clone() },
            );
        }
    }

    fn finish(&mut self, ctx: &mut Context<Msg>, committed: bool, timed_out: bool) {
        let Some(f) = self.inflight.take() else { return };
        ctx.cancel_timer(f.timeout_timer);
        ctx.span_close(f.span, if committed { SpanStatus::Ok } else { SpanStatus::Failed });
        let latency = ctx.now().saturating_since(f.started).as_millis_f64();
        let node = ctx.self_id().0 as u64;
        let counter = if committed { Counter::TxnCommits } else { Counter::TxnAborts };
        ctx.recorder().count_node(node, counter, 1);
        let mut stats = self.stats.borrow_mut();
        if committed {
            stats.committed += 1;
            stats.commit_latency_ms.push(latency);
        } else if timed_out {
            stats.timed_out += 1;
        } else {
            stats.aborted += 1;
            stats.abort_latency_ms.push(latency);
        }
        drop(stats);
        self.schedule_next(ctx);
    }

    fn spec(&self, idx: usize) -> &TxnSpec {
        &self.script[idx]
    }

    fn enter_commit_phase(&mut self, ctx: &mut Context<Msg>) {
        let Some(f) = self.inflight.as_mut() else { return };
        let Phase::Reading { snapshots, .. } = &f.phase else { return };
        let snapshots = snapshots.clone();
        let txn = f.txn;
        let spec_idx = f.spec_idx;
        let parts = self.spec(spec_idx).parts.clone();
        if parts.len() == 1 {
            let (group, read_keys, writes) = parts.into_iter().next().expect("one part");
            let snapshot = snapshots[&group];
            if let Some(f) = self.inflight.as_mut() {
                f.phase = Phase::FastCommit;
            }
            ctx.send(
                self.cfg.home(group),
                Msg::CommitOne { txn, group, snapshot, read_keys, writes },
            );
        } else {
            let outstanding = parts.len();
            if let Some(f) = self.inflight.as_mut() {
                f.phase = Phase::Voting { yes: BTreeSet::new(), no: false, outstanding };
            }
            for (group, read_keys, writes) in parts {
                let snapshot = snapshots[&group];
                ctx.send(
                    self.cfg.home(group),
                    Msg::Prepare { txn, group, snapshot, read_keys, writes },
                );
            }
        }
    }

    fn conclude_votes(&mut self, ctx: &mut Context<Msg>) {
        let rq = self.registrar_quorum;
        // Scoped borrow: extract what the transition needs, then release.
        type VoteInfo = (TxnId, usize, bool, Vec<GroupId>);
        let info: Option<VoteInfo> = match self.inflight.as_ref() {
            Some(f) => match &f.phase {
                Phase::Voting { yes, no, outstanding } if *outstanding == 0 => {
                    Some((f.txn, f.spec_idx, !*no, yes.iter().copied().collect::<Vec<_>>()))
                }
                _ => None,
            },
            None => None,
        };
        let Some((txn, spec_idx, commit, yes_groups)) = info else { return };
        if commit && rq > 0 {
            if let Some(f) = self.inflight.as_mut() {
                f.phase = Phase::Registering { commit, acks: 0, needed: rq };
            }
            for node in 0..rq as u32 {
                ctx.send(NodeId(node), Msg::Register { txn, commit });
            }
        } else {
            // Decide immediately: commit to all groups, or abort to the
            // yes-voters (no-voters never locked anything).
            let groups: Vec<GroupId> = if commit {
                self.spec(spec_idx).parts.iter().map(|(g, _, _)| *g).collect()
            } else {
                yes_groups
            };
            if groups.is_empty() {
                self.finish(ctx, commit, false);
                return;
            }
            if let Some(f) = self.inflight.as_mut() {
                f.phase = Phase::Deciding { commit, outstanding: groups.len() };
            }
            for g in groups {
                ctx.send(self.cfg.home(g), Msg::Decide { txn, group: g, commit });
            }
        }
    }
}

impl Actor<Msg> for TxnClient {
    fn role(&self) -> &'static str {
        "client"
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        if tag == TAG_NEXT {
            self.start_txn(ctx);
        } else if tag >= TAG_TIMEOUT_BASE {
            let seq = tag - TAG_TIMEOUT_BASE;
            if self.inflight.as_ref().map(|f| f.txn & 0xffff_ffff) == Some(seq) {
                self.finish(ctx, false, true);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
        let Some(txn) = self.inflight.as_ref().map(|f| f.txn) else { return };
        match msg {
            Msg::ReadResp { txn: t, group, snapshot, .. } if t == txn => {
                let ready = {
                    let f = self.inflight.as_mut().expect("checked above");
                    if let Phase::Reading { snapshots, outstanding } = &mut f.phase {
                        if snapshots.insert(group, snapshot).is_none() {
                            *outstanding -= 1;
                        }
                        *outstanding == 0
                    } else {
                        false
                    }
                };
                if ready {
                    self.enter_commit_phase(ctx);
                }
            }
            Msg::Outcome { txn: t, committed } if t == txn => {
                let fast =
                    matches!(self.inflight.as_ref().map(|f| &f.phase), Some(Phase::FastCommit));
                if fast {
                    self.finish(ctx, committed, false);
                }
            }
            Msg::Vote { txn: t, group, yes } if t == txn => {
                let voted = {
                    let f = self.inflight.as_mut().expect("checked above");
                    if let Phase::Voting { yes: ys, no, outstanding } = &mut f.phase {
                        if yes {
                            ys.insert(group);
                        } else {
                            *no = true;
                        }
                        *outstanding -= 1;
                        true
                    } else {
                        false
                    }
                };
                if voted {
                    self.conclude_votes(ctx);
                }
            }
            Msg::RegisterAck { txn: t } if t == txn => {
                let proceed = {
                    let f = self.inflight.as_mut().expect("checked above");
                    if let Phase::Registering { commit, acks, needed } = &mut f.phase {
                        *acks += 1;
                        (acks >= needed).then_some((*commit, f.spec_idx))
                    } else {
                        None
                    }
                };
                if let Some((commit, spec_idx)) = proceed {
                    let groups: Vec<GroupId> =
                        self.script[spec_idx].parts.iter().map(|(g, _, _)| *g).collect();
                    if let Some(f) = self.inflight.as_mut() {
                        f.phase = Phase::Deciding { commit, outstanding: groups.len() };
                    }
                    for g in groups {
                        ctx.send(self.cfg.home(g), Msg::Decide { txn, group: g, commit });
                    }
                }
            }
            Msg::DecideAck { txn: t, .. } if t == txn => {
                let done = {
                    let f = self.inflight.as_mut().expect("checked above");
                    if let Phase::Deciding { commit, outstanding } = &mut f.phase {
                        *outstanding -= 1;
                        (*outstanding == 0).then_some(*commit)
                    } else {
                        None
                    }
                };
                if let Some(commit) = done {
                    self.finish(ctx, commit, false);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::GroupNode;
    use simnet::{LatencyModel, Sim, SimConfig};

    fn build(nodes: usize, clients: Vec<TxnClient>, seed: u64) -> Sim<Msg> {
        let cfg = TxnConfig::new(nodes);
        let mut sim = Sim::new(
            SimConfig::default()
                .seed(seed)
                .latency(LatencyModel::Constant(Duration::from_millis(3))),
        );
        for _ in 0..nodes {
            sim.add_node(Box::new(GroupNode::new(cfg)));
        }
        for c in clients {
            sim.add_node(Box::new(c));
        }
        sim
    }

    fn spec(gap_us: u64, parts: Vec<TxnPart>) -> TxnSpec {
        TxnSpec { gap_us, parts }
    }

    #[test]
    fn single_group_txn_commits() {
        let stats = shared_stats();
        let cfg = TxnConfig::new(2);
        let c = TxnClient::new(
            1,
            cfg,
            vec![
                spec(1_000, vec![(0, vec![], vec![(1, 10)])]),
                spec(1_000, vec![(0, vec![1], vec![(1, 20)])]),
            ],
            stats.clone(),
            0,
        );
        let mut sim = build(2, vec![c], 1);
        sim.run_until(SimTime::from_secs(2));
        let s = stats.borrow();
        assert_eq!(s.committed, 2);
        assert_eq!(s.aborted, 0);
        assert!(s.mean_commit_ms() > 0.0);
    }

    #[test]
    fn cross_group_txn_commits_via_2pc() {
        let stats = shared_stats();
        let cfg = TxnConfig::new(3);
        let c = TxnClient::new(
            1,
            cfg,
            vec![spec(1_000, vec![(0, vec![], vec![(1, 10)]), (1, vec![], vec![(100, 20)])])],
            stats.clone(),
            0,
        );
        let mut sim = build(3, vec![c], 2);
        sim.run_until(SimTime::from_secs(2));
        let s = stats.borrow();
        assert_eq!(s.committed, 1);
        assert_eq!(s.abort_rate(), 0.0);
    }

    #[test]
    fn registrar_round_adds_latency_but_commits() {
        let run = |registrars: usize, seed: u64| {
            let stats = shared_stats();
            let cfg = TxnConfig::new(3);
            let c = TxnClient::new(
                1,
                cfg,
                vec![spec(1_000, vec![(0, vec![], vec![(1, 10)]), (1, vec![], vec![(100, 20)])])],
                stats.clone(),
                registrars,
            );
            let mut sim = build(3, vec![c], seed);
            sim.run_until(SimTime::from_secs(2));
            let s = stats.borrow();
            assert_eq!(s.committed, 1);
            s.mean_commit_ms()
        };
        let plain = run(0, 3);
        let registered = run(2, 3);
        assert!(
            registered > plain + 5.0,
            "registrar round must add a round trip: {plain} vs {registered}"
        );
    }

    #[test]
    fn conflicting_txns_one_aborts() {
        // Two clients race an RMW on the same key in the same group with
        // overlapping read phases: OCC must abort at least one, and the
        // group must end consistent (exactly committed-many versions).
        let stats1 = shared_stats();
        let stats2 = shared_stats();
        let cfg = TxnConfig::new(1);
        let mk = |session, stats: &SharedTxnStats| {
            TxnClient::new(
                session,
                cfg,
                vec![spec(1_000, vec![(0, vec![5], vec![(5, session)])])],
                stats.clone(),
                0,
            )
        };
        let c1 = mk(1, &stats1);
        let c2 = mk(2, &stats2);
        let mut sim = build(1, vec![c1, c2], 4);
        sim.run_until(SimTime::from_secs(2));
        let (s1, s2) = (stats1.borrow(), stats2.borrow());
        let committed = s1.committed + s2.committed;
        let aborted = s1.aborted + s2.aborted;
        assert_eq!(committed + aborted, 2);
        assert_eq!(aborted, 1, "exactly one of the racing RMWs must abort");
    }

    #[test]
    fn disjoint_txns_both_commit() {
        let stats1 = shared_stats();
        let stats2 = shared_stats();
        let cfg = TxnConfig::new(1);
        let c1 = TxnClient::new(
            1,
            cfg,
            vec![spec(1_000, vec![(0, vec![1], vec![(1, 11)])])],
            stats1.clone(),
            0,
        );
        let c2 = TxnClient::new(
            2,
            cfg,
            vec![spec(1_000, vec![(0, vec![2], vec![(2, 22)])])],
            stats2.clone(),
            0,
        );
        let mut sim = build(1, vec![c1, c2], 5);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(stats1.borrow().committed + stats2.borrow().committed, 2);
    }

    #[test]
    fn vote_no_aborts_cleanly_and_unlocks() {
        // Client A holds locks in group 0 via a long 2PC (we simulate the
        // contention window by having B prepare while A is between
        // prepare and decide). With constant latency, B's prepare lands
        // while A's locks are held → B aborts; A commits; a third txn
        // after both succeeds (locks released).
        let stats_a = shared_stats();
        let stats_b = shared_stats();
        let stats_c = shared_stats();
        let cfg = TxnConfig::new(2);
        let a = TxnClient::new(
            1,
            cfg,
            vec![spec(1_000, vec![(0, vec![], vec![(1, 10)]), (1, vec![], vec![(100, 1)])])],
            stats_a.clone(),
            0,
        );
        let b = TxnClient::new(
            2,
            cfg,
            vec![spec(9_000, vec![(0, vec![1], vec![(1, 20)]), (1, vec![], vec![(101, 1)])])],
            stats_b.clone(),
            0,
        );
        let c = TxnClient::new(
            3,
            cfg,
            vec![spec(500_000, vec![(0, vec![1], vec![(1, 30)])])],
            stats_c.clone(),
            0,
        );
        let mut sim = build(2, vec![a, b, c], 6);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(stats_a.borrow().committed, 1, "A commits");
        assert_eq!(stats_b.borrow().aborted, 1, "B hits A's locks and aborts");
        assert_eq!(stats_c.borrow().committed, 1, "locks released for C");
    }
}
