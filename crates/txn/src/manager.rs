//! The `GroupNode` actor: hosts entity groups, serves reads and commits,
//! acts as 2PC participant and commit registrar.

use crate::group::{Group, GroupId, TxnId};
use kvstore::Key;
use simnet::{Actor, Context, Duration, NodeId, SpanStatus};
use std::collections::BTreeMap;

/// Deployment configuration for the transactional store.
#[derive(Debug, Clone, Copy)]
pub struct TxnConfig {
    /// Number of group-hosting nodes.
    pub nodes: usize,
    /// Lock timeout: prepared transactions older than this are
    /// unilaterally aborted (2PC blocking mitigation).
    pub lock_timeout: Duration,
}

impl TxnConfig {
    /// Defaults: locks expire after 500 ms.
    pub fn new(nodes: usize) -> Self {
        TxnConfig { nodes, lock_timeout: Duration::from_millis(500) }
    }

    /// The home node of a group.
    pub fn home(&self, group: GroupId) -> NodeId {
        NodeId((group % self.nodes as u64) as u32)
    }
}

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Read-phase request: read `keys` of `group` at its current position.
    Read {
        /// Transaction id.
        txn: TxnId,
        /// Group.
        group: GroupId,
        /// Keys to read.
        keys: Vec<Key>,
    },
    /// Read-phase response.
    ReadResp {
        /// Transaction id.
        txn: TxnId,
        /// Group.
        group: GroupId,
        /// Values read.
        values: Vec<(Key, Option<u64>)>,
        /// The group's commit position (the snapshot).
        snapshot: u64,
    },
    /// Single-group fast commit.
    CommitOne {
        /// Transaction id.
        txn: TxnId,
        /// Group.
        group: GroupId,
        /// Snapshot from the read phase.
        snapshot: u64,
        /// Keys read.
        read_keys: Vec<Key>,
        /// Writes to apply.
        writes: Vec<(Key, u64)>,
    },
    /// 2PC phase 1 to one participant group.
    Prepare {
        /// Transaction id.
        txn: TxnId,
        /// Group.
        group: GroupId,
        /// Snapshot from the read phase.
        snapshot: u64,
        /// Keys read in this group.
        read_keys: Vec<Key>,
        /// Writes in this group.
        writes: Vec<(Key, u64)>,
    },
    /// Participant vote.
    Vote {
        /// Transaction id.
        txn: TxnId,
        /// Group.
        group: GroupId,
        /// Yes/no.
        yes: bool,
    },
    /// 2PC phase 2.
    Decide {
        /// Transaction id.
        txn: TxnId,
        /// Group.
        group: GroupId,
        /// Commit or abort.
        commit: bool,
    },
    /// Participant acknowledgement of the decision.
    DecideAck {
        /// Transaction id.
        txn: TxnId,
        /// Group.
        group: GroupId,
    },
    /// Registrar write (Paxos-Commit-lite): record the decision durably
    /// at a quorum before telling participants.
    Register {
        /// Transaction id.
        txn: TxnId,
        /// The decision.
        commit: bool,
    },
    /// Registrar acknowledgement.
    RegisterAck {
        /// Transaction id.
        txn: TxnId,
    },
    /// Commit outcome delivered to the client.
    Outcome {
        /// Transaction id.
        txn: TxnId,
        /// Whether it committed.
        committed: bool,
    },
}

impl simnet::MsgMeta for Msg {
    fn variant_name(&self) -> &'static str {
        match self {
            Msg::Read { .. } => "read",
            Msg::ReadResp { .. } => "read_resp",
            Msg::CommitOne { .. } => "commit_one",
            Msg::Prepare { .. } => "prepare",
            Msg::Vote { .. } => "vote",
            Msg::Decide { .. } => "decide",
            Msg::DecideAck { .. } => "decide_ack",
            Msg::Register { .. } => "register",
            Msg::RegisterAck { .. } => "register_ack",
            Msg::Outcome { .. } => "outcome",
        }
    }
}

const TAG_EXPIRE: u64 = 1;

/// A node hosting entity groups.
pub struct GroupNode {
    cfg: TxnConfig,
    groups: BTreeMap<GroupId, Group>,
    /// Registrar state: decisions recorded here.
    decisions: BTreeMap<TxnId, bool>,
    /// Count of transactions aborted by lock expiry (exported metric).
    pub expired_aborts: u64,
}

impl GroupNode {
    /// Create a node.
    pub fn new(cfg: TxnConfig) -> Self {
        GroupNode { cfg, groups: BTreeMap::new(), decisions: BTreeMap::new(), expired_aborts: 0 }
    }

    /// Access a group's state (tests / checkers).
    pub fn group(&self, g: GroupId) -> Option<&Group> {
        self.groups.get(&g)
    }

    fn group_mut(&mut self, g: GroupId) -> &mut Group {
        self.groups.entry(g).or_default()
    }
}

impl Actor<Msg> for GroupNode {
    fn role(&self) -> &'static str {
        "replica"
    }

    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        ctx.set_timer(self.cfg.lock_timeout, TAG_EXPIRE);
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, _id: u64, tag: u64) {
        if tag == TAG_EXPIRE {
            let horizon = ctx.now().as_micros().saturating_sub(self.cfg.lock_timeout.as_micros());
            for g in self.groups.values_mut() {
                self.expired_aborts += g.expire_locks(horizon).len() as u64;
            }
            ctx.set_timer(self.cfg.lock_timeout, TAG_EXPIRE);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let now_us = ctx.now().as_micros();
        match msg {
            Msg::Read { txn, group, keys } => {
                let span = ctx.span_open("group_read");
                let g = self.group_mut(group);
                let values = g.read(&keys);
                let snapshot = g.commit_pos();
                ctx.send(from, Msg::ReadResp { txn, group, values, snapshot });
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::CommitOne { txn, group, snapshot, read_keys, writes } => {
                let span = ctx.span_open("group_commit");
                let committed =
                    self.group_mut(group).commit_one(snapshot, &read_keys, &writes, now_us).is_ok();
                ctx.send(from, Msg::Outcome { txn, committed });
                ctx.span_close(span, if committed { SpanStatus::Ok } else { SpanStatus::Failed });
            }
            Msg::Prepare { txn, group, snapshot, read_keys, writes } => {
                let span = ctx.span_open("group_prepare");
                let yes = self
                    .group_mut(group)
                    .prepare(txn, snapshot, &read_keys, &writes, now_us)
                    .is_ok();
                ctx.send(from, Msg::Vote { txn, group, yes });
                ctx.span_close(span, if yes { SpanStatus::Ok } else { SpanStatus::Failed });
            }
            Msg::Decide { txn, group, commit } => {
                let span = ctx.span_open("group_decide");
                self.group_mut(group).decide(txn, commit, now_us);
                ctx.send(from, Msg::DecideAck { txn, group });
                ctx.span_close(span, SpanStatus::Ok);
            }
            Msg::Register { txn, commit } => {
                let span = ctx.span_open("registrar_write");
                self.decisions.insert(txn, commit);
                ctx.send(from, Msg::RegisterAck { txn });
                ctx.span_close(span, SpanStatus::Ok);
            }
            // Client-side messages: ignored by group nodes.
            Msg::ReadResp { .. }
            | Msg::Vote { .. }
            | Msg::DecideAck { .. }
            | Msg::RegisterAck { .. }
            | Msg::Outcome { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_assignment_is_modular() {
        let cfg = TxnConfig::new(3);
        assert_eq!(cfg.home(0), NodeId(0));
        assert_eq!(cfg.home(4), NodeId(1));
        assert_eq!(cfg.home(5), NodeId(2));
    }

    #[test]
    fn node_serves_read_and_commit_via_sim() {
        use simnet::{Sim, SimConfig, SimTime};
        use std::cell::RefCell;
        use std::rc::Rc;

        // A probe actor that drives one read + one commit + one read.
        struct Probe {
            target: NodeId,
            log: Rc<RefCell<Vec<Msg>>>,
        }
        impl Actor<Msg> for Probe {
            fn on_start(&mut self, ctx: &mut Context<Msg>) {
                ctx.send(self.target, Msg::Read { txn: 1, group: 0, keys: vec![7] });
            }
            fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
                match &msg {
                    Msg::ReadResp { txn: 1, snapshot, .. } => {
                        let snapshot = *snapshot;
                        self.log.borrow_mut().push(msg);
                        ctx.send(
                            self.target,
                            Msg::CommitOne {
                                txn: 1,
                                group: 0,
                                snapshot,
                                read_keys: vec![7],
                                writes: vec![(7, 42)],
                            },
                        );
                    }
                    Msg::Outcome { .. } => {
                        self.log.borrow_mut().push(msg);
                        ctx.send(self.target, Msg::Read { txn: 2, group: 0, keys: vec![7] });
                    }
                    Msg::ReadResp { txn: 2, .. } => {
                        self.log.borrow_mut().push(msg);
                    }
                    _ => {}
                }
            }
        }

        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<Msg> = Sim::new(SimConfig::default().seed(1));
        let node = sim.add_node(Box::new(GroupNode::new(TxnConfig::new(1))));
        sim.add_node(Box::new(Probe { target: node, log: log.clone() }));
        sim.run_until(SimTime::from_secs(1));
        let log = log.borrow();
        assert_eq!(log.len(), 3);
        match &log[1] {
            Msg::Outcome { committed, .. } => assert!(committed),
            other => panic!("expected outcome, got {other:?}"),
        }
        match &log[2] {
            Msg::ReadResp { values, snapshot, .. } => {
                assert_eq!(values, &vec![(7, Some(42))]);
                assert_eq!(*snapshot, 1);
            }
            other => panic!("expected read resp, got {other:?}"),
        }
    }
}
