//! Log-bucketed latency/size histograms.
//!
//! Values are `u64`s (microseconds for latencies, bytes or counts for
//! sizes) bucketed by bit length: bucket *i* holds values in
//! `[2^(i-1), 2^i)` (bucket 0 holds the value 0). That gives ~2x
//! resolution over the full `u64` range with 65 fixed buckets and no
//! allocation, which is plenty for the percentile summaries the
//! experiments report.

use serde::{Serialize, Value};

/// The continuous metrics the observability layer tracks as histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Metric {
    /// Microseconds a coordinator waited to assemble a read quorum.
    QuorumReadWaitUs,
    /// Microseconds a coordinator waited to assemble a write quorum.
    QuorumWriteWaitUs,
    /// Peers contacted per anti-entropy round.
    AntiEntropyFanout,
    /// Concurrent siblings present when a conflict was detected.
    ConflictSiblings,
    /// Bytes per WAL append.
    WalAppendBytes,
    /// Approximate bytes per network message sent.
    MessageBytes,
}

impl Metric {
    /// All metrics, in export order.
    pub const ALL: [Metric; 6] = [
        Metric::QuorumReadWaitUs,
        Metric::QuorumWriteWaitUs,
        Metric::AntiEntropyFanout,
        Metric::ConflictSiblings,
        Metric::WalAppendBytes,
        Metric::MessageBytes,
    ];

    /// Number of distinct metrics.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in exports and `docs/METRICS.md`.
    pub fn name(self) -> &'static str {
        match self {
            Metric::QuorumReadWaitUs => "quorum_read_wait_us",
            Metric::QuorumWriteWaitUs => "quorum_write_wait_us",
            Metric::AntiEntropyFanout => "anti_entropy_fanout",
            Metric::ConflictSiblings => "conflict_siblings",
            Metric::WalAppendBytes => "wal_append_bytes",
            Metric::MessageBytes => "message_bytes",
        }
    }
}

const BUCKETS: usize = 65;

/// A log-bucketed histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; BUCKETS] }
    }
}

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Upper bound (inclusive-exclusive boundary) of a bucket, used as the
/// percentile estimate for values in that bucket.
fn bucket_hi(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of all observations, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the value at quantile `q` in `[0, 1]` (bucket upper
    /// bound, clamped to the observed max). Returns 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_hi(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    ///
    /// Exact, not approximate: buckets, counts, sums, and extrema all
    /// add/commute, so merging per-cell histograms from a parallel grid
    /// run in any order yields the same result as recording every
    /// observation into one histogram serially.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Collapse into a fixed summary for export.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: if self.count == 0 { 0 } else { self.max },
        }
    }
}

/// Percentile summary of a [`Histogram`], exported into `results/*.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Estimated median (bucket upper bound).
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact maximum observed value.
    pub max: u64,
}

impl Serialize for HistogramSummary {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("mean".to_string(), Value::F64(self.mean)),
            ("p50".to_string(), Value::U64(self.p50)),
            ("p95".to_string(), Value::U64(self.p95)),
            ("p99".to_string(), Value::U64(self.p99)),
            ("max".to_string(), Value::U64(self.max)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_summary_is_zero() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Log buckets overestimate by at most 2x.
        let p50 = h.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(h.summary().max, 1000);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_equals_serial_recording() {
        let mut serial = Histogram::default();
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [0u64, 1, 7, 64, 1000, u64::MAX] {
            serial.record(v);
            a.record(v);
        }
        for v in [3u64, 500, 2] {
            serial.record(v);
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), serial.summary());
        // Merging an empty histogram is the identity.
        let before = a.summary();
        a.merge(&Histogram::default());
        assert_eq!(a.summary(), before);
    }

    #[test]
    fn zero_values_land_in_bucket_zero() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary().max, 0);
    }
}
