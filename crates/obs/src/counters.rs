//! Typed protocol counters.
//!
//! Counters are a closed enum rather than free-form strings so that a
//! typo is a compile error, the metrics contract in `docs/METRICS.md`
//! can enumerate every counter exhaustively, and storage is a flat
//! array (no hashing on the hot path).

/// Every counter the observability layer tracks.
///
/// Units and semantics for each are documented in `docs/METRICS.md`;
/// [`Counter::name`] gives the stable snake_case export name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Messages handed to the network by senders.
    MessagesSent,
    /// Messages delivered to a live destination actor.
    MessagesDelivered,
    /// Messages dropped (partition, loss, or crashed destination).
    MessagesDropped,
    /// Approximate payload bytes handed to the network.
    BytesSent,
    /// Approximate payload bytes delivered.
    BytesDelivered,
    /// Anti-entropy (gossip) rounds initiated.
    AntiEntropyRounds,
    /// Read quorums assembled by coordinators.
    QuorumReads,
    /// Write quorums assembled by coordinators.
    QuorumWrites,
    /// Read-repair writes pushed to stale replicas.
    ReadRepairs,
    /// Concurrent-sibling conflicts detected.
    ConflictsDetected,
    /// Conflicts collapsed by LWW, merge, or repair.
    ConflictsResolved,
    /// Records appended to write-ahead logs.
    WalAppends,
    /// Bytes appended to write-ahead logs.
    WalBytes,
    /// Transactions committed.
    TxnCommits,
    /// Transactions aborted.
    TxnAborts,
    /// Timer events fired by the simulator.
    TimersFired,
    /// Network partitions begun.
    PartitionsStarted,
    /// Network partitions healed.
    PartitionsHealed,
    /// Node crash faults applied.
    Crashes,
    /// Node recovery faults applied.
    Recoveries,
    /// Recoveries that wiped volatile state (amnesia restarts).
    AmnesiaRecoveries,
    /// WAL records replayed into stores during amnesia recovery.
    WalReplayedRecords,
    /// Trace spans opened.
    SpansOpened,
    /// Trace spans closed (any status, including abandoned).
    SpansClosed,
    /// Trace spans closed as abandoned at shutdown (subset of
    /// `spans_closed`).
    SpansAbandoned,
    /// Hinted-handoff hints parked on spare nodes.
    HintsStored,
    /// Hints successfully delivered to their home replica and dropped
    /// from the spare.
    HintsDrained,
    /// Hints lost before delivery (amnesia crash of the holder, or still
    /// undelivered at the run horizon).
    HintsDropped,
    /// Keys pushed to new owners during ring membership rebalancing.
    RebalancedKeys,
    /// Violations flagged by the online streaming consistency checkers.
    StreamViolations,
    /// State entries the streaming checkers evicted at watermark
    /// advances (bounded-memory operation; see `docs/CHECKERS.md`).
    CheckerEventsEvicted,
    /// Actor handler invocations measured by the profiler (0 unless
    /// profiling is enabled; see `docs/PROFILING.md`).
    HandlerInvocations,
    /// Gross bytes allocated inside profiled handlers (0 unless
    /// profiling is enabled and the binary installs
    /// [`crate::CountingAlloc`]).
    AllocBytes,
}

impl Counter {
    /// All counters, in export order.
    pub const ALL: [Counter; 33] = [
        Counter::MessagesSent,
        Counter::MessagesDelivered,
        Counter::MessagesDropped,
        Counter::BytesSent,
        Counter::BytesDelivered,
        Counter::AntiEntropyRounds,
        Counter::QuorumReads,
        Counter::QuorumWrites,
        Counter::ReadRepairs,
        Counter::ConflictsDetected,
        Counter::ConflictsResolved,
        Counter::WalAppends,
        Counter::WalBytes,
        Counter::TxnCommits,
        Counter::TxnAborts,
        Counter::TimersFired,
        Counter::PartitionsStarted,
        Counter::PartitionsHealed,
        Counter::Crashes,
        Counter::Recoveries,
        Counter::AmnesiaRecoveries,
        Counter::WalReplayedRecords,
        Counter::SpansOpened,
        Counter::SpansClosed,
        Counter::SpansAbandoned,
        Counter::HintsStored,
        Counter::HintsDrained,
        Counter::HintsDropped,
        Counter::RebalancedKeys,
        Counter::StreamViolations,
        Counter::CheckerEventsEvicted,
        Counter::HandlerInvocations,
        Counter::AllocBytes,
    ];

    /// Number of distinct counters.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in exports and `docs/METRICS.md`.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MessagesSent => "messages_sent",
            Counter::MessagesDelivered => "messages_delivered",
            Counter::MessagesDropped => "messages_dropped",
            Counter::BytesSent => "bytes_sent",
            Counter::BytesDelivered => "bytes_delivered",
            Counter::AntiEntropyRounds => "anti_entropy_rounds",
            Counter::QuorumReads => "quorum_reads",
            Counter::QuorumWrites => "quorum_writes",
            Counter::ReadRepairs => "read_repairs",
            Counter::ConflictsDetected => "conflicts_detected",
            Counter::ConflictsResolved => "conflicts_resolved",
            Counter::WalAppends => "wal_appends",
            Counter::WalBytes => "wal_bytes",
            Counter::TxnCommits => "txn_commits",
            Counter::TxnAborts => "txn_aborts",
            Counter::TimersFired => "timers_fired",
            Counter::PartitionsStarted => "partitions_started",
            Counter::PartitionsHealed => "partitions_healed",
            Counter::Crashes => "crashes",
            Counter::Recoveries => "recoveries",
            Counter::AmnesiaRecoveries => "amnesia_recoveries",
            Counter::WalReplayedRecords => "wal_replayed_records",
            Counter::SpansOpened => "spans_opened",
            Counter::SpansClosed => "spans_closed",
            Counter::SpansAbandoned => "spans_abandoned",
            Counter::HintsStored => "hints_stored",
            Counter::HintsDrained => "hints_drained",
            Counter::HintsDropped => "hints_dropped",
            Counter::RebalancedKeys => "rebalanced_keys",
            Counter::StreamViolations => "stream_violations",
            Counter::CheckerEventsEvicted => "checker_events_evicted",
            Counter::HandlerInvocations => "handler_invocations",
            Counter::AllocBytes => "alloc_bytes",
        }
    }
}

/// A flat, fixed-size set of counter values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CounterSet {
    values: [u64; Counter::COUNT],
}

// Derived `Default` stops at 32-element arrays; spell it out.
impl Default for CounterSet {
    fn default() -> Self {
        CounterSet { values: [0; Counter::COUNT] }
    }
}

impl CounterSet {
    pub(crate) fn add(&mut self, counter: Counter, delta: u64) {
        self.values[counter as usize] += delta;
    }

    pub(crate) fn get(&self, counter: Counter) -> u64 {
        self.values[counter as usize]
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    /// Non-zero counters as `(name, value)` pairs, in export order.
    pub(crate) fn nonzero(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c.name(), self.get(c))).filter(|&(_, v)| v != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Counter::ALL {
            let name = c.name();
            assert!(seen.insert(name), "duplicate counter name {name}");
            assert!(
                name.chars().all(|ch| ch.is_ascii_lowercase() || ch == '_'),
                "{name} is not snake_case"
            );
        }
        assert_eq!(seen.len(), Counter::COUNT);
    }

    #[test]
    fn counter_set_accumulates() {
        let mut set = CounterSet::default();
        assert!(set.is_empty());
        set.add(Counter::MessagesSent, 2);
        set.add(Counter::MessagesSent, 3);
        assert_eq!(set.get(Counter::MessagesSent), 5);
        assert_eq!(set.nonzero().collect::<Vec<_>>(), vec![("messages_sent", 5)]);
    }
}
