//! Structured observability for the rethinking-ec workspace.
//!
//! This crate is the metrics contract between the simulator, the
//! replication protocols, and the experiment harness:
//!
//! - a **typed event log** ([`EventKind`], [`TracedEvent`]) recording
//!   what the protocols did and why (message sends/drops, anti-entropy
//!   rounds, quorum waits, conflicts, WAL appends, faults), exportable
//!   as deterministic JSONL;
//! - **counters** ([`Counter`]), global and per node, derived
//!   automatically from recorded events;
//! - **histograms** ([`Metric`], [`Histogram`]) for continuous
//!   quantities such as quorum wait times;
//! - **causal trace/span ids** ([`TraceId`], [`SpanId`]) that group
//!   every event caused by one client operation into a span tree
//!   (`span_open`/`span_close` event pairs, documented in
//!   `docs/TRACING.md`);
//! - **windowed time series** ([`TsMetric`], [`TimeSeries`]) tracking
//!   how staleness, divergence, visibility lag, and in-flight depth
//!   evolve over virtual time.
//!
//! All three are fed through a single cheap-to-clone [`Recorder`]
//! handle, which is free when disabled, and snapshot into a
//! [`MetricsReport`] — the `metrics` section of every
//! `results/*.json`. Field-by-field documentation lives in
//! `docs/METRICS.md`.
//!
//! This crate deliberately depends on nothing in the workspace (node
//! ids are plain `u64`, times are microsecond `u64`s) so every layer —
//! `simnet`, `kvstore`, `replication`, `txn`, `rec-core` — can report
//! into it without dependency cycles.
//!
//! # Examples
//!
//! Recording and exporting a trace:
//!
//! ```
//! use obs::{EventKind, Recorder};
//!
//! let rec = Recorder::with_event_log();
//! rec.record(100, EventKind::AntiEntropyRound { node: 0, fanout: 2 });
//! rec.record(220, EventKind::WalAppend { node: 0, key: 7, bytes: 64 });
//!
//! let jsonl = rec.export_jsonl();
//! assert_eq!(jsonl.lines().count(), 2);
//! assert!(jsonl.starts_with(r#"{"seq":0,"t_us":100,"type":"anti_entropy_round""#));
//! ```
//!
//! Reading a JSONL trace back (each line is a standalone JSON object):
//!
//! ```
//! use obs::{EventKind, Recorder};
//!
//! let rec = Recorder::with_event_log();
//! rec.record(5, EventKind::Crash { node: 3 });
//! for line in rec.export_jsonl().lines() {
//!     let value: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
//!     let obj = value.as_object().expect("object per line");
//!     let ty = obj.iter().find(|(k, _)| k == "type").unwrap().1.as_str();
//!     assert_eq!(ty, Some("crash"));
//! }
//! ```

#![warn(missing_docs)]

mod counters;
mod event;
mod hist;
mod prof;
mod recorder;
mod report;
mod span;
mod timeseries;

pub use counters::Counter;
pub use event::{ClientOpKind, DropReason, EventKind, QuorumKind, TracedEvent};
pub use hist::{Histogram, HistogramSummary, Metric};
pub use prof::{
    alloc_totals, CountingAlloc, FoldWeight, HandlerKind, HandlerProfile, PauseAlloc, Probe,
    ProfSample, Profile, ProfileReport, SchemeProfile, NO_VARIANT,
};
pub use recorder::{Recorder, DEFAULT_EVENT_CAP};
pub use report::{MetricsReport, NodeCounters};
pub use span::{SpanId, SpanStatus, TraceId};
pub use timeseries::{
    TimeSeries, TimeSeriesSummary, TsBucket, TsMetric, TsPoint, DEFAULT_TS_BUCKET_US,
};
