//! Deterministic in-sim profiler: per-handler time and allocation
//! attribution.
//!
//! The simulator wraps every actor handler invocation in a scoped
//! [`Probe`] that measures wall time and allocation deltas (bytes and
//! count, via the thread-local tallying [`CountingAlloc`] when a binary
//! installs it as its global allocator). Samples are keyed by
//! `(scheme, node role, handler kind, message variant)` and accumulate
//! into a [`Profile`]: invocation counts, allocation tallies, and log2
//! [`Histogram`]s of per-call time and bytes.
//!
//! Determinism contract (`docs/PROFILING.md`): invocation counts and
//! allocation tallies are a pure function of the simulated run, so they
//! are byte-identical across `--jobs` levels; wall times are host
//! measurements and are not, but their histograms merge exactly and
//! commutatively ([`Profile::merge`]) in deterministic grid order.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Serialize, Value};

use crate::hist::Histogram;

/// Which actor callback a profiled sample came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum HandlerKind {
    /// `Actor::on_start`.
    Start,
    /// `Actor::on_message`.
    Message,
    /// `Actor::on_timer`.
    Timer,
    /// `Actor::on_crash`.
    Crash,
    /// `Actor::on_recover`.
    Recover,
    /// `Actor::on_membership`.
    Membership,
    /// `Actor::on_shutdown`.
    Shutdown,
}

impl HandlerKind {
    /// All handler kinds, in export order.
    pub const ALL: [HandlerKind; 7] = [
        HandlerKind::Start,
        HandlerKind::Message,
        HandlerKind::Timer,
        HandlerKind::Crash,
        HandlerKind::Recover,
        HandlerKind::Membership,
        HandlerKind::Shutdown,
    ];

    /// Stable export name (the actor callback's method name).
    pub fn name(self) -> &'static str {
        match self {
            HandlerKind::Start => "on_start",
            HandlerKind::Message => "on_message",
            HandlerKind::Timer => "on_timer",
            HandlerKind::Crash => "on_crash",
            HandlerKind::Recover => "on_recover",
            HandlerKind::Membership => "on_membership",
            HandlerKind::Shutdown => "on_shutdown",
        }
    }
}

/// Placeholder variant name for handler kinds that carry no message.
pub const NO_VARIANT: &str = "-";

// Thread-local allocation tallies. `const`-initialized `Cell`s so the
// allocator's fast path never triggers lazy TLS initialization (which
// itself allocates on some platforms).
thread_local! {
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    /// Reentrancy guard depth: while > 0, allocations are not tallied.
    /// The profiler's own bookkeeping raises it so nested probes never
    /// double-count the profiler against the profiled handler.
    static ALLOC_PAUSED: Cell<u32> = const { Cell::new(0) };
}

/// A tallying global allocator wrapping [`System`].
///
/// Install it in a binary that wants allocation attribution:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: obs::CountingAlloc = obs::CountingAlloc;
/// ```
///
/// Tallies are *gross* and monotonic: every `alloc`/`alloc_zeroed`/
/// `realloc` adds the requested size to the current thread's running
/// totals ([`alloc_totals`]); frees are not subtracted. Gross tallies
/// are what makes per-handler deltas deterministic — they count what
/// the handler allocated, not what the OS happened to reclaim. Without
/// this allocator installed, probes still measure time and invocation
/// counts; allocation deltas read 0.
pub struct CountingAlloc;

#[inline]
fn tally(bytes: usize) {
    // `try_with`: the allocator can be called during TLS teardown,
    // where accessing a thread-local would otherwise panic.
    let paused = ALLOC_PAUSED.try_with(|p| p.get() > 0).unwrap_or(true);
    if paused {
        return;
    }
    let _ = ALLOC_BYTES.try_with(|b| b.set(b.get() + bytes as u64));
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: delegates every allocation verbatim to `System`; the tallies
// touch only thread-local `Cell`s and never allocate themselves.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            tally(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            tally(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            tally(new_size);
        }
        p
    }
}

/// The current thread's gross allocation totals `(bytes, count)` since
/// thread start. Reads 0 unless [`CountingAlloc`] is installed as the
/// global allocator.
pub fn alloc_totals() -> (u64, u64) {
    (ALLOC_BYTES.with(Cell::get), ALLOC_COUNT.with(Cell::get))
}

/// RAII guard that pauses allocation tallying on the current thread
/// while alive (nestable). The recorder wraps its own profile
/// bookkeeping in one, so a nested probe (e.g. profiling the profiler
/// in tests) never double-counts that bookkeeping.
pub struct PauseAlloc(());

impl PauseAlloc {
    /// Pause tallying until the guard drops.
    pub fn new() -> Self {
        let _ = ALLOC_PAUSED.try_with(|p| p.set(p.get() + 1));
        PauseAlloc(())
    }
}

impl Default for PauseAlloc {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for PauseAlloc {
    fn drop(&mut self) {
        let _ = ALLOC_PAUSED.try_with(|p| p.set(p.get().saturating_sub(1)));
    }
}

/// What one scoped probe measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfSample {
    /// Host wall time spent inside the handler, nanoseconds.
    pub wall_ns: u64,
    /// Gross bytes allocated inside the handler (0 without
    /// [`CountingAlloc`]).
    pub alloc_bytes: u64,
    /// Gross allocation count inside the handler.
    pub alloc_count: u64,
}

/// A scoped measurement around one handler invocation: snapshot on
/// [`Probe::start`], delta on [`Probe::finish`].
#[derive(Debug)]
pub struct Probe {
    start: Instant,
    bytes0: u64,
    count0: u64,
}

impl Probe {
    /// Snapshot the clock and the thread's allocation totals.
    pub fn start() -> Self {
        let (bytes0, count0) = alloc_totals();
        Probe { start: Instant::now(), bytes0, count0 }
    }

    /// Close the probe, yielding the deltas since [`Probe::start`].
    pub fn finish(self) -> ProfSample {
        let (bytes, count) = alloc_totals();
        ProfSample {
            wall_ns: self.start.elapsed().as_nanos() as u64,
            alloc_bytes: bytes - self.bytes0,
            alloc_count: count - self.count0,
        }
    }
}

/// Profile key within one scheme: `(role, handler kind, variant)`.
type ProfKey = (&'static str, HandlerKind, &'static str);

/// Accumulated measurements for one `(scheme, role, handler, variant)`
/// cell.
#[derive(Debug, Clone, Default)]
pub struct ProfCell {
    /// Handler invocations recorded.
    pub invocations: u64,
    /// Gross bytes allocated across all invocations.
    pub alloc_bytes: u64,
    /// Gross allocation count across all invocations.
    pub alloc_count: u64,
    /// Per-call wall time, nanoseconds.
    pub time_ns: Histogram,
    /// Per-call gross allocated bytes.
    pub bytes_per_call: Histogram,
}

impl ProfCell {
    fn record(&mut self, sample: ProfSample) {
        self.invocations += 1;
        self.alloc_bytes += sample.alloc_bytes;
        self.alloc_count += sample.alloc_count;
        self.time_ns.record(sample.wall_ns);
        self.bytes_per_call.record(sample.alloc_bytes);
    }

    fn merge(&mut self, other: &ProfCell) {
        self.invocations += other.invocations;
        self.alloc_bytes += other.alloc_bytes;
        self.alloc_count += other.alloc_count;
        self.time_ns.merge(&other.time_ns);
        self.bytes_per_call.merge(&other.bytes_per_call);
    }
}

/// Per-scheme, per-handler profile data held inside an enabled
/// recorder's core.
///
/// `BTreeMap`s keep every traversal (merge, report, folded export) in a
/// deterministic key order, so merged profiles are independent of which
/// grid cell finished first.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Scheme label samples are currently attributed to.
    current: String,
    schemes: BTreeMap<String, BTreeMap<ProfKey, ProfCell>>,
}

impl Default for Profile {
    fn default() -> Self {
        // Harnesses that drive `Sim` directly never set a scheme label;
        // their samples land under "sim" rather than an empty string.
        Profile { current: "sim".to_string(), schemes: BTreeMap::new() }
    }
}

impl Profile {
    /// Attribute subsequent samples to `scheme` (an
    /// `rec_core::Scheme::label()` in the experiment path).
    pub fn set_scheme(&mut self, scheme: &str) {
        if self.current != scheme {
            self.current = scheme.to_string();
        }
    }

    /// Fold one handler sample into the current scheme's cell.
    pub fn record(
        &mut self,
        role: &'static str,
        kind: HandlerKind,
        variant: &'static str,
        sample: ProfSample,
    ) {
        if !self.schemes.contains_key(&self.current) {
            self.schemes.insert(self.current.clone(), BTreeMap::new());
        }
        let cells = self.schemes.get_mut(&self.current).expect("just inserted");
        cells.entry((role, kind, variant)).or_default().record(sample);
    }

    /// Merge another profile's cells into this one. Exact and
    /// commutative — counts, tallies, and histogram buckets all add —
    /// so folding per-cell profiles from a parallel grid in grid order
    /// yields the same counts as a serial run.
    pub fn merge(&mut self, other: &Profile) {
        for (scheme, cells) in &other.schemes {
            let mine = self.schemes.entry(scheme.clone()).or_default();
            for (key, cell) in cells {
                mine.entry(*key).or_default().merge(cell);
            }
        }
    }

    /// Snapshot into the exported [`ProfileReport`] shape.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            schemes: self
                .schemes
                .iter()
                .map(|(scheme, cells)| SchemeProfile {
                    scheme: scheme.clone(),
                    handlers: cells
                        .iter()
                        .map(|(&(role, kind, variant), cell)| HandlerProfile {
                            role: role.to_string(),
                            handler: kind.name().to_string(),
                            variant: variant.to_string(),
                            invocations: cell.invocations,
                            alloc_bytes: cell.alloc_bytes,
                            alloc_count: cell.alloc_count,
                            time_total_ns: cell.time_ns.sum(),
                            time_ns: cell.time_ns.summary(),
                            bytes_per_call: cell.bytes_per_call.summary(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One handler row of an exported profile.
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerProfile {
    /// Actor role (`Actor::role`): "replica", "client", ...
    pub role: String,
    /// Handler kind name ([`HandlerKind::name`]).
    pub handler: String,
    /// Message variant name (`"-"` for messageless handlers).
    pub variant: String,
    /// Invocations recorded (jobs-invariant).
    pub invocations: u64,
    /// Gross bytes allocated (jobs-invariant with [`CountingAlloc`]).
    pub alloc_bytes: u64,
    /// Gross allocation count (jobs-invariant with [`CountingAlloc`]).
    pub alloc_count: u64,
    /// Total wall nanoseconds (host-dependent).
    pub time_total_ns: u64,
    /// Per-call wall-time summary (host-dependent).
    pub time_ns: crate::hist::HistogramSummary,
    /// Per-call allocated-bytes summary.
    pub bytes_per_call: crate::hist::HistogramSummary,
}

impl HandlerProfile {
    /// The folded-stack frame for this row:
    /// `role;handler[:variant]` (variant omitted when messageless).
    pub fn frame(&self) -> String {
        if self.variant == NO_VARIANT {
            format!("{};{}", self.role, self.handler)
        } else {
            format!("{};{}:{}", self.role, self.handler, self.variant)
        }
    }
}

/// One scheme's handler rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeProfile {
    /// The scheme label samples were attributed to.
    pub scheme: String,
    /// Handler rows in deterministic `(role, handler, variant)` order.
    pub handlers: Vec<HandlerProfile>,
}

/// The `"profile"` block of a results document (see
/// `docs/PROFILING.md` for the schema).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Per-scheme profiles in scheme-label order.
    pub schemes: Vec<SchemeProfile>,
}

/// Which measurement weights a folded-stack export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldWeight {
    /// Invocation counts (jobs-invariant).
    Calls,
    /// Total wall nanoseconds (host-dependent).
    Time,
    /// Gross allocated bytes (jobs-invariant with [`CountingAlloc`]).
    AllocBytes,
}

impl ProfileReport {
    /// Render the profile as folded stacks — one
    /// `scheme;role;handler[:variant] weight` line per non-zero cell,
    /// lexicographically sorted — consumable by standard flamegraph
    /// tooling (`flamegraph.pl`, inferno, speedscope).
    pub fn to_folded(&self, weight: FoldWeight) -> String {
        let mut lines: Vec<String> = Vec::new();
        for scheme in &self.schemes {
            for h in &scheme.handlers {
                let w = match weight {
                    FoldWeight::Calls => h.invocations,
                    FoldWeight::Time => h.time_total_ns,
                    FoldWeight::AllocBytes => h.alloc_bytes,
                };
                if w > 0 {
                    lines.push(format!("{};{} {w}", scheme.scheme, h.frame()));
                }
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// The jobs-invariant projection of this report: every `(scheme,
    /// role, handler, variant)` with its invocation count and
    /// allocation tallies, timing omitted. Two runs of the same grid at
    /// different `--jobs` levels must produce equal keys.
    pub fn determinism_key(&self) -> Vec<(String, String, u64, u64, u64)> {
        self.schemes
            .iter()
            .flat_map(|s| {
                s.handlers.iter().map(|h| {
                    (s.scheme.clone(), h.frame(), h.invocations, h.alloc_bytes, h.alloc_count)
                })
            })
            .collect()
    }

    /// Total invocations across every scheme and handler.
    pub fn total_invocations(&self) -> u64 {
        self.schemes.iter().flat_map(|s| &s.handlers).map(|h| h.invocations).sum()
    }
}

impl Serialize for HandlerProfile {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("role".to_string(), Value::String(self.role.clone())),
            ("handler".to_string(), Value::String(self.handler.clone())),
            ("variant".to_string(), Value::String(self.variant.clone())),
            ("invocations".to_string(), Value::U64(self.invocations)),
            ("alloc_bytes".to_string(), Value::U64(self.alloc_bytes)),
            ("alloc_count".to_string(), Value::U64(self.alloc_count)),
            ("time_total_ns".to_string(), Value::U64(self.time_total_ns)),
            ("time_ns".to_string(), self.time_ns.to_value()),
            ("bytes_per_call".to_string(), self.bytes_per_call.to_value()),
        ])
    }
}

impl Serialize for SchemeProfile {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("scheme".to_string(), Value::String(self.scheme.clone())),
            (
                "handlers".to_string(),
                Value::Array(self.handlers.iter().map(|h| h.to_value()).collect()),
            ),
        ])
    }
}

impl Serialize for ProfileReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![(
            "schemes".to_string(),
            Value::Array(self.schemes.iter().map(|s| s.to_value()).collect()),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ns: u64, bytes: u64, count: u64) -> ProfSample {
        ProfSample { wall_ns: ns, alloc_bytes: bytes, alloc_count: count }
    }

    #[test]
    fn profile_accumulates_per_key() {
        let mut p = Profile::default();
        p.set_scheme("paxos");
        p.record("replica", HandlerKind::Message, "Put", sample(100, 64, 2));
        p.record("replica", HandlerKind::Message, "Put", sample(50, 32, 1));
        p.record("client", HandlerKind::Timer, NO_VARIANT, sample(10, 0, 0));
        let report = p.report();
        assert_eq!(report.schemes.len(), 1);
        assert_eq!(report.schemes[0].scheme, "paxos");
        let put = report.schemes[0].handlers.iter().find(|h| h.variant == "Put").expect("Put row");
        assert_eq!(put.invocations, 2);
        assert_eq!(put.alloc_bytes, 96);
        assert_eq!(put.alloc_count, 3);
        assert_eq!(put.time_total_ns, 150);
        assert_eq!(report.total_invocations(), 3);
    }

    #[test]
    fn merge_is_commutative_and_exact() {
        let mut a = Profile::default();
        a.set_scheme("x");
        a.record("replica", HandlerKind::Message, "Get", sample(5, 8, 1));
        let mut b = Profile::default();
        b.set_scheme("x");
        b.record("replica", HandlerKind::Message, "Get", sample(7, 16, 2));
        b.set_scheme("y");
        b.record("client", HandlerKind::Start, NO_VARIANT, sample(1, 0, 0));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.report(), ba.report());
        let get = &ab.report().schemes[0].handlers[0];
        assert_eq!((get.invocations, get.alloc_bytes, get.alloc_count), (2, 24, 3));
        assert_eq!(ab.report().schemes.len(), 2);
    }

    #[test]
    fn folded_output_is_sorted_and_skips_zero_weights() {
        let mut p = Profile::default();
        p.set_scheme("zeta");
        p.record("replica", HandlerKind::Message, "Put", sample(10, 64, 1));
        p.set_scheme("alpha");
        p.record("client", HandlerKind::Timer, NO_VARIANT, sample(3, 0, 0));
        let folded = p.report().to_folded(FoldWeight::Calls);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["alpha;client;on_timer 1", "zeta;replica;on_message:Put 1"]);
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "folded lines must be lexicographically sorted");
        // Alloc-weighted view drops the zero-byte timer row.
        let alloc = p.report().to_folded(FoldWeight::AllocBytes);
        assert_eq!(alloc, "zeta;replica;on_message:Put 64\n");
    }

    #[test]
    fn probe_measures_allocation_deltas_when_installed() {
        // This test suite does not install CountingAlloc, so deltas are
        // zero — but the probe must still not panic and time must move.
        let probe = Probe::start();
        let v: Vec<u64> = (0..1000).collect();
        let s = probe.finish();
        assert!(v.len() == 1000);
        assert_eq!(s.alloc_bytes, 0, "no CountingAlloc in obs's own tests");
    }

    #[test]
    fn pause_guard_nests() {
        let _a = PauseAlloc::new();
        {
            let _b = PauseAlloc::new();
        }
        // Dropping the inner guard must not unpause the outer one; we
        // can only observe the depth indirectly (no panic, no underflow).
        drop(_a);
        let _ = alloc_totals();
    }

    #[test]
    fn handler_kind_names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for k in HandlerKind::ALL {
            assert!(seen.insert(k.name()), "duplicate handler name {}", k.name());
        }
        assert_eq!(seen.len(), HandlerKind::ALL.len());
    }
}
