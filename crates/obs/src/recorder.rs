//! The [`Recorder`] handle — the single entry point components use to
//! emit observability data.

use std::sync::{Arc, Mutex};

use crate::counters::{Counter, CounterSet};
use crate::event::{EventKind, TracedEvent};
use crate::hist::{Histogram, Metric};
use crate::prof::{HandlerKind, PauseAlloc, ProfSample, Profile};
use crate::report::{MetricsReport, NodeCounters};
use crate::timeseries::{TimeSeries, TsMetric};

/// Default cap on retained events when the event log is enabled.
pub const DEFAULT_EVENT_CAP: usize = 1 << 20;

#[derive(Debug)]
struct ObsCore {
    /// `Some` iff the event log is enabled.
    events: Option<Vec<TracedEvent>>,
    event_cap: usize,
    /// Events discarded once the cap was hit (counted, never silently lost).
    events_dropped: u64,
    next_seq: u64,
    global: CounterSet,
    per_node: Vec<CounterSet>,
    hists: [Histogram; Metric::COUNT],
    series: [TimeSeries; TsMetric::COUNT],
    /// `Some` iff the in-sim profiler is enabled (see [`crate::prof`]).
    profile: Option<Profile>,
}

impl ObsCore {
    fn new(with_events: bool) -> Self {
        ObsCore {
            events: with_events.then(Vec::new),
            event_cap: DEFAULT_EVENT_CAP,
            events_dropped: 0,
            next_seq: 0,
            global: CounterSet::default(),
            per_node: Vec::new(),
            hists: std::array::from_fn(|_| Histogram::default()),
            series: std::array::from_fn(|_| TimeSeries::default()),
            profile: None,
        }
    }

    fn node_set(&mut self, node: u64) -> &mut CounterSet {
        let idx = node as usize;
        if idx >= self.per_node.len() {
            self.per_node.resize(idx + 1, CounterSet::default());
        }
        &mut self.per_node[idx]
    }

    fn record(&mut self, t_us: u64, kind: EventKind) {
        for (counter, node, delta) in kind.implied_counters() {
            self.global.add(counter, delta);
            if let Some(node) = node {
                self.node_set(node).add(counter, delta);
            }
        }
        match kind {
            EventKind::QuorumWait { kind: qk, waited_us, .. } => {
                let metric = match qk {
                    crate::event::QuorumKind::Read => Metric::QuorumReadWaitUs,
                    crate::event::QuorumKind::Write => Metric::QuorumWriteWaitUs,
                };
                self.hists[metric as usize].record(waited_us);
            }
            EventKind::AntiEntropyRound { fanout, .. } => {
                self.hists[Metric::AntiEntropyFanout as usize].record(fanout);
            }
            EventKind::ConflictDetected { siblings, .. } => {
                self.hists[Metric::ConflictSiblings as usize].record(siblings);
            }
            EventKind::WalAppend { bytes, .. } => {
                self.hists[Metric::WalAppendBytes as usize].record(bytes);
            }
            EventKind::MessageSent { bytes, .. } => {
                self.hists[Metric::MessageBytes as usize].record(bytes);
            }
            _ => {}
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(events) = &mut self.events {
            if events.len() < self.event_cap {
                events.push(TracedEvent { seq, t_us, kind });
            } else {
                self.events_dropped += 1;
            }
        }
    }

    /// Fold another core's aggregates into this one. Counters,
    /// per-node counters, histograms, and event totals all add, so the
    /// merge commutes and parallel grid cells can be folded in any
    /// order with an identical result. Retained events are *not*
    /// copied: per-cell event logs stay with their cell (their `seq`
    /// numbering is per-run), which is what keeps per-cell JSONL traces
    /// byte-identical regardless of worker scheduling.
    fn merge(&mut self, other: &ObsCore) {
        self.next_seq += other.next_seq;
        self.events_dropped += other.events_dropped;
        for &c in Counter::ALL.iter() {
            self.global.add(c, other.global.get(c));
        }
        for (node, set) in other.per_node.iter().enumerate() {
            for &c in Counter::ALL.iter() {
                let v = set.get(c);
                if v != 0 {
                    self.node_set(node as u64).add(c, v);
                }
            }
        }
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
        for (s, o) in self.series.iter_mut().zip(other.series.iter()) {
            s.merge(o);
        }
        if let Some(theirs) = &other.profile {
            self.profile.get_or_insert_with(Profile::default).merge(theirs);
        }
    }

    fn report(&self) -> MetricsReport {
        let mut per_node = Vec::new();
        for (node, set) in self.per_node.iter().enumerate() {
            if !set.is_empty() {
                per_node.push(NodeCounters {
                    node: node as u64,
                    counters: set.nonzero().map(|(n, v)| (n.to_string(), v)).collect(),
                });
            }
        }
        MetricsReport {
            events_recorded: self.next_seq,
            events_dropped: self.events_dropped,
            counters: Counter::ALL
                .iter()
                .map(|&c| (c.name().to_string(), self.global.get(c)))
                .collect(),
            per_node,
            latencies: Metric::ALL
                .iter()
                .map(|&m| (m.name().to_string(), self.hists[m as usize].summary()))
                .filter(|(_, s)| s.count > 0)
                .collect(),
            timeseries: TsMetric::ALL
                .iter()
                .map(|&m| (m.name().to_string(), self.series[m as usize].summary()))
                .filter(|(_, s)| !s.points.is_empty())
                .collect(),
            profile: self.profile.as_ref().map(|p| p.report()),
        }
    }
}

/// Cheap-to-clone handle through which components report events,
/// counters, and latency observations.
///
/// A disabled recorder ([`Recorder::disabled`], also the `Default`) is a
/// `None` — every call is a branch on an `Option` and returns
/// immediately, so instrumented code pays nothing when observability is
/// off. Enabled recorders share one core, so cloning the handle into
/// many actors aggregates into a single log/counter set.
///
/// # Examples
///
/// ```
/// use obs::{Counter, EventKind, Recorder};
///
/// let rec = Recorder::with_event_log();
/// rec.record(10, EventKind::MessageSent { from: 0, to: 1, bytes: 24, trace: 0, span: 0 });
/// rec.record(55, EventKind::MessageDelivered { from: 0, to: 1, bytes: 24, trace: 0, span: 0 });
///
/// let report = rec.report();
/// assert_eq!(report.counter(Counter::MessagesSent), 1);
/// assert_eq!(report.counter(Counter::MessagesDelivered), 1);
/// assert_eq!(rec.export_jsonl().lines().count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    core: Option<Arc<Mutex<ObsCore>>>,
}

impl Recorder {
    /// A recorder that discards everything (zero cost when threaded
    /// through hot paths).
    pub fn disabled() -> Self {
        Recorder { core: None }
    }

    /// A recorder that aggregates counters and histograms but does not
    /// retain individual events.
    pub fn enabled() -> Self {
        Recorder { core: Some(Arc::new(Mutex::new(ObsCore::new(false)))) }
    }

    /// A recorder that additionally retains the full typed event log
    /// (up to [`DEFAULT_EVENT_CAP`] events) for JSONL export.
    pub fn with_event_log() -> Self {
        Recorder { core: Some(Arc::new(Mutex::new(ObsCore::new(true)))) }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Override the retained-event cap (only meaningful with an event
    /// log). Events past the cap still bump counters and are tallied in
    /// [`MetricsReport::events_dropped`].
    pub fn set_event_cap(&self, cap: usize) {
        if let Some(core) = &self.core {
            core.lock().unwrap().event_cap = cap;
        }
    }

    /// Enable the in-sim profiler on this recorder: subsequent
    /// [`Recorder::prof_record`] calls accumulate per-handler samples
    /// and the [`MetricsReport`] grows a `profile` block. No-op on a
    /// disabled recorder; idempotent (re-enabling keeps existing
    /// samples).
    pub fn enable_profiling(&self) {
        if let Some(core) = &self.core {
            core.lock().unwrap().profile.get_or_insert_with(Profile::default);
        }
    }

    /// Whether profiling is enabled. The simulator caches this at
    /// construction, so enable profiling before building the `Sim`.
    pub fn profiling_enabled(&self) -> bool {
        match &self.core {
            Some(core) => core.lock().unwrap().profile.is_some(),
            None => false,
        }
    }

    /// Attribute subsequent profiler samples to `scheme` (experiment
    /// runners pass their scheme label). No-op unless profiling is
    /// enabled.
    pub fn set_profile_scheme(&self, scheme: &str) {
        if let Some(core) = &self.core {
            if let Some(profile) = &mut core.lock().unwrap().profile {
                profile.set_scheme(scheme);
            }
        }
    }

    /// Fold one handler probe sample into the profile and bump the
    /// `handler_invocations` / `alloc_bytes` counters. The profile
    /// bookkeeping runs under a [`PauseAlloc`] guard so its own
    /// allocations are never tallied against an enclosing probe
    /// (nested-probe reentrancy; see `docs/PROFILING.md`). No-op unless
    /// profiling is enabled.
    pub fn prof_record(
        &self,
        role: &'static str,
        kind: HandlerKind,
        variant: &'static str,
        sample: ProfSample,
    ) {
        if let Some(core) = &self.core {
            let _pause = PauseAlloc::new();
            let mut core = core.lock().unwrap();
            if let Some(profile) = &mut core.profile {
                profile.record(role, kind, variant, sample);
                core.global.add(Counter::HandlerInvocations, 1);
                core.global.add(Counter::AllocBytes, sample.alloc_bytes);
            }
        }
    }

    /// Record a typed event at virtual time `t_us` (microseconds).
    ///
    /// This is the one call sites use: it bumps the event's implied
    /// counters (global and per-node), feeds the relevant histograms,
    /// and appends to the event log when one is enabled.
    pub fn record(&self, t_us: u64, kind: EventKind) {
        if let Some(core) = &self.core {
            core.lock().unwrap().record(t_us, kind);
        }
    }

    /// Bump a counter directly (global only), for quantities that have
    /// no associated event (e.g. transaction commits).
    pub fn count(&self, counter: Counter, delta: u64) {
        if let Some(core) = &self.core {
            core.lock().unwrap().global.add(counter, delta);
        }
    }

    /// Bump a counter for a specific node (and globally).
    pub fn count_node(&self, node: u64, counter: Counter, delta: u64) {
        if let Some(core) = &self.core {
            let mut core = core.lock().unwrap();
            core.global.add(counter, delta);
            core.node_set(node).add(counter, delta);
        }
    }

    /// Record one observation of a continuous metric.
    pub fn observe(&self, metric: Metric, value: u64) {
        if let Some(core) = &self.core {
            core.lock().unwrap().hists[metric as usize].record(value);
        }
    }

    /// Fold one time-series sample taken at virtual time `t_us` into
    /// the windowed series for `metric` (see [`TsMetric`] for what each
    /// series measures). Free when the recorder is disabled.
    pub fn sample(&self, t_us: u64, metric: TsMetric, value: u64) {
        if let Some(core) = &self.core {
            core.lock().unwrap().series[metric as usize].record(t_us, value);
        }
    }

    /// Fold everything `other` aggregated into this recorder.
    ///
    /// This is the merge step of a parallel experiment grid: each cell
    /// runs with its own recorder (no cross-cell lock contention on the
    /// hot path), and the driver absorbs the per-cell recorders into
    /// one aggregate afterwards. The merge is exact and commutative —
    /// counters, per-node counters, histogram buckets, and event totals
    /// all add — so the folded [`MetricsReport`] is identical to the
    /// one a single shared recorder would have produced, independent of
    /// scheduling. Retained event logs are intentionally *not* copied;
    /// export per-cell logs from the per-cell recorders instead.
    ///
    /// No-op if either side is disabled. `other` is left untouched.
    pub fn absorb(&self, other: &Recorder) {
        if let (Some(mine), Some(theirs)) = (&self.core, &other.core) {
            if Arc::ptr_eq(mine, theirs) {
                return; // same core: nothing to fold, and avoid deadlock
            }
            let theirs = theirs.lock().unwrap();
            mine.lock().unwrap().merge(&theirs);
        }
    }

    /// Snapshot the aggregated counters and histogram summaries.
    ///
    /// Disabled recorders return an all-zero report.
    pub fn report(&self) -> MetricsReport {
        match &self.core {
            Some(core) => core.lock().unwrap().report(),
            None => MetricsReport::default(),
        }
    }

    /// Run `f` over every retained event, in sequence order.
    ///
    /// Returns the number of events visited (0 when the event log is
    /// disabled). Checkers use this to attribute violations without
    /// cloning the log.
    pub fn for_each_event<F: FnMut(&TracedEvent)>(&self, mut f: F) -> usize {
        match &self.core {
            Some(core) => {
                let core = core.lock().unwrap();
                match &core.events {
                    Some(events) => {
                        for ev in events {
                            f(ev);
                        }
                        events.len()
                    }
                    None => 0,
                }
            }
            None => 0,
        }
    }

    /// Clone out the retained event log (empty if disabled).
    pub fn events(&self) -> Vec<TracedEvent> {
        let mut out = Vec::new();
        self.for_each_event(|ev| out.push(ev.clone()));
        out
    }

    /// Serialize the retained event log as JSONL (one event per line,
    /// trailing newline after each). Byte-identical across runs that
    /// produce identical event sequences.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        self.for_each_event(|ev| {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        });
        out
    }

    /// Write the JSONL event log to `path`.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.export_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropReason, QuorumKind};

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        rec.record(0, EventKind::Crash { node: 1 });
        rec.count(Counter::TxnCommits, 5);
        assert!(!rec.is_enabled());
        assert_eq!(rec.report().counter(Counter::TxnCommits), 0);
        assert_eq!(rec.export_jsonl(), "");
    }

    #[test]
    fn events_imply_counters_and_histograms() {
        let rec = Recorder::with_event_log();
        rec.record(1, EventKind::MessageSent { from: 0, to: 1, bytes: 100, trace: 0, span: 0 });
        rec.record(
            2,
            EventKind::MessageDropped {
                from: 0,
                to: 1,
                reason: DropReason::Loss,
                trace: 0,
                span: 0,
            },
        );
        rec.record(
            3,
            EventKind::QuorumWait {
                node: 0,
                kind: QuorumKind::Read,
                waited_us: 250,
                acks: 2,
                needed: 2,
            },
        );
        let report = rec.report();
        assert_eq!(report.counter(Counter::MessagesSent), 1);
        assert_eq!(report.counter(Counter::MessagesDropped), 1);
        assert_eq!(report.counter(Counter::BytesSent), 100);
        assert_eq!(report.counter(Counter::QuorumReads), 1);
        let wait = &report.latencies.iter().find(|(n, _)| n == "quorum_read_wait_us").unwrap().1;
        assert_eq!(wait.count, 1);
        assert_eq!(wait.max, 250);
        assert_eq!(report.events_recorded, 3);
    }

    #[test]
    fn clones_share_one_core() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.count_node(2, Counter::WalAppends, 1);
        assert_eq!(rec.report().counter(Counter::WalAppends), 1);
        assert_eq!(rec.report().node_counter(2, Counter::WalAppends), 1);
    }

    #[test]
    fn absorb_equals_shared_recorder() {
        // Two cells with private recorders, folded afterwards, must
        // match one recorder shared by both cells.
        let shared = Recorder::enabled();
        let cell_a = Recorder::enabled();
        let cell_b = Recorder::enabled();
        for rec in [&shared, &cell_a] {
            rec.record(1, EventKind::MessageSent { from: 0, to: 1, bytes: 64, trace: 0, span: 0 });
            rec.record(
                2,
                EventKind::MessageDelivered { from: 0, to: 1, bytes: 64, trace: 0, span: 0 },
            );
            rec.count_node(3, Counter::WalAppends, 2);
            rec.sample(1_000, crate::TsMetric::StalenessVersions, 2);
        }
        for rec in [&shared, &cell_b] {
            rec.record(
                4,
                EventKind::QuorumWait {
                    node: 1,
                    kind: QuorumKind::Write,
                    waited_us: 99,
                    acks: 2,
                    needed: 2,
                },
            );
            rec.count(Counter::TxnCommits, 1);
            rec.sample(150_000, crate::TsMetric::StalenessVersions, 5);
            rec.sample(150_000, crate::TsMetric::InflightDepth, 3);
        }
        let folded = Recorder::enabled();
        folded.absorb(&cell_a);
        folded.absorb(&cell_b);
        assert_eq!(folded.report(), shared.report());
        // Fold order does not matter.
        let folded_rev = Recorder::enabled();
        folded_rev.absorb(&cell_b);
        folded_rev.absorb(&cell_a);
        assert_eq!(folded_rev.report(), shared.report());
    }

    #[test]
    fn absorb_is_inert_when_either_side_is_disabled() {
        let on = Recorder::enabled();
        on.count(Counter::TxnCommits, 3);
        let off = Recorder::disabled();
        off.absorb(&on); // no panic, still disabled
        assert_eq!(off.report(), MetricsReport::default());
        on.absorb(&off);
        on.absorb(&on.clone()); // same core: must not deadlock or double
        assert_eq!(on.report().counter(Counter::TxnCommits), 3);
    }

    #[test]
    fn profiling_is_opt_in_and_absorbs_across_recorders() {
        use crate::prof::{HandlerKind, ProfSample, NO_VARIANT};
        let sample = ProfSample { wall_ns: 10, alloc_bytes: 128, alloc_count: 4 };

        // Off by default: prof_record is inert.
        let plain = Recorder::enabled();
        plain.prof_record("replica", HandlerKind::Message, "Put", sample);
        assert!(!plain.profiling_enabled());
        assert!(plain.report().profile.is_none());
        assert_eq!(plain.report().counter(Counter::HandlerInvocations), 0);

        // Two profiled cells folded equal one shared profiled recorder.
        let shared = Recorder::enabled();
        shared.enable_profiling();
        let cell_a = Recorder::enabled();
        cell_a.enable_profiling();
        let cell_b = Recorder::enabled();
        cell_b.enable_profiling();
        for rec in [&shared, &cell_a] {
            rec.set_profile_scheme("paxos");
            rec.prof_record("replica", HandlerKind::Message, "Put", sample);
        }
        for rec in [&shared, &cell_b] {
            rec.set_profile_scheme("causal");
            rec.prof_record("client", HandlerKind::Timer, NO_VARIANT, sample);
        }
        let folded = Recorder::enabled();
        folded.absorb(&cell_a);
        folded.absorb(&cell_b);
        assert_eq!(folded.report(), shared.report());
        let profile = folded.report().profile.expect("profile absorbed");
        assert_eq!(profile.total_invocations(), 2);
        assert_eq!(folded.report().counter(Counter::HandlerInvocations), 2);
        assert_eq!(folded.report().counter(Counter::AllocBytes), 256);
        // Absorbing a profiled cell into an unprofiled aggregate turns
        // profiling on there (the grid path relies on this).
        assert!(folded.profiling_enabled());
    }

    #[test]
    fn event_cap_drops_are_counted() {
        let rec = Recorder::with_event_log();
        rec.set_event_cap(2);
        for i in 0..5 {
            rec.record(i, EventKind::Crash { node: 0 });
        }
        let report = rec.report();
        assert_eq!(report.events_recorded, 5);
        assert_eq!(report.events_dropped, 3);
        assert_eq!(rec.export_jsonl().lines().count(), 2);
        // Counters still see every event.
        assert_eq!(report.counter(Counter::Crashes), 5);
    }
}
