//! Trace and span identifiers for causal operation tracing.
//!
//! A **trace** groups every event caused by one client operation (a
//! read, a write, or a transaction): the client issue, the coordinator
//! hop, each per-replica send/ack, read-repair pushes, and the final
//! completion. A **span** is one node-scoped step inside a trace; spans
//! nest (each span knows its parent) so the log reconstructs into a
//! span *tree* per operation.
//!
//! Both ids are plain `u64` newtypes allocated by the simulator from a
//! serial per-run counter, which makes traces a pure function of the
//! run: the same seed yields byte-identical trace ids regardless of
//! `--jobs` (see `docs/TRACING.md` for the allocation rules). The value
//! `0` is reserved to mean "no trace/span" so untraced events (gossip
//! background traffic, timers outside any operation) can carry an
//! explicit absent marker in the JSONL output.

/// Identifier of one end-to-end operation trace. `0` means "none".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The reserved "no trace" id.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this is the reserved "no trace" id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of one span within a trace. `0` means "none".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The reserved "no span" id.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the reserved "no span" id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// The step completed normally.
    Ok,
    /// The step failed (timeout, quorum not reached, abort).
    Failed,
    /// The run ended (horizon or teardown) with the span still open.
    /// Mirrors [`crate::DropReason::Shutdown`] for in-flight messages:
    /// without it, spans open at the horizon would break the
    /// `spans_opened == spans_closed` conservation identity.
    Abandoned,
}

impl SpanStatus {
    /// Stable snake_case name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Failed => "failed",
            SpanStatus::Abandoned => "abandoned",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_none() {
        assert!(TraceId::NONE.is_none());
        assert!(SpanId::NONE.is_none());
        assert!(!TraceId(1).is_none());
        assert!(!SpanId(7).is_none());
        assert_eq!(TraceId::default(), TraceId::NONE);
    }

    #[test]
    fn status_names_are_stable() {
        assert_eq!(SpanStatus::Ok.name(), "ok");
        assert_eq!(SpanStatus::Failed.name(), "failed");
        assert_eq!(SpanStatus::Abandoned.name(), "abandoned");
    }
}
