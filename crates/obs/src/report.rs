//! Exported metrics snapshots ([`MetricsReport`]) and snapshot diffing.

use serde::{Serialize, Value};

use crate::counters::Counter;
use crate::hist::HistogramSummary;
use crate::prof::ProfileReport;
use crate::timeseries::TimeSeriesSummary;

/// Non-zero counters for one node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeCounters {
    /// The node's id.
    pub node: u64,
    /// `(counter_name, value)` pairs in export order, zeros omitted.
    pub counters: Vec<(String, u64)>,
}

/// A point-in-time snapshot of everything a [`crate::Recorder`]
/// aggregated: counters (global and per node) and histogram summaries.
///
/// This is the `metrics` section embedded in every `results/*.json`;
/// the field-by-field contract lives in `docs/METRICS.md`.
///
/// # Examples
///
/// Diffing two snapshots isolates the cost of a phase:
///
/// ```
/// use obs::{Counter, EventKind, Recorder};
///
/// let rec = Recorder::enabled();
/// rec.record(0, EventKind::MessageSent { from: 0, to: 1, bytes: 8, trace: 0, span: 0 });
/// let before = rec.report();
///
/// // ... some phase of the run does more work ...
/// rec.record(1, EventKind::MessageSent { from: 0, to: 1, bytes: 8, trace: 0, span: 0 });
/// rec.record(2, EventKind::MessageSent { from: 1, to: 0, bytes: 8, trace: 0, span: 0 });
///
/// let delta = rec.report().diff(&before);
/// assert_eq!(delta.counter(Counter::MessagesSent), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Total events recorded (including any past the event-log cap).
    pub events_recorded: u64,
    /// Events not retained in the log because the cap was hit.
    pub events_dropped: u64,
    /// Global counters as `(name, value)`, every counter present, in
    /// the fixed order of [`Counter::ALL`].
    pub counters: Vec<(String, u64)>,
    /// Per-node non-zero counters, ordered by node id.
    pub per_node: Vec<NodeCounters>,
    /// Histogram summaries as `(metric_name, summary)`, empty
    /// histograms omitted.
    pub latencies: Vec<(String, HistogramSummary)>,
    /// Windowed time series as `(metric_name, summary)`, empty series
    /// omitted. See [`crate::TsMetric`] for the sampled quantities.
    pub timeseries: Vec<(String, TimeSeriesSummary)>,
    /// Per-handler profiler output, present only when profiling was
    /// enabled ([`crate::Recorder::enable_profiling`]); serialized as a
    /// `profile` member only when present, so unprofiled reports keep
    /// their historical JSON shape. See `docs/PROFILING.md`.
    pub profile: Option<ProfileReport>,
}

impl MetricsReport {
    /// Look up a global counter value (0 if absent).
    pub fn counter(&self, counter: Counter) -> u64 {
        let name = counter.name();
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
    }

    /// Look up a counter value for one node (0 if absent).
    pub fn node_counter(&self, node: u64, counter: Counter) -> u64 {
        let name = counter.name();
        self.per_node
            .iter()
            .find(|nc| nc.node == node)
            .and_then(|nc| nc.counters.iter().find(|(n, _)| n == name))
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Subtract an earlier snapshot from this one, yielding the
    /// activity between the two (counters and event totals only;
    /// histogram summaries and time series are not subtractable and
    /// are taken from `self`).
    pub fn diff(&self, earlier: &MetricsReport) -> MetricsReport {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                let prev =
                    earlier.counters.iter().find(|(n, _)| n == name).map(|&(_, p)| p).unwrap_or(0);
                (name.clone(), v.saturating_sub(prev))
            })
            .collect();
        let per_node = self
            .per_node
            .iter()
            .map(|nc| {
                let prev = earlier.per_node.iter().find(|p| p.node == nc.node);
                NodeCounters {
                    node: nc.node,
                    counters: nc
                        .counters
                        .iter()
                        .map(|(name, v)| {
                            let p = prev
                                .and_then(|p| p.counters.iter().find(|(n, _)| n == name))
                                .map(|&(_, p)| p)
                                .unwrap_or(0);
                            (name.clone(), v.saturating_sub(p))
                        })
                        .collect(),
                }
            })
            .collect();
        MetricsReport {
            events_recorded: self.events_recorded.saturating_sub(earlier.events_recorded),
            events_dropped: self.events_dropped.saturating_sub(earlier.events_dropped),
            counters,
            per_node,
            latencies: self.latencies.clone(),
            timeseries: self.timeseries.clone(),
            profile: self.profile.clone(),
        }
    }

    /// The conservation identity every run must satisfy:
    /// `messages_sent == messages_delivered + messages_dropped`.
    ///
    /// Returns `Err` with the three values when violated, so tests can
    /// print a useful failure.
    pub fn check_message_conservation(&self) -> Result<(), (u64, u64, u64)> {
        let sent = self.counter(Counter::MessagesSent);
        let delivered = self.counter(Counter::MessagesDelivered);
        let dropped = self.counter(Counter::MessagesDropped);
        if sent == delivered + dropped {
            Ok(())
        } else {
            Err((sent, delivered, dropped))
        }
    }
}

impl Serialize for NodeCounters {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("node".to_string(), Value::U64(self.node)),
            (
                "counters".to_string(),
                Value::Object(
                    self.counters.iter().map(|(n, v)| (n.clone(), Value::U64(*v))).collect(),
                ),
            ),
        ])
    }
}

impl Serialize for MetricsReport {
    fn to_value(&self) -> Value {
        let mut members = vec![
            ("events_recorded".to_string(), Value::U64(self.events_recorded)),
            ("events_dropped".to_string(), Value::U64(self.events_dropped)),
            (
                "counters".to_string(),
                Value::Object(
                    self.counters.iter().map(|(n, v)| (n.clone(), Value::U64(*v))).collect(),
                ),
            ),
            (
                "per_node".to_string(),
                Value::Array(self.per_node.iter().map(|nc| nc.to_value()).collect()),
            ),
            (
                "latencies".to_string(),
                Value::Object(
                    self.latencies.iter().map(|(n, s)| (n.clone(), s.to_value())).collect(),
                ),
            ),
            (
                "timeseries".to_string(),
                Value::Object(
                    self.timeseries.iter().map(|(n, s)| (n.clone(), s.to_value())).collect(),
                ),
            ),
        ];
        if let Some(profile) = &self.profile {
            members.push(("profile".to_string(), profile.to_value()));
        }
        Value::Object(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::Recorder;

    #[test]
    fn conservation_check_catches_imbalance() {
        let rec = Recorder::enabled();
        rec.record(0, EventKind::MessageSent { from: 0, to: 1, bytes: 8, trace: 0, span: 0 });
        let report = rec.report();
        assert_eq!(report.check_message_conservation(), Err((1, 0, 0)));
        rec.record(5, EventKind::MessageDelivered { from: 0, to: 1, bytes: 8, trace: 0, span: 0 });
        assert!(rec.report().check_message_conservation().is_ok());
    }

    #[test]
    fn diff_subtracts_counters() {
        let rec = Recorder::enabled();
        rec.count_node(0, Counter::WalAppends, 3);
        let before = rec.report();
        rec.count_node(0, Counter::WalAppends, 4);
        let delta = rec.report().diff(&before);
        assert_eq!(delta.counter(Counter::WalAppends), 4);
        assert_eq!(delta.node_counter(0, Counter::WalAppends), 4);
    }

    #[test]
    fn report_serializes_to_deterministic_json() {
        let rec = Recorder::enabled();
        rec.record(0, EventKind::WalAppend { node: 1, key: 9, bytes: 32 });
        let a = serde::Serialize::to_value(&rec.report()).to_json();
        let b = serde::Serialize::to_value(&rec.report()).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"wal_appends\":1"));
        assert!(a.contains("\"wal_append_bytes\""));
    }
}
