//! Windowed time-series telemetry over virtual time.
//!
//! Aggregate counters answer "how much, in total"; these series answer
//! "how did it evolve over the run". Samples are folded into
//! fixed-width virtual-time buckets holding `(count, sum, max)` — all
//! `u64`s — so merging per-cell series from a parallel grid run is
//! *exact* and commutative, the same property [`crate::Histogram`]
//! gives the latency summaries: `--jobs 1` and `--jobs 8` produce
//! byte-identical `timeseries` sections.
//!
//! The sampled quantities ([`TsMetric`]) are the consistency signals
//! the paper treats as a measurable spectrum: staleness of reads,
//! replica divergence, visibility lag, and in-flight message depth.

use serde::{Serialize, Value};

/// Default virtual-time bucket width: 100 ms.
pub const DEFAULT_TS_BUCKET_US: u64 = 100_000;

/// The quantities tracked as windowed time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum TsMetric {
    /// Version lag of a completed read: how many committed writes to
    /// the key the returned version was behind (0 = fresh).
    StalenessVersions,
    /// Microseconds between a write committing and a later read first
    /// observing it (sampled at the observing read).
    VisibilityLagUs,
    /// Distinct versions of a key across replicas at a probe instant
    /// (1 = converged).
    ReplicaDivergence,
    /// Messages in flight in the simulated network at a probe instant.
    InflightDepth,
}

impl TsMetric {
    /// All time-series metrics, in export order.
    pub const ALL: [TsMetric; 4] = [
        TsMetric::StalenessVersions,
        TsMetric::VisibilityLagUs,
        TsMetric::ReplicaDivergence,
        TsMetric::InflightDepth,
    ];

    /// Number of distinct time-series metrics.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used in exports and `docs/METRICS.md`.
    pub fn name(self) -> &'static str {
        match self {
            TsMetric::StalenessVersions => "staleness_versions",
            TsMetric::VisibilityLagUs => "visibility_lag_us",
            TsMetric::ReplicaDivergence => "replica_divergence",
            TsMetric::InflightDepth => "inflight_depth",
        }
    }
}

/// One fixed-width bucket of a [`TimeSeries`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TsBucket {
    /// Samples folded into this bucket.
    pub count: u64,
    /// Sum of sample values.
    pub sum: u64,
    /// Maximum sample value.
    pub max: u64,
}

/// A windowed time series: fixed-width virtual-time buckets of
/// `(count, sum, max)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    bucket_us: u64,
    buckets: Vec<TsBucket>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(DEFAULT_TS_BUCKET_US)
    }
}

impl TimeSeries {
    /// An empty series with the given bucket width in microseconds
    /// (clamped to at least 1).
    pub fn new(bucket_us: u64) -> Self {
        TimeSeries { bucket_us: bucket_us.max(1), buckets: Vec::new() }
    }

    /// The bucket width in microseconds.
    pub fn bucket_us(&self) -> u64 {
        self.bucket_us
    }

    /// Total samples across all buckets.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.count == 0)
    }

    /// Fold one sample taken at virtual time `t_us` into its bucket.
    pub fn record(&mut self, t_us: u64, value: u64) {
        let idx = (t_us / self.bucket_us) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, TsBucket::default());
        }
        let b = &mut self.buckets[idx];
        b.count += 1;
        b.sum = b.sum.saturating_add(value);
        b.max = b.max.max(value);
    }

    /// Merge another series into this one.
    ///
    /// Exact and commutative (counts and sums add, maxes take the max),
    /// so per-cell series from a parallel grid fold in any order to the
    /// same result a single shared series would hold. Both sides must
    /// use the same bucket width; mismatched widths panic because a
    /// lossy re-bucketing would silently break the merge-identity
    /// guarantee the grid tests rely on.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.bucket_us, other.bucket_us,
            "cannot merge time series with different bucket widths"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), TsBucket::default());
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            b.count += o.count;
            b.sum = b.sum.saturating_add(o.sum);
            b.max = b.max.max(o.max);
        }
    }

    /// Non-empty buckets as [`TsPoint`]s (bucket start time, count,
    /// sum, max), in time order. Empty buckets are skipped.
    pub fn points(&self) -> Vec<TsPoint> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.count > 0)
            .map(|(i, b)| TsPoint {
                t_us: i as u64 * self.bucket_us,
                count: b.count,
                sum: b.sum,
                max: b.max,
            })
            .collect()
    }

    /// Collapse into the export form embedded in `results/*.json`.
    pub fn summary(&self) -> TimeSeriesSummary {
        TimeSeriesSummary { bucket_us: self.bucket_us, points: self.points() }
    }
}

/// One exported point of a time series: the aggregate of all samples
/// whose virtual time fell in `[t_us, t_us + bucket_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsPoint {
    /// Bucket start, microseconds of virtual time.
    pub t_us: u64,
    /// Samples in the bucket.
    pub count: u64,
    /// Sum of sample values (exact; divide by `count` for the mean).
    pub sum: u64,
    /// Maximum sample value in the bucket.
    pub max: u64,
}

impl TsPoint {
    /// Mean sample value in the bucket.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Export form of a [`TimeSeries`]: bucket width plus non-empty points.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeriesSummary {
    /// Bucket width in microseconds.
    pub bucket_us: u64,
    /// Non-empty buckets in time order.
    pub points: Vec<TsPoint>,
}

impl Serialize for TsPoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("t_us".to_string(), Value::U64(self.t_us)),
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::U64(self.sum)),
            ("mean".to_string(), Value::F64(self.mean())),
            ("max".to_string(), Value::U64(self.max)),
        ])
    }
}

impl Serialize for TimeSeriesSummary {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bucket_us".to_string(), Value::U64(self.bucket_us)),
            (
                "points".to_string(),
                Value::Array(self.points.iter().map(|p| p.to_value()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_their_buckets() {
        let mut ts = TimeSeries::new(1_000);
        ts.record(0, 5);
        ts.record(999, 7);
        ts.record(1_000, 1);
        ts.record(5_500, 3);
        let points = ts.points();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0], TsPoint { t_us: 0, count: 2, sum: 12, max: 7 });
        assert_eq!(points[1], TsPoint { t_us: 1_000, count: 1, sum: 1, max: 1 });
        assert_eq!(points[2], TsPoint { t_us: 5_000, count: 1, sum: 3, max: 3 });
        assert_eq!(ts.count(), 4);
        assert!((points[0].mean() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_serial_recording() {
        let mut serial = TimeSeries::new(500);
        let mut a = TimeSeries::new(500);
        let mut b = TimeSeries::new(500);
        for (t, v) in [(0u64, 2u64), (100, 4), (2_700, 9)] {
            serial.record(t, v);
            a.record(t, v);
        }
        for (t, v) in [(600u64, 1u64), (2_750, 3)] {
            serial.record(t, v);
            b.record(t, v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, serial);
        assert_eq!(ba, serial);
        // Merging an empty series is the identity.
        ab.merge(&TimeSeries::new(500));
        assert_eq!(ab, serial);
    }

    #[test]
    fn empty_series_exports_no_points() {
        let ts = TimeSeries::default();
        assert!(ts.is_empty());
        assert!(ts.summary().points.is_empty());
        assert_eq!(ts.summary().bucket_us, DEFAULT_TS_BUCKET_US);
    }

    #[test]
    fn metric_names_are_unique_and_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for m in TsMetric::ALL {
            let name = m.name();
            assert!(seen.insert(name), "duplicate ts metric name {name}");
            assert!(
                name.chars().all(|ch| ch.is_ascii_lowercase() || ch == '_'),
                "{name} is not snake_case"
            );
        }
        assert_eq!(seen.len(), TsMetric::COUNT);
    }
}
