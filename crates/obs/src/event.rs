//! Typed simulation events and their JSONL encoding.
//!
//! Every event names the *cause* of an observable protocol behavior:
//! which message was dropped and why, which node ran an anti-entropy
//! round, how long a coordinator waited for its quorum. Checkers and
//! humans consume the log to attribute end-to-end anomalies (staleness,
//! latency spikes, unavailability) to concrete mechanisms.
//!
//! The wire format is one JSON object per line (JSONL), documented field
//! by field in `docs/METRICS.md`. Encoding is hand-written so that the
//! byte output is a pure function of the event sequence — the
//! determinism tests compare whole files.

use crate::counters::Counter;
use crate::span::SpanStatus;

/// Why the network dropped a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Sender and destination are in different partition islands.
    Partition,
    /// Random loss (the fault schedule's loss rate fired).
    Loss,
    /// The destination node is crashed.
    CrashedDestination,
    /// The simulation ended (horizon reached or torn down) with the
    /// message still in flight. Without this, in-flight messages would
    /// silently break the `messages_sent == messages_delivered +
    /// messages_dropped` conservation identity.
    Shutdown,
}

impl DropReason {
    /// Stable snake_case name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Partition => "partition",
            DropReason::Loss => "loss",
            DropReason::CrashedDestination => "crashed_destination",
            DropReason::Shutdown => "shutdown",
        }
    }
}

/// Whether a quorum operation was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumKind {
    /// Read quorum (R acks).
    Read,
    /// Write quorum (W acks).
    Write,
}

impl QuorumKind {
    /// Stable snake_case name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            QuorumKind::Read => "read",
            QuorumKind::Write => "write",
        }
    }
}

/// Whether a completed client operation was a read or a write.
///
/// Mirrors the simulator's `OpKind` without importing it — `obs` stays
/// independent of `simnet` (see [`EventKind`] docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientOpKind {
    /// A read operation.
    Read,
    /// A write operation.
    Write,
}

impl ClientOpKind {
    /// Stable snake_case name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            ClientOpKind::Read => "read",
            ClientOpKind::Write => "write",
        }
    }
}

/// A structured simulation event.
///
/// Node ids are raw `u64`s (the simulator's `NodeId` index) so that this
/// crate stays independent of `simnet` and can also serve non-simulated
/// components (e.g. the WAL in a threaded deployment).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A message left `from` bound for `to`. `bytes` is the approximate
    /// in-memory size of the payload.
    MessageSent {
        /// Sending node.
        from: u64,
        /// Destination node.
        to: u64,
        /// Approximate payload size in bytes.
        bytes: u64,
        /// Trace carrying this message (0 = untraced).
        trace: u64,
        /// Span active when the message was sent (0 = none).
        span: u64,
    },
    /// A message from `from` was delivered to `to`.
    MessageDelivered {
        /// Sending node.
        from: u64,
        /// Destination node.
        to: u64,
        /// Approximate payload size in bytes.
        bytes: u64,
        /// Trace carrying this message (0 = untraced).
        trace: u64,
        /// Span active when the message was sent (0 = none).
        span: u64,
    },
    /// A message from `from` to `to` was dropped.
    MessageDropped {
        /// Sending node.
        from: u64,
        /// Destination node.
        to: u64,
        /// Why the network dropped it.
        reason: DropReason,
        /// Trace carrying this message (0 = untraced).
        trace: u64,
        /// Span active when the message was sent (0 = none).
        span: u64,
    },
    /// A replica initiated an anti-entropy (gossip) exchange round.
    AntiEntropyRound {
        /// The initiating replica.
        node: u64,
        /// How many peers it contacted this round.
        fanout: u64,
    },
    /// A coordinator assembled a quorum: it waited `waited_us` between
    /// issuing the request and receiving the `needed`-th ack.
    QuorumWait {
        /// The coordinating node.
        node: u64,
        /// Read or write quorum.
        kind: QuorumKind,
        /// Microseconds from issue to quorum.
        waited_us: u64,
        /// Acks actually received when the quorum completed.
        acks: u64,
        /// Acks required (R or W).
        needed: u64,
    },
    /// Concurrent versions of `key` were detected at `node`
    /// (`siblings` ≥ 2 versions with incomparable causality).
    ConflictDetected {
        /// The observing node.
        node: u64,
        /// The key with concurrent versions.
        key: u64,
        /// Number of concurrent siblings.
        siblings: u64,
    },
    /// A conflict on `key` at `node` was resolved down to `survivors`
    /// version(s) (last-writer-wins, merge, or read-repair).
    ConflictResolved {
        /// The resolving node.
        node: u64,
        /// The key that was resolved.
        key: u64,
        /// Versions remaining after resolution.
        survivors: u64,
    },
    /// A record was appended to `node`'s write-ahead log.
    WalAppend {
        /// The appending node.
        node: u64,
        /// The key written.
        key: u64,
        /// Encoded record size in bytes.
        bytes: u64,
    },
    /// A network partition began; `island` lists the nodes cut off from
    /// the rest.
    PartitionStart {
        /// Nodes in the minority island.
        island: Vec<u64>,
    },
    /// The current network partition healed.
    PartitionHeal,
    /// `node` crashed (stops processing until recovery).
    Crash {
        /// The crashed node.
        node: u64,
    },
    /// `node` recovered from a crash.
    Recover {
        /// The recovered node.
        node: u64,
    },
    /// Cluster membership changed: `node` joined (`join`) or left the
    /// logical cluster, triggering deterministic ring rebalancing in
    /// ring-aware protocols.
    MembershipChange {
        /// The node joining or leaving.
        node: u64,
        /// `true` = join, `false` = leave.
        join: bool,
    },
    /// `node` rebuilt its store by replaying its write-ahead log after an
    /// amnesia (state-wiping) restart.
    WalReplay {
        /// The recovering node.
        node: u64,
        /// Number of log records replayed into the store.
        records: u64,
    },
    /// A trace span opened at `node`. Together with the matching
    /// [`EventKind::SpanClose`], the pair bounds one step of an
    /// operation in virtual time; `parent` links the span tree.
    SpanOpen {
        /// The trace this span belongs to.
        trace: u64,
        /// This span's id (unique within the run).
        span: u64,
        /// Parent span id (0 for a root span).
        parent: u64,
        /// The node the step ran on.
        node: u64,
        /// Static step name (e.g. `op_read`, `quorum_write`).
        name: &'static str,
    },
    /// The span opened by the matching [`EventKind::SpanOpen`] closed.
    SpanClose {
        /// The trace this span belongs to.
        trace: u64,
        /// The closing span's id.
        span: u64,
        /// The node the step ran on.
        node: u64,
        /// How the step ended.
        status: SpanStatus,
    },
    /// A client operation completed (or timed out) — the event-stream
    /// mirror of the simulator's `OpRecord`, emitted at completion time
    /// so the streaming consistency checkers (`consistency::stream`,
    /// `tracequery check --stream`) can verify guarantees online from
    /// the JSONL log alone, without a materialized trace.
    OpComplete {
        /// The session (client) that issued the operation.
        session: u64,
        /// Per-session operation id, in issue order.
        op: u64,
        /// The key operated on.
        key: u64,
        /// Read or write.
        kind: ClientOpKind,
        /// Whether the operation succeeded (false = timeout).
        ok: bool,
        /// When the client invoked the operation (simulation µs); the
        /// event's own `t_us` is the completion time.
        invoked_us: u64,
        /// The replica that served (or was targeted by) the operation.
        replica: u64,
        /// For writes: the globally unique value written.
        value: Option<u64>,
        /// For reads: the observed value(s); empty if the key was absent.
        values: Vec<u64>,
        /// Lamport `(counter, actor)` stamp of the version written/read.
        stamp: Option<(u64, u64)>,
        /// Origin wall time (µs) of the version a read returned.
        version_ts_us: Option<u64>,
    },
}

impl EventKind {
    /// Stable snake_case type tag used in the JSONL encoding.
    pub fn type_name(&self) -> &'static str {
        match self {
            EventKind::MessageSent { .. } => "message_sent",
            EventKind::MessageDelivered { .. } => "message_delivered",
            EventKind::MessageDropped { .. } => "message_dropped",
            EventKind::AntiEntropyRound { .. } => "anti_entropy_round",
            EventKind::QuorumWait { .. } => "quorum_wait",
            EventKind::ConflictDetected { .. } => "conflict_detected",
            EventKind::ConflictResolved { .. } => "conflict_resolved",
            EventKind::WalAppend { .. } => "wal_append",
            EventKind::PartitionStart { .. } => "partition_start",
            EventKind::PartitionHeal => "partition_heal",
            EventKind::Crash { .. } => "crash",
            EventKind::Recover { .. } => "recover",
            EventKind::MembershipChange { .. } => "membership_change",
            EventKind::WalReplay { .. } => "wal_replay",
            EventKind::SpanOpen { .. } => "span_open",
            EventKind::SpanClose { .. } => "span_close",
            EventKind::OpComplete { .. } => "op_complete",
        }
    }

    /// The counters this event implies, as `(counter, node, delta)`
    /// triples; `node = None` updates only the global set.
    ///
    /// No event implies more than two counters, so this returns a
    /// fixed-size array iterator instead of a `Vec`: the recorder calls
    /// it once per recorded event (every span open/close on the handler
    /// hot path), and a heap allocation per event shows up directly in
    /// the in-sim profiler's per-handler `alloc_bytes`.
    pub(crate) fn implied_counters(&self) -> impl Iterator<Item = (Counter, Option<u64>, u64)> {
        type Triple = (Counter, Option<u64>, u64);
        let pair: [Option<Triple>; 2] = match *self {
            EventKind::MessageSent { from, bytes, .. } => [
                Some((Counter::MessagesSent, Some(from), 1)),
                Some((Counter::BytesSent, Some(from), bytes)),
            ],
            EventKind::MessageDelivered { to, bytes, .. } => [
                Some((Counter::MessagesDelivered, Some(to), 1)),
                Some((Counter::BytesDelivered, Some(to), bytes)),
            ],
            EventKind::MessageDropped { to, .. } => {
                [Some((Counter::MessagesDropped, Some(to), 1)), None]
            }
            EventKind::AntiEntropyRound { node, .. } => {
                [Some((Counter::AntiEntropyRounds, Some(node), 1)), None]
            }
            EventKind::QuorumWait { node, kind, .. } => [
                Some((
                    match kind {
                        QuorumKind::Read => Counter::QuorumReads,
                        QuorumKind::Write => Counter::QuorumWrites,
                    },
                    Some(node),
                    1,
                )),
                None,
            ],
            EventKind::ConflictDetected { node, .. } => {
                [Some((Counter::ConflictsDetected, Some(node), 1)), None]
            }
            EventKind::ConflictResolved { node, .. } => {
                [Some((Counter::ConflictsResolved, Some(node), 1)), None]
            }
            EventKind::WalAppend { node, bytes, .. } => [
                Some((Counter::WalAppends, Some(node), 1)),
                Some((Counter::WalBytes, Some(node), bytes)),
            ],
            EventKind::PartitionStart { .. } => [Some((Counter::PartitionsStarted, None, 1)), None],
            EventKind::PartitionHeal => [Some((Counter::PartitionsHealed, None, 1)), None],
            EventKind::Crash { node } => [Some((Counter::Crashes, Some(node), 1)), None],
            EventKind::Recover { node } => [Some((Counter::Recoveries, Some(node), 1)), None],
            // Membership itself bumps no counter; the rebalancing it
            // triggers is counted by actors (`rebalanced_keys`).
            EventKind::MembershipChange { .. } => [None, None],
            EventKind::WalReplay { node, records } => {
                [Some((Counter::WalReplayedRecords, Some(node), records)), None]
            }
            EventKind::SpanOpen { node, .. } => [Some((Counter::SpansOpened, Some(node), 1)), None],
            EventKind::SpanClose { node, status, .. } => [
                Some((Counter::SpansClosed, Some(node), 1)),
                (status == SpanStatus::Abandoned).then_some((
                    Counter::SpansAbandoned,
                    Some(node),
                    1,
                )),
            ],
            // Operation completions bump no counter: the op trace is the
            // source of truth for operation counts, and the streaming
            // checkers count their own findings (`stream_violations`).
            EventKind::OpComplete { .. } => [None, None],
        };
        pair.into_iter().flatten()
    }
}

/// An [`EventKind`] stamped with its virtual time and sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Monotonic per-run sequence number (assigned by the recorder).
    pub seq: u64,
    /// Virtual time in microseconds since simulation start.
    pub t_us: u64,
    /// The event itself.
    pub kind: EventKind,
}

impl TracedEvent {
    /// Encode as one JSONL line (no trailing newline).
    ///
    /// Field order is fixed (`seq`, `t_us`, `type`, then event fields in
    /// declaration order) so identical event sequences produce
    /// byte-identical logs.
    pub fn to_json_line(&self) -> String {
        fn field(s: &mut String, name: &str, value: u64) {
            s.push_str(",\"");
            s.push_str(name);
            s.push_str("\":");
            s.push_str(&value.to_string());
        }
        let mut s = String::with_capacity(96);
        s.push_str("{\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"t_us\":");
        s.push_str(&self.t_us.to_string());
        s.push_str(",\"type\":\"");
        s.push_str(self.kind.type_name());
        s.push('"');
        match &self.kind {
            EventKind::MessageSent { from, to, bytes, trace, span }
            | EventKind::MessageDelivered { from, to, bytes, trace, span } => {
                field(&mut s, "from", *from);
                field(&mut s, "to", *to);
                field(&mut s, "bytes", *bytes);
                field(&mut s, "trace", *trace);
                field(&mut s, "span", *span);
            }
            EventKind::MessageDropped { from, to, reason, trace, span } => {
                field(&mut s, "from", *from);
                field(&mut s, "to", *to);
                s.push_str(",\"reason\":\"");
                s.push_str(reason.name());
                s.push('"');
                field(&mut s, "trace", *trace);
                field(&mut s, "span", *span);
            }
            EventKind::AntiEntropyRound { node, fanout } => {
                field(&mut s, "node", *node);
                field(&mut s, "fanout", *fanout);
            }
            EventKind::QuorumWait { node, kind, waited_us, acks, needed } => {
                field(&mut s, "node", *node);
                s.push_str(",\"kind\":\"");
                s.push_str(kind.name());
                s.push('"');
                field(&mut s, "waited_us", *waited_us);
                field(&mut s, "acks", *acks);
                field(&mut s, "needed", *needed);
            }
            EventKind::ConflictDetected { node, key, siblings } => {
                field(&mut s, "node", *node);
                field(&mut s, "key", *key);
                field(&mut s, "siblings", *siblings);
            }
            EventKind::ConflictResolved { node, key, survivors } => {
                field(&mut s, "node", *node);
                field(&mut s, "key", *key);
                field(&mut s, "survivors", *survivors);
            }
            EventKind::WalAppend { node, key, bytes } => {
                field(&mut s, "node", *node);
                field(&mut s, "key", *key);
                field(&mut s, "bytes", *bytes);
            }
            EventKind::PartitionStart { island } => {
                s.push_str(",\"island\":[");
                for (i, n) in island.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&n.to_string());
                }
                s.push(']');
            }
            EventKind::PartitionHeal => {}
            EventKind::Crash { node } | EventKind::Recover { node } => {
                field(&mut s, "node", *node);
            }
            EventKind::MembershipChange { node, join } => {
                field(&mut s, "node", *node);
                s.push_str(",\"join\":");
                s.push_str(if *join { "true" } else { "false" });
            }
            EventKind::WalReplay { node, records } => {
                field(&mut s, "node", *node);
                field(&mut s, "records", *records);
            }
            EventKind::SpanOpen { trace, span, parent, node, name } => {
                field(&mut s, "trace", *trace);
                field(&mut s, "span", *span);
                field(&mut s, "parent", *parent);
                field(&mut s, "node", *node);
                s.push_str(",\"name\":\"");
                s.push_str(name);
                s.push('"');
            }
            EventKind::SpanClose { trace, span, node, status } => {
                field(&mut s, "trace", *trace);
                field(&mut s, "span", *span);
                field(&mut s, "node", *node);
                s.push_str(",\"status\":\"");
                s.push_str(status.name());
                s.push('"');
            }
            EventKind::OpComplete {
                session,
                op,
                key,
                kind,
                ok,
                invoked_us,
                replica,
                value,
                values,
                stamp,
                version_ts_us,
            } => {
                field(&mut s, "session", *session);
                field(&mut s, "op", *op);
                field(&mut s, "key", *key);
                s.push_str(",\"kind\":\"");
                s.push_str(kind.name());
                s.push('"');
                s.push_str(",\"ok\":");
                s.push_str(if *ok { "true" } else { "false" });
                field(&mut s, "invoked_us", *invoked_us);
                field(&mut s, "replica", *replica);
                // Optional fields are omitted when absent; the parser
                // reads by name, so presence is the None/Some signal.
                if let Some(v) = value {
                    field(&mut s, "value", *v);
                }
                s.push_str(",\"values\":[");
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&v.to_string());
                }
                s.push(']');
                if let Some((ctr, actor)) = stamp {
                    s.push_str(",\"stamp\":[");
                    s.push_str(&ctr.to_string());
                    s.push(',');
                    s.push_str(&actor.to_string());
                    s.push(']');
                }
                if let Some(ts) = version_ts_us {
                    field(&mut s, "version_ts_us", *ts);
                }
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_stable() {
        let ev = TracedEvent {
            seq: 3,
            t_us: 1500,
            kind: EventKind::MessageDropped {
                from: 0,
                to: 2,
                reason: DropReason::Loss,
                trace: 4,
                span: 9,
            },
        };
        assert_eq!(
            ev.to_json_line(),
            r#"{"seq":3,"t_us":1500,"type":"message_dropped","from":0,"to":2,"reason":"loss","trace":4,"span":9}"#
        );
        let ev =
            TracedEvent { seq: 0, t_us: 0, kind: EventKind::PartitionStart { island: vec![1, 2] } };
        assert_eq!(
            ev.to_json_line(),
            r#"{"seq":0,"t_us":0,"type":"partition_start","island":[1,2]}"#
        );
        let ev = TracedEvent {
            seq: 1,
            t_us: 250,
            kind: EventKind::SpanOpen { trace: 1, span: 2, parent: 0, node: 3, name: "op_read" },
        };
        assert_eq!(
            ev.to_json_line(),
            r#"{"seq":1,"t_us":250,"type":"span_open","trace":1,"span":2,"parent":0,"node":3,"name":"op_read"}"#
        );
        let ev = TracedEvent {
            seq: 2,
            t_us: 900,
            kind: EventKind::SpanClose { trace: 1, span: 2, node: 3, status: SpanStatus::Ok },
        };
        assert_eq!(
            ev.to_json_line(),
            r#"{"seq":2,"t_us":900,"type":"span_close","trace":1,"span":2,"node":3,"status":"ok"}"#
        );
    }

    #[test]
    fn every_kind_encodes_with_its_type_tag() {
        let kinds = vec![
            EventKind::MessageSent { from: 0, to: 1, bytes: 8, trace: 0, span: 0 },
            EventKind::MessageDelivered { from: 0, to: 1, bytes: 8, trace: 0, span: 0 },
            EventKind::MessageDropped {
                from: 0,
                to: 1,
                reason: DropReason::Partition,
                trace: 0,
                span: 0,
            },
            EventKind::AntiEntropyRound { node: 1, fanout: 2 },
            EventKind::QuorumWait {
                node: 0,
                kind: QuorumKind::Read,
                waited_us: 100,
                acks: 2,
                needed: 2,
            },
            EventKind::ConflictDetected { node: 0, key: 7, siblings: 2 },
            EventKind::ConflictResolved { node: 0, key: 7, survivors: 1 },
            EventKind::WalAppend { node: 0, key: 7, bytes: 16 },
            EventKind::PartitionStart { island: vec![0] },
            EventKind::PartitionHeal,
            EventKind::Crash { node: 2 },
            EventKind::Recover { node: 2 },
            EventKind::MembershipChange { node: 4, join: true },
            EventKind::WalReplay { node: 2, records: 5 },
            EventKind::SpanOpen { trace: 1, span: 1, parent: 0, node: 0, name: "op_write" },
            EventKind::SpanClose { trace: 1, span: 1, node: 0, status: SpanStatus::Abandoned },
            EventKind::OpComplete {
                session: 1,
                op: 2,
                key: 7,
                kind: ClientOpKind::Read,
                ok: true,
                invoked_us: 500,
                replica: 0,
                value: None,
                values: vec![42],
                stamp: Some((3, 1)),
                version_ts_us: None,
            },
        ];
        for kind in kinds {
            let tag = kind.type_name();
            let line = TracedEvent { seq: 0, t_us: 0, kind }.to_json_line();
            assert!(line.contains(&format!("\"type\":\"{tag}\"")), "{line}");
        }
    }
}
