//! An add-wins observed-remove map composing nested CRDT values.

use crate::CvRdt;
use clocks::{ActorId, Dot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// An observed-remove map: key *visibility* behaves like [`crate::OrSet`]
/// elements (add-wins), while value state is a separate, always-merged
/// monotone lattice.
///
/// Two consequences worth spelling out:
///
/// * **Add-wins**: an update concurrent with a remove keeps the key alive.
/// * **Keep-on-remove**: removing a key hides it but does *not* reset the
///   nested value; re-adding the key reveals the accumulated state. This is
///   the price of being a true semilattice — "reset on remove" maps built
///   from plain state-based values are famously not associative (our
///   property tests caught exactly that), and a faithful reset requires
///   causal-context deltas beyond this crate's scope. DESIGN.md records the
///   trade-off.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrMap<K: Ord, V> {
    /// Live presence tags per key (add-wins visibility).
    presence: BTreeMap<K, BTreeSet<Dot>>,
    /// Tombstoned presence tags.
    removed: BTreeSet<Dot>,
    /// Monotone value state per key; never discarded, merged on every join.
    values: BTreeMap<K, V>,
    /// Per-actor tag counters.
    counters: BTreeMap<ActorId, u64>,
}

impl<K: Ord, V> Default for OrMap<K, V> {
    fn default() -> Self {
        OrMap {
            presence: BTreeMap::new(),
            removed: BTreeSet::new(),
            values: BTreeMap::new(),
            counters: BTreeMap::new(),
        }
    }
}

impl<K: Ord + Clone, V: CvRdt + Default> OrMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_dot(&mut self, actor: ActorId) -> Dot {
        let c = self.counters.entry(actor).or_insert(0);
        *c += 1;
        Dot::new(actor, *c)
    }

    /// Mutate (creating if absent) the value at `key` as `actor`.
    ///
    /// Each update adds a fresh presence tag, so updates concurrent with a
    /// remove keep the key alive.
    pub fn update(&mut self, actor: ActorId, key: K, f: impl FnOnce(&mut V)) {
        let dot = self.next_dot(actor);
        self.presence.entry(key.clone()).or_default().insert(dot);
        f(self.values.entry(key).or_default());
    }

    /// Remove `key`, tombstoning the presence tags observed here. The value
    /// lattice is retained (see type-level docs).
    pub fn remove(&mut self, key: &K) {
        if let Some(tags) = self.presence.remove(key) {
            self.removed.extend(tags);
        }
    }

    /// Read the value at `key`, if the key is live.
    pub fn get(&self, key: &K) -> Option<&V> {
        if self.presence.contains_key(key) {
            self.values.get(key)
        } else {
            None
        }
    }

    /// Whether `key` is live.
    pub fn contains_key(&self, key: &K) -> bool {
        self.presence.contains_key(key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.presence.len()
    }

    /// True if no live keys.
    pub fn is_empty(&self) -> bool {
        self.presence.is_empty()
    }

    /// Iterate live `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.presence.keys().filter_map(|k| self.values.get(k).map(|v| (k, v)))
    }
}

impl<K: Ord + Clone, V: CvRdt + Default> CvRdt for OrMap<K, V> {
    fn merge(&mut self, other: &Self) {
        // Tombstones union first so incoming tags can be filtered by them.
        self.removed.extend(other.removed.iter().copied());
        for (k, tags) in &other.presence {
            let entry = self.presence.entry(k.clone()).or_default();
            entry.extend(tags.iter().copied());
        }
        let removed = &self.removed;
        self.presence.retain(|_, tags| {
            tags.retain(|d| !removed.contains(d));
            !tags.is_empty()
        });
        // Value state merges unconditionally (monotone; independent of
        // visibility) — this is what makes the map a product lattice.
        for (k, v) in &other.values {
            match self.values.get_mut(k) {
                Some(mine) => mine.merge(v),
                None => {
                    self.values.insert(k.clone(), v.clone());
                }
            }
        }
        for (&a, &c) in &other.counters {
            let e = self.counters.entry(a).or_insert(0);
            *e = (*e).max(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::PnCounter;
    use crate::set::OrSet;

    type CartMap = OrMap<&'static str, PnCounter>;

    #[test]
    fn update_creates_and_mutates() {
        let mut m = CartMap::new();
        m.update(1, "beer", |c| c.increment(1, 2));
        m.update(1, "beer", |c| c.increment(1, 1));
        assert_eq!(m.get(&"beer").unwrap().value(), 3);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&"beer"));
    }

    #[test]
    fn nested_values_merge() {
        let base = CartMap::new();
        let mut a = base.clone();
        let mut b = base.clone();
        a.update(1, "beer", |c| c.increment(1, 2));
        b.update(2, "beer", |c| c.increment(2, 5));
        let m = a.merged(&b);
        assert_eq!(m.get(&"beer").unwrap().value(), 7);
    }

    #[test]
    fn concurrent_update_survives_remove() {
        let mut base = CartMap::new();
        base.update(0, "beer", |c| c.increment(0, 1));
        let mut a = base.clone();
        let mut b = base.clone();
        a.remove(&"beer");
        b.update(2, "beer", |c| c.increment(2, 3));
        let m = a.merged(&b);
        assert!(m.contains_key(&"beer"), "add-wins: concurrent update keeps key");
        assert_eq!(m.get(&"beer").unwrap().value(), 4);
    }

    #[test]
    fn causal_remove_sticks() {
        let mut m = CartMap::new();
        m.update(0, "beer", |c| c.increment(0, 1));
        let stale = m.clone();
        m.remove(&"beer");
        let merged = m.merged(&stale);
        assert!(!merged.contains_key(&"beer"));
        assert!(merged.is_empty());
        assert_eq!(merged.get(&"beer"), None);
    }

    #[test]
    fn keep_on_remove_readd_sees_accumulated_state() {
        // The documented semantic: remove hides, re-add reveals old state.
        let mut m = CartMap::new();
        m.update(0, "beer", |c| c.increment(0, 5));
        m.remove(&"beer");
        assert!(!m.contains_key(&"beer"));
        m.update(0, "beer", |c| c.increment(0, 1));
        assert_eq!(m.get(&"beer").unwrap().value(), 6);
    }

    #[test]
    fn or_set_values_compose() {
        let mut a: OrMap<u8, OrSet<&str>> = OrMap::new();
        let mut b = a.clone();
        a.update(1, 0, |s| {
            s.insert(1, "x");
        });
        b.update(2, 0, |s| {
            s.insert(2, "y");
        });
        let m = a.merged(&b);
        let set = m.get(&0).unwrap();
        assert!(set.contains(&"x") && set.contains(&"y"));
    }

    #[test]
    fn iter_in_key_order() {
        let mut m: OrMap<u8, PnCounter> = OrMap::new();
        m.update(0, 3, |_| {});
        m.update(0, 1, |_| {});
        let keys: Vec<u8> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::counter::GCounter;
    use proptest::prelude::*;

    /// Three divergent replicas from one shared history (actor ids must be
    /// globally unique per replica for CRDT laws to apply; see the note on
    /// `arb_mv_replicas` in `register.rs`).
    fn arb_map_replicas() -> impl Strategy<Value = [OrMap<u8, GCounter>; 3]> {
        proptest::collection::vec(
            (0usize..3, 0u8..4, proptest::bool::ANY, proptest::bool::ANY),
            0..12,
        )
        .prop_map(|script| {
            let mut reps: [OrMap<u8, GCounter>; 3] = [OrMap::new(), OrMap::new(), OrMap::new()];
            for (r, key, is_remove, sync) in script {
                if is_remove {
                    reps[r].remove(&key);
                } else {
                    let actor = r as u64;
                    reps[r].update(actor, key, |c| c.increment(actor, 1));
                }
                if sync {
                    let src = reps[(r + 1) % 3].clone();
                    reps[r].merge(&src);
                }
            }
            reps
        })
    }

    fn live_view(m: &OrMap<u8, GCounter>) -> Vec<(u8, u64)> {
        m.iter().map(|(k, v)| (*k, v.value())).collect()
    }

    proptest! {
        #[test]
        fn ormap_merge_commutative(reps in arb_map_replicas()) {
            let [a, b, _] = reps;
            let ab = a.clone().merged(&b);
            let ba = b.clone().merged(&a);
            prop_assert_eq!(live_view(&ab), live_view(&ba));
        }

        #[test]
        fn ormap_merge_associative(reps in arb_map_replicas()) {
            let [a, b, c] = reps;
            let l = a.clone().merged(&b).merged(&c);
            let r = a.clone().merged(&b.clone().merged(&c));
            prop_assert_eq!(live_view(&l), live_view(&r));
        }

        #[test]
        fn ormap_merge_idempotent(reps in arb_map_replicas()) {
            let [a, _, _] = reps;
            let aa = a.clone().merged(&a);
            prop_assert_eq!(live_view(&aa), live_view(&a));
        }
    }
}
