//! An op-based (CmRDT) observed-remove set.
//!
//! Where the state-based [`crate::OrSet`] ships whole states, this
//! variant ships *operations* and relies on the delivery layer for causal
//! order and exactly-once delivery (the `replication::causal` protocol
//! provides exactly that). The payoff is bandwidth: an op is O(1), a
//! state is O(set).
//!
//! Correctness contract, in types: a remove can only be *prepared* against
//! the local state (it captures the tags it observed), and causal delivery
//! guarantees every replica applies those adds before the remove — so
//! concurrent adds (unobserved tags) survive, giving add-wins semantics.

use crate::CmRdt;
use clocks::{ActorId, Dot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Downstream operations shipped between replicas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetOp<T> {
    /// Add `item` with a globally unique tag.
    Add {
        /// The element.
        item: T,
        /// The fresh tag minted by the adder.
        tag: Dot,
    },
    /// Remove exactly the observed `tags` of `item`.
    Remove {
        /// The element.
        item: T,
        /// The tags the remover had observed.
        tags: BTreeSet<Dot>,
    },
}

/// An op-based observed-remove set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpOrSet<T: Ord> {
    actor: ActorId,
    counter: u64,
    entries: BTreeMap<T, BTreeSet<Dot>>,
}

impl<T: Ord + Clone> OpOrSet<T> {
    /// A replica owned by `actor` (tags are minted under this id; each
    /// replica must use a distinct actor id).
    pub fn new(actor: ActorId) -> Self {
        OpOrSet { actor, counter: 0, entries: BTreeMap::new() }
    }

    /// Prepare-and-apply an add locally; returns the op to broadcast.
    pub fn add(&mut self, item: T) -> SetOp<T> {
        self.counter += 1;
        let op = SetOp::Add { item, tag: Dot::new(self.actor, self.counter) };
        self.apply(&op);
        op
    }

    /// Prepare-and-apply a remove locally; returns the op to broadcast,
    /// or `None` if the element is not present (nothing observed).
    pub fn remove(&mut self, item: &T) -> Option<SetOp<T>> {
        let tags = self.entries.get(item)?.clone();
        let op = SetOp::Remove { item: item.clone(), tags };
        self.apply(&op);
        Some(op)
    }

    /// Membership.
    pub fn contains(&self, item: &T) -> bool {
        self.entries.contains_key(item)
    }

    /// Live element count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.keys()
    }
}

impl<T: Ord + Clone> CmRdt for OpOrSet<T> {
    type Op = SetOp<T>;

    fn apply(&mut self, op: &SetOp<T>) {
        match op {
            SetOp::Add { item, tag } => {
                self.entries.entry(item.clone()).or_default().insert(*tag);
            }
            SetOp::Remove { item, tags } => {
                if let Some(live) = self.entries.get_mut(item) {
                    for t in tags {
                        live.remove(t);
                    }
                    if live.is_empty() {
                        self.entries.remove(item);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_then_remove_round_trip() {
        let mut a = OpOrSet::new(1);
        let add = a.add("x");
        assert!(a.contains(&"x"));
        let rem = a.remove(&"x").expect("present");
        assert!(!a.contains(&"x"));
        // A second replica applying both ops in causal order converges.
        let mut b = OpOrSet::new(2);
        b.apply(&add);
        b.apply(&rem);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }

    #[test]
    fn remove_of_absent_prepares_nothing() {
        let mut a: OpOrSet<&str> = OpOrSet::new(1);
        assert!(a.remove(&"ghost").is_none());
    }

    #[test]
    fn concurrent_add_survives_remove() {
        // a and b both hold {"x"}; a removes it while b concurrently
        // re-adds it. Causal delivery lets the ops arrive in either order
        // at a third replica — both orders converge with "x" present.
        let mut a = OpOrSet::new(1);
        let mut b = OpOrSet::new(2);
        let seed = a.add("x");
        b.apply(&seed);

        let rem = a.remove(&"x").unwrap(); // observed only the seed tag
        let add = b.add("x"); // concurrent: a fresh tag

        // Order 1: remove then add.
        let mut c1 = OpOrSet::new(3);
        c1.apply(&seed);
        c1.apply(&rem);
        c1.apply(&add);
        // Order 2: add then remove.
        let mut c2 = OpOrSet::new(4);
        c2.apply(&seed);
        c2.apply(&add);
        c2.apply(&rem);

        assert!(c1.contains(&"x"), "add-wins under order 1");
        assert!(c2.contains(&"x"), "add-wins under order 2");
        assert_eq!(c1.entries, c2.entries, "concurrent ops commute");
    }

    #[test]
    fn removes_only_touch_observed_tags() {
        let mut a = OpOrSet::new(1);
        let add1 = a.add("x");
        let mut b = OpOrSet::new(2);
        b.apply(&add1);
        let add2 = b.add("x"); // second tag, unseen by a
        let rem = a.remove(&"x").unwrap(); // removes only add1's tag
        b.apply(&rem);
        assert!(b.contains(&"x"), "b's own tag survives");
        a.apply(&add2);
        assert!(a.contains(&"x"));
        assert_eq!(a.entries, b.entries);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Concurrent (causally unrelated) ops commute: applying any
        /// interleaving of two replicas' independently prepared op streams
        /// to a fresh replica yields the same state.
        #[test]
        fn concurrent_ops_commute(
            adds_a in proptest::collection::vec(0u8..5, 0..8),
            adds_b in proptest::collection::vec(0u8..5, 0..8),
            interleave in proptest::collection::vec(proptest::bool::ANY, 0..16),
        ) {
            let mut a = OpOrSet::new(1);
            let mut b = OpOrSet::new(2);
            let ops_a: Vec<_> = adds_a.iter().map(|&x| a.add(x)).collect();
            let ops_b: Vec<_> = adds_b.iter().map(|&x| b.add(x)).collect();
            // Two interleavings at fresh replicas.
            let apply_order = |first_a: bool| {
                let mut c = OpOrSet::new(9);
                let (mut ia, mut ib) = (ops_a.iter(), ops_b.iter());
                for &pick_a in &interleave {
                    let next = if pick_a == first_a { ia.next() } else { ib.next() };
                    if let Some(op) = next {
                        c.apply(op);
                    }
                }
                for op in ia { c.apply(op); }
                for op in ib { c.apply(op); }
                c
            };
            let c1 = apply_order(true);
            let c2 = apply_order(false);
            prop_assert_eq!(c1.entries, c2.entries);
        }
    }
}
