//! Replicated sets: grow-only, two-phase, and observed-remove.

use crate::CvRdt;
use clocks::{ActorId, Dot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A grow-only set: add only, merge = union.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GSet<T: Ord> {
    items: BTreeSet<T>,
}

impl<T: Ord> Default for GSet<T> {
    fn default() -> Self {
        GSet { items: BTreeSet::new() }
    }
}

impl<T: Ord + Clone> GSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        GSet { items: BTreeSet::new() }
    }

    /// Insert an element.
    pub fn insert(&mut self, item: T) {
        self.items.insert(item);
    }

    /// Membership test.
    pub fn contains(&self, item: &T) -> bool {
        self.items.contains(item)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

impl<T: Ord + Clone> CvRdt for GSet<T> {
    fn merge(&mut self, other: &Self) {
        self.items.extend(other.items.iter().cloned());
    }
}

/// A two-phase set: removed elements can never be re-added (the tombstone
/// wins forever). Simple, but usually the wrong tool — see [`OrSet`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoPSet<T: Ord> {
    added: BTreeSet<T>,
    removed: BTreeSet<T>,
}

impl<T: Ord> Default for TwoPSet<T> {
    fn default() -> Self {
        TwoPSet { added: BTreeSet::new(), removed: BTreeSet::new() }
    }
}

impl<T: Ord + Clone> TwoPSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an element. Re-adding a removed element has no effect.
    pub fn insert(&mut self, item: T) {
        self.added.insert(item);
    }

    /// Remove an element (permanently).
    pub fn remove(&mut self, item: &T) {
        if self.added.contains(item) {
            self.removed.insert(item.clone());
        }
    }

    /// Membership: added and not removed.
    pub fn contains(&self, item: &T) -> bool {
        self.added.contains(item) && !self.removed.contains(item)
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.added.iter().filter(|i| !self.removed.contains(i)).count()
    }

    /// True if no live elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate live elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.added.iter().filter(|i| !self.removed.contains(*i))
    }
}

impl<T: Ord + Clone> CvRdt for TwoPSet<T> {
    fn merge(&mut self, other: &Self) {
        self.added.extend(other.added.iter().cloned());
        self.removed.extend(other.removed.iter().cloned());
    }
}

/// An observed-remove set with add-wins semantics.
///
/// Every add is tagged with a unique [`Dot`]; remove deletes exactly the
/// tags it has *observed*. A concurrent add therefore survives a remove —
/// the semantics Dynamo's shopping cart wanted, and the resolution of the
/// tutorial's "re-appearing item" anomaly. Tombstones record removed dots
/// so merges cannot resurrect them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrSet<T: Ord> {
    /// Live element → tags supporting it.
    entries: BTreeMap<T, BTreeSet<Dot>>,
    /// All dots ever removed (tombstones).
    removed: BTreeSet<Dot>,
    /// Per-actor dot counters (for tag generation).
    counters: BTreeMap<ActorId, u64>,
}

impl<T: Ord> Default for OrSet<T> {
    fn default() -> Self {
        OrSet { entries: BTreeMap::new(), removed: BTreeSet::new(), counters: BTreeMap::new() }
    }
}

impl<T: Ord + Clone> OrSet<T> {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `item` as `actor`, returning the fresh tag.
    pub fn insert(&mut self, actor: ActorId, item: T) -> Dot {
        let c = self.counters.entry(actor).or_insert(0);
        *c += 1;
        let dot = Dot::new(actor, *c);
        self.entries.entry(item).or_default().insert(dot);
        dot
    }

    /// Remove `item`, deleting exactly the tags currently observed here.
    pub fn remove(&mut self, item: &T) {
        if let Some(tags) = self.entries.remove(item) {
            self.removed.extend(tags);
        }
    }

    /// Membership: at least one live tag.
    pub fn contains(&self, item: &T) -> bool {
        self.entries.contains_key(item)
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no live elements.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate live elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.keys()
    }

    /// Number of tombstoned dots (for the metadata-overhead ablation).
    pub fn tombstone_count(&self) -> usize {
        self.removed.len()
    }
}

impl<T: Ord + Clone> CvRdt for OrSet<T> {
    fn merge(&mut self, other: &Self) {
        // Union tombstones first so incoming tags can be filtered by them.
        self.removed.extend(other.removed.iter().copied());
        // Union live tags from the other side.
        for (item, tags) in &other.entries {
            let entry = self.entries.entry(item.clone()).or_default();
            entry.extend(tags.iter().copied());
        }
        // Drop any tag that is tombstoned anywhere; drop emptied items.
        let removed = &self.removed;
        self.entries.retain(|_, tags| {
            tags.retain(|d| !removed.contains(d));
            !tags.is_empty()
        });
        // Advance tag counters so future local adds stay unique.
        for (&a, &c) in &other.counters {
            let e = self.counters.entry(a).or_insert(0);
            *e = (*e).max(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gset_union() {
        let mut a = GSet::new();
        let mut b = GSet::new();
        a.insert(1);
        b.insert(2);
        let m = a.merged(&b);
        assert!(m.contains(&1) && m.contains(&2));
        assert_eq!(m.len(), 2);
        assert_eq!(m.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn twopset_remove_is_permanent() {
        let mut s = TwoPSet::new();
        s.insert("x");
        s.remove(&"x");
        s.insert("x"); // too late: tombstone wins
        assert!(!s.contains(&"x"));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn twopset_remove_of_unseen_is_noop() {
        let mut s: TwoPSet<&str> = TwoPSet::new();
        s.remove(&"ghost");
        s.insert("ghost");
        assert!(s.contains(&"ghost"));
    }

    #[test]
    fn twopset_merge_propagates_removal() {
        let mut a = TwoPSet::new();
        a.insert("x");
        let mut b = a.clone();
        b.remove(&"x");
        let m = a.merged(&b);
        assert!(!m.contains(&"x"));
    }

    #[test]
    fn orset_add_remove_add() {
        let mut s = OrSet::new();
        s.insert(1, "x");
        s.remove(&"x");
        assert!(!s.contains(&"x"));
        s.insert(1, "x"); // fresh tag: element is back
        assert!(s.contains(&"x"));
    }

    #[test]
    fn orset_concurrent_add_survives_remove() {
        // The shopping-cart anomaly, resolved: replica A removes the item
        // while replica B concurrently re-adds it; add wins.
        let mut base = OrSet::new();
        base.insert(0, "beer");
        let mut a = base.clone();
        let mut b = base.clone();
        a.remove(&"beer");
        b.insert(1, "beer"); // concurrent add with a new tag
        let m1 = a.clone().merged(&b);
        let m2 = b.clone().merged(&a);
        assert!(m1.contains(&"beer"));
        assert!(m2.contains(&"beer"));
        assert_eq!(m1.iter().collect::<Vec<_>>(), m2.iter().collect::<Vec<_>>());
    }

    #[test]
    fn orset_observed_remove_removes_all_seen_tags() {
        let mut a = OrSet::new();
        a.insert(0, "x");
        let mut b = a.clone();
        b.insert(1, "x"); // second tag for same element
        let mut merged = a.clone().merged(&b);
        merged.remove(&"x"); // observed both tags
        let back = merged.merged(&b);
        assert!(!back.contains(&"x"), "remove observed both tags; nothing survives");
    }

    #[test]
    fn orset_merge_does_not_resurrect() {
        let mut a = OrSet::new();
        a.insert(0, "x");
        let stale = a.clone();
        a.remove(&"x");
        let m = a.merged(&stale);
        assert!(!m.contains(&"x"));
        assert_eq!(m.tombstone_count(), 1);
    }

    #[test]
    fn orset_counter_advance_after_merge_keeps_tags_unique() {
        let mut a = OrSet::new();
        let d1 = a.insert(0, "x");
        let mut b = OrSet::new();
        b.merge(&a);
        let d2 = b.insert(0, "y"); // same actor id used on another replica copy
        assert_ne!(d1, d2, "merged counters must prevent tag reuse");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A random ORSet built from a script of adds/removes on 3 replicas
    /// with occasional pairwise merges.
    fn arb_orset() -> impl Strategy<Value = OrSet<u8>> {
        proptest::collection::vec(
            (0usize..3, 0u8..5, proptest::bool::ANY, proptest::bool::ANY),
            0..15,
        )
        .prop_map(|script| {
            let mut reps = [OrSet::new(), OrSet::new(), OrSet::new()];
            for (r, item, is_remove, sync) in script {
                if is_remove {
                    reps[r].remove(&item);
                } else {
                    // Each replica uses a distinct actor id for tags.
                    reps[r].insert(r as u64, item);
                }
                if sync {
                    let src = reps[(r + 1) % 3].clone();
                    reps[r].merge(&src);
                }
            }
            let [a, b, c] = reps;
            a.merged(&b).merged(&c)
        })
    }

    proptest! {
        #[test]
        fn orset_lattice_laws(a in arb_orset(), b in arb_orset(), c in arb_orset()) {
            let ab = a.clone().merged(&b);
            let ba = b.clone().merged(&a);
            prop_assert_eq!(ab.iter().collect::<Vec<_>>(), ba.iter().collect::<Vec<_>>());
            let abc1 = a.clone().merged(&b).merged(&c);
            let abc2 = a.clone().merged(&b.clone().merged(&c));
            prop_assert_eq!(abc1.iter().collect::<Vec<_>>(), abc2.iter().collect::<Vec<_>>());
            let aa = a.clone().merged(&a);
            prop_assert_eq!(aa.iter().collect::<Vec<_>>(), a.iter().collect::<Vec<_>>());
        }

        #[test]
        fn gset_lattice_laws(
            a in proptest::collection::btree_set(0u8..20, 0..10),
            b in proptest::collection::btree_set(0u8..20, 0..10),
        ) {
            let mk = |s: &std::collections::BTreeSet<u8>| {
                let mut g = GSet::new();
                for &x in s { g.insert(x); }
                g
            };
            let (ga, gb) = (mk(&a), mk(&b));
            prop_assert_eq!(ga.clone().merged(&gb), gb.clone().merged(&ga));
            prop_assert_eq!(ga.clone().merged(&ga), ga);
        }

        #[test]
        fn twopset_lattice_laws(
            adds in proptest::collection::vec(0u8..10, 0..10),
            rems in proptest::collection::vec(0u8..10, 0..10),
        ) {
            let mut a = TwoPSet::new();
            for x in &adds { a.insert(*x); }
            for x in &rems { a.remove(x); }
            let mut b = TwoPSet::new();
            for x in &rems { b.insert(*x); }
            prop_assert_eq!(a.clone().merged(&b), b.clone().merged(&a));
            prop_assert_eq!(a.clone().merged(&a), a);
        }
    }
}
