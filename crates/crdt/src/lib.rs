#![deny(missing_docs)]
//! # crdt — convergent conflict resolution
//!
//! The tutorial's answer to "what happens when concurrent writes meet?" is
//! *convergent merge functions*: if replica states form a join-semilattice
//! and updates are inflations, replicas that have seen the same updates are
//! in the same state regardless of delivery order — eventual consistency by
//! construction rather than by timestamp arbitration.
//!
//! This crate provides the classic menagerie, in two flavours:
//!
//! **State-based (CvRDTs)** — ship your whole state; receiver joins:
//! * [`GCounter`], [`PnCounter`] — grow-only / increment-decrement counters
//! * [`LwwRegister`] — last-writer-wins register (the "lossy" baseline the
//!   E6 experiment quantifies)
//! * [`MvRegister`] — multi-value register keeping concurrent siblings
//! * [`GSet`], [`TwoPSet`], [`OrSet`] — sets with increasingly useful
//!   remove semantics (add-wins observed-remove for [`OrSet`])
//! * [`OrMap`] — add-wins map composing any nested CvRDT value
//! * [`Rga`] — a replicated growable array (ordered sequence) for the
//!   collaborative-list example
//!
//! **Op-based (CmRDTs)** — ship operations; requires causal, exactly-once
//! delivery, which the `replication` crate's causal broadcast provides:
//! * [`OpCounter`] — commutative increments
//! * [`OpOrSet`] — observed-remove set as operations (O(1) messages)
//!
//! Every state-based type satisfies the semilattice laws (commutativity,
//! associativity, idempotence) and update inflation; `proptest` suites in
//! each module check them, and integration tests check *convergence*: any
//! permutation of pairwise merges reaches the same state.

pub mod counter;
pub mod map;
pub mod opset;
pub mod register;
pub mod rga;
pub mod set;

pub use counter::{GCounter, OpCounter, PnCounter};
pub use map::OrMap;
pub use opset::{OpOrSet, SetOp};
pub use register::{LwwRegister, MvRegister};
pub use rga::Rga;
pub use set::{GSet, OrSet, TwoPSet};

/// A state-based (convergent) replicated data type.
///
/// `merge` must be a join: commutative, associative, idempotent, and an
/// upper bound of both inputs. Local mutators must be inflations (the new
/// state merged with the old equals the new state).
pub trait CvRdt: Clone {
    /// Join `other` into `self`.
    fn merge(&mut self, other: &Self);

    /// Join, returning the result.
    fn merged(mut self, other: &Self) -> Self
    where
        Self: Sized,
    {
        self.merge(other);
        self
    }
}

/// An operation-based (commutative) replicated data type.
///
/// `apply` consumes downstream operations. Correctness requires the
/// delivery layer to provide causal order and exactly-once delivery; the
/// type itself only promises that *concurrent* operations commute.
pub trait CmRdt {
    /// The operation type shipped between replicas.
    type Op: Clone;

    /// Apply a (locally generated or remotely received) operation.
    fn apply(&mut self, op: &Self::Op);
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::CvRdt;

    /// Merge a slice of replica states in the given order, starting from a
    /// seed state. Used by convergence tests to compare permutations.
    pub fn merge_all<T: CvRdt>(seed: T, states: &[T], order: &[usize]) -> T {
        let mut acc = seed;
        for &i in order {
            acc.merge(&states[i]);
        }
        acc
    }
}
