//! Replicated counters.

use crate::{CmRdt, CvRdt};
use clocks::ActorId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A grow-only counter: one non-negative count per actor; value is the sum.
///
/// Increment inflates the actor's own component; merge is element-wise max,
/// so increments from different actors are never lost — the canonical
/// contrast to last-writer-wins arbitration (experiment E6).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GCounter {
    counts: BTreeMap<ActorId, u64>,
}

impl GCounter {
    /// A zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` on behalf of `actor`.
    pub fn increment(&mut self, actor: ActorId, n: u64) {
        *self.counts.entry(actor).or_insert(0) += n;
    }

    /// The counter's value (sum across actors).
    pub fn value(&self) -> u64 {
        self.counts.values().sum()
    }

    /// This actor's contribution.
    pub fn of_actor(&self, actor: ActorId) -> u64 {
        self.counts.get(&actor).copied().unwrap_or(0)
    }
}

impl CvRdt for GCounter {
    fn merge(&mut self, other: &Self) {
        for (&a, &c) in &other.counts {
            let e = self.counts.entry(a).or_insert(0);
            *e = (*e).max(c);
        }
    }
}

/// An increment/decrement counter: two [`GCounter`]s, value = p − n.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PnCounter {
    p: GCounter,
    n: GCounter,
}

impl PnCounter {
    /// A zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` on behalf of `actor`.
    pub fn increment(&mut self, actor: ActorId, n: u64) {
        self.p.increment(actor, n);
    }

    /// Subtract `n` on behalf of `actor`.
    pub fn decrement(&mut self, actor: ActorId, n: u64) {
        self.n.increment(actor, n);
    }

    /// The counter's value (may be negative).
    pub fn value(&self) -> i64 {
        self.p.value() as i64 - self.n.value() as i64
    }
}

impl CvRdt for PnCounter {
    fn merge(&mut self, other: &Self) {
        self.p.merge(&other.p);
        self.n.merge(&other.n);
    }
}

/// Operations for the op-based counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterOp {
    /// Add `n`.
    Incr(u64),
    /// Subtract `n`.
    Decr(u64),
}

/// An op-based counter: increments/decrements commute, so any delivery
/// order works as long as each op arrives exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounter {
    value: i64,
}

impl OpCounter {
    /// A zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter's value.
    pub fn value(&self) -> i64 {
        self.value
    }
}

impl CmRdt for OpCounter {
    type Op = CounterOp;

    fn apply(&mut self, op: &CounterOp) {
        match *op {
            CounterOp::Incr(n) => self.value += n as i64,
            CounterOp::Decr(n) => self.value -= n as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcounter_counts() {
        let mut c = GCounter::new();
        c.increment(1, 3);
        c.increment(2, 2);
        c.increment(1, 1);
        assert_eq!(c.value(), 6);
        assert_eq!(c.of_actor(1), 4);
        assert_eq!(c.of_actor(9), 0);
    }

    #[test]
    fn gcounter_merge_keeps_all_increments() {
        let mut a = GCounter::new();
        let mut b = GCounter::new();
        a.increment(1, 5);
        b.increment(2, 7);
        let m = a.clone().merged(&b);
        assert_eq!(m.value(), 12);
        // Merge with a stale copy of the same actor takes the max, not sum.
        let mut stale = a.clone();
        stale.merge(&a);
        assert_eq!(stale.value(), 5);
    }

    #[test]
    fn pncounter_can_go_negative() {
        let mut c = PnCounter::new();
        c.increment(1, 2);
        c.decrement(2, 5);
        assert_eq!(c.value(), -3);
    }

    #[test]
    fn pncounter_concurrent_inc_dec_both_survive() {
        let base = PnCounter::new();
        let mut a = base.clone();
        let mut b = base.clone();
        a.increment(1, 10);
        b.decrement(2, 4);
        let m1 = a.clone().merged(&b);
        let m2 = b.clone().merged(&a);
        assert_eq!(m1, m2);
        assert_eq!(m1.value(), 6);
    }

    #[test]
    fn op_counter_ops_commute() {
        let ops = [CounterOp::Incr(3), CounterOp::Decr(1), CounterOp::Incr(4)];
        let mut fwd = OpCounter::new();
        let mut rev = OpCounter::new();
        for op in &ops {
            fwd.apply(op);
        }
        for op in ops.iter().rev() {
            rev.apply(op);
        }
        assert_eq!(fwd.value(), 6);
        assert_eq!(fwd, rev);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testutil::merge_all;
    use proptest::prelude::*;

    fn arb_gcounter() -> impl Strategy<Value = GCounter> {
        proptest::collection::btree_map(0u64..5, 0u64..50, 0..5).prop_map(|m| {
            let mut c = GCounter::new();
            for (a, n) in m {
                c.increment(a, n);
            }
            c
        })
    }

    fn arb_pncounter() -> impl Strategy<Value = PnCounter> {
        (arb_gcounter(), arb_gcounter()).prop_map(|(p, n)| {
            let mut c = PnCounter::new();
            for (a, v) in &p.counts {
                c.increment(*a, *v);
            }
            for (a, v) in &n.counts {
                c.decrement(*a, *v);
            }
            c
        })
    }

    proptest! {
        #[test]
        fn gcounter_lattice_laws(a in arb_gcounter(), b in arb_gcounter(), c in arb_gcounter()) {
            prop_assert_eq!(a.clone().merged(&b), b.clone().merged(&a));
            prop_assert_eq!(
                a.clone().merged(&b).merged(&c),
                a.clone().merged(&b.clone().merged(&c))
            );
            prop_assert_eq!(a.clone().merged(&a), a);
        }

        #[test]
        fn pncounter_lattice_laws(a in arb_pncounter(), b in arb_pncounter(), c in arb_pncounter()) {
            prop_assert_eq!(a.clone().merged(&b), b.clone().merged(&a));
            prop_assert_eq!(
                a.clone().merged(&b).merged(&c),
                a.clone().merged(&b.clone().merged(&c))
            );
            prop_assert_eq!(a.clone().merged(&a), a);
        }

        /// Increment is an inflation: merging the old state back changes nothing.
        #[test]
        fn gcounter_increment_inflates(a in arb_gcounter(), actor in 0u64..5, n in 1u64..10) {
            let old = a.clone();
            let mut new = a;
            new.increment(actor, n);
            prop_assert_eq!(new.clone().merged(&old), new);
        }

        /// Convergence: merging replicas in any order yields the same state.
        #[test]
        fn gcounter_order_insensitive(
            states in proptest::collection::vec(arb_gcounter(), 2..5),
            seed in 0u64..u64::MAX,
        ) {
            let n = states.len();
            let fwd: Vec<usize> = (0..n).collect();
            let mut rev = fwd.clone();
            rev.reverse();
            // A pseudo-random third order derived from the seed.
            let mut shuffled = fwd.clone();
            shuffled.rotate_left((seed as usize) % n);
            let r1 = merge_all(GCounter::new(), &states, &fwd);
            let r2 = merge_all(GCounter::new(), &states, &rev);
            let r3 = merge_all(GCounter::new(), &states, &shuffled);
            prop_assert_eq!(&r1, &r2);
            prop_assert_eq!(&r1, &r3);
        }

        /// Op-based counter: any permutation of ops gives the same value.
        #[test]
        fn op_counter_permutation_insensitive(
            ops in proptest::collection::vec(
                prop_oneof![ (1u64..20).prop_map(CounterOp::Incr), (1u64..20).prop_map(CounterOp::Decr) ],
                0..20),
            rot in 0usize..20,
        ) {
            let mut a = OpCounter::new();
            for op in &ops { a.apply(op); }
            let mut rotated = ops.clone();
            if !rotated.is_empty() {
                let r = rot % rotated.len();
                rotated.rotate_left(r);
            }
            let mut b = OpCounter::new();
            for op in &rotated { b.apply(op); }
            prop_assert_eq!(a, b);
        }
    }
}
