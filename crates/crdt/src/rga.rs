//! A replicated growable array (ordered sequence).
//!
//! RGA (Roh et al.) assigns every inserted element a unique, totally
//! ordered id and links it after its insertion predecessor. Concurrent
//! inserts at the same position are ordered newest-id-first, which keeps
//! all replicas' materialized sequences identical. Deletion tombstones the
//! element (ids must remain addressable by concurrent inserts).
//!
//! This is the state-based formulation: merge unions the node graphs, so
//! it composes with any anti-entropy protocol in the `replication` crate.

use crate::CvRdt;
use clocks::{ActorId, Dot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Node<T> {
    value: T,
    /// Insertion predecessor (`None` = head of sequence).
    parent: Option<Dot>,
    /// Tombstone flag; tombstoned nodes keep their position but are
    /// invisible in [`Rga::to_vec`].
    removed: bool,
}

/// A replicated growable array.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rga<T> {
    nodes: BTreeMap<Dot, Node<T>>,
}

impl<T: Clone + PartialEq> Rga<T> {
    /// An empty sequence.
    pub fn new() -> Self {
        Rga { nodes: BTreeMap::new() }
    }

    /// The Lamport-style counter for the next insert: one past the largest
    /// counter of any node seen (local or merged), so ids of causally later
    /// inserts are larger.
    fn next_counter(&self) -> u64 {
        self.nodes.keys().map(|d| d.counter).max().unwrap_or(0) + 1
    }

    /// Insert `value` after node `parent` (or at the head when `None`).
    /// Returns the new element's id.
    ///
    /// # Panics
    /// If `parent` names an id this replica has never seen.
    pub fn insert_after(&mut self, actor: ActorId, parent: Option<Dot>, value: T) -> Dot {
        if let Some(p) = parent {
            assert!(self.nodes.contains_key(&p), "unknown parent {p}");
        }
        let id = Dot::new(actor, self.next_counter());
        self.nodes.insert(id, Node { value, parent, removed: false });
        id
    }

    /// Insert at the visible index `idx` (0 = head) as `actor`.
    ///
    /// # Panics
    /// If `idx` exceeds the current visible length.
    pub fn insert_at(&mut self, actor: ActorId, idx: usize, value: T) -> Dot {
        let visible = self.visible_ids();
        assert!(idx <= visible.len(), "index {idx} out of bounds");
        let parent = if idx == 0 { None } else { Some(visible[idx - 1]) };
        self.insert_after(actor, parent, value)
    }

    /// Append at the end of the sequence.
    pub fn push(&mut self, actor: ActorId, value: T) -> Dot {
        let parent = self.visible_ids().last().copied();
        self.insert_after(actor, parent, value)
    }

    /// Tombstone the element with id `id`. Removing an unknown or already
    /// removed id is a no-op (removal is idempotent).
    pub fn remove(&mut self, id: Dot) {
        if let Some(n) = self.nodes.get_mut(&id) {
            n.removed = true;
        }
    }

    /// Remove the element at visible index `idx`, returning its id.
    ///
    /// # Panics
    /// If `idx` is out of bounds.
    pub fn remove_at(&mut self, idx: usize) -> Dot {
        let id = self.visible_ids()[idx];
        self.remove(id);
        id
    }

    /// The visible sequence, in order.
    pub fn to_vec(&self) -> Vec<T> {
        self.ordered_ids()
            .into_iter()
            .filter_map(|id| {
                let n = &self.nodes[&id];
                (!n.removed).then(|| n.value.clone())
            })
            .collect()
    }

    /// Ids of visible elements, in sequence order.
    pub fn visible_ids(&self) -> Vec<Dot> {
        self.ordered_ids().into_iter().filter(|id| !self.nodes[id].removed).collect()
    }

    /// Number of visible elements.
    pub fn len(&self) -> usize {
        self.nodes.values().filter(|n| !n.removed).count()
    }

    /// True if no visible elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total nodes including tombstones (metadata-overhead metric).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All ids (including tombstones) in materialized order: depth-first
    /// from the virtual root, children ordered newest-id-first.
    fn ordered_ids(&self) -> Vec<Dot> {
        // parent -> children (children sorted descending by (counter, actor))
        let mut children: BTreeMap<Option<Dot>, Vec<Dot>> = BTreeMap::new();
        for (&id, node) in &self.nodes {
            children.entry(node.parent).or_default().push(id);
        }
        for kids in children.values_mut() {
            kids.sort_by_key(|k| std::cmp::Reverse((k.counter, k.actor)));
        }
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<Dot> = children.get(&None).cloned().unwrap_or_default();
        stack.reverse(); // pop order = sorted order
        while let Some(id) = stack.pop() {
            out.push(id);
            if let Some(kids) = children.get(&Some(id)) {
                for &k in kids.iter().rev() {
                    stack.push(k);
                }
            }
        }
        out
    }
}

impl<T: Clone + PartialEq> CvRdt for Rga<T> {
    fn merge(&mut self, other: &Self) {
        for (&id, node) in &other.nodes {
            match self.nodes.get_mut(&id) {
                Some(existing) => existing.removed |= node.removed,
                None => {
                    self.nodes.insert(id, node.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_builds_sequence() {
        let mut r = Rga::new();
        r.push(1, 'a');
        r.push(1, 'b');
        r.push(1, 'c');
        assert_eq!(r.to_vec(), vec!['a', 'b', 'c']);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn insert_at_positions() {
        let mut r = Rga::new();
        r.push(1, 'b');
        r.insert_at(1, 0, 'a');
        r.insert_at(1, 2, 'c');
        assert_eq!(r.to_vec(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn remove_tombstones_but_keeps_position() {
        let mut r = Rga::new();
        r.push(1, 'a');
        let b = r.push(1, 'b');
        r.push(1, 'c');
        r.remove(b);
        assert_eq!(r.to_vec(), vec!['a', 'c']);
        assert_eq!(r.node_count(), 3);
        // Insert after the tombstone's predecessor still works.
        r.insert_at(1, 1, 'x');
        assert_eq!(r.to_vec(), vec!['a', 'x', 'c']);
    }

    #[test]
    fn concurrent_inserts_same_position_converge() {
        let mut base = Rga::new();
        base.push(0, 'a');
        let mut alice = base.clone();
        let mut bob = base.clone();
        alice.insert_at(1, 1, 'X');
        bob.insert_at(2, 1, 'Y');
        let m1 = alice.clone().merged(&bob);
        let m2 = bob.clone().merged(&alice);
        assert_eq!(m1.to_vec(), m2.to_vec());
        assert_eq!(m1.len(), 3);
        assert_eq!(m1.to_vec()[0], 'a');
    }

    #[test]
    fn concurrent_insert_and_remove_converge() {
        let mut base = Rga::new();
        let a = base.push(0, 'a');
        base.push(0, 'b');
        let mut alice = base.clone();
        let mut bob = base.clone();
        alice.remove(a);
        bob.insert_after(2, Some(a), 'Z'); // insert after the removed node
        let m1 = alice.clone().merged(&bob);
        let m2 = bob.clone().merged(&alice);
        assert_eq!(m1.to_vec(), m2.to_vec());
        assert_eq!(m1.to_vec(), vec!['Z', 'b']);
    }

    #[test]
    fn remove_unknown_is_noop() {
        let mut r: Rga<char> = Rga::new();
        r.remove(Dot::new(9, 9));
        assert!(r.is_empty());
    }

    #[test]
    fn interleaved_editing_session() {
        // Two replicas collaboratively build "hello" and converge.
        let mut a = Rga::new();
        let h = a.push(1, 'h');
        let mut b = a.clone();
        let e = a.insert_after(1, Some(h), 'e');
        a.insert_after(1, Some(e), 'l');
        let o = b.insert_after(2, Some(h), 'o');
        b.insert_after(2, Some(o), '!');
        let merged = a.clone().merged(&b);
        let merged2 = b.merged(&a);
        assert_eq!(merged.to_vec(), merged2.to_vec());
        assert_eq!(merged.to_vec()[0], 'h');
        assert_eq!(merged.len(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn insert_after_unknown_parent_panics() {
        let mut r = Rga::new();
        r.insert_after(1, Some(Dot::new(5, 5)), 'x');
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    // Replay a random edit script on two replicas with a final merge; the
    // merged sequences must be identical regardless of merge direction.
    proptest! {
        #[test]
        fn merge_converges(
            script in proptest::collection::vec((0usize..2, 0u8..26, proptest::bool::ANY), 1..20)
        ) {
            let mut reps = [Rga::new(), Rga::new()];
            for (r, ch, is_remove) in script {
                let rep = &mut reps[r];
                if is_remove && !rep.is_empty() {
                    let idx = (ch as usize) % rep.len();
                    rep.remove_at(idx);
                } else {
                    let idx = if rep.is_empty() { 0 } else { (ch as usize) % (rep.len() + 1) };
                    rep.insert_at(r as u64, idx, (b'a' + ch) as char);
                }
            }
            let [a, b] = reps;
            let m1 = a.clone().merged(&b);
            let m2 = b.clone().merged(&a);
            prop_assert_eq!(m1.to_vec(), m2.to_vec());
            // Idempotence.
            let m3 = m1.clone().merged(&m1);
            prop_assert_eq!(m3.to_vec(), m1.to_vec());
        }

        #[test]
        fn three_way_merge_associative(
            edits in proptest::collection::vec((0usize..3, 0u8..26), 1..15)
        ) {
            let mut reps = [Rga::new(), Rga::new(), Rga::new()];
            for (r, ch) in edits {
                let idx = if reps[r].is_empty() { 0 } else { (ch as usize) % (reps[r].len() + 1) };
                reps[r].insert_at(r as u64, idx, ch);
            }
            let [a, b, c] = reps;
            let l = a.clone().merged(&b).merged(&c);
            let r = a.clone().merged(&b.clone().merged(&c));
            prop_assert_eq!(l.to_vec(), r.to_vec());
        }
    }
}
