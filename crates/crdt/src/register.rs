//! Replicated registers: last-writer-wins and multi-value.

use crate::CvRdt;
use clocks::{ActorId, CausalOrd, LamportTimestamp, VectorClock};
use serde::{Deserialize, Serialize};

/// A last-writer-wins register.
///
/// Arbitrates concurrent writes by `(timestamp, actor)` — simple, a single
/// surviving value, and **lossy**: one of two concurrent writes silently
/// disappears. Experiment E6 measures exactly how lossy under contention.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LwwRegister<T> {
    value: Option<T>,
    ts: LamportTimestamp,
}

impl<T: Clone> LwwRegister<T> {
    /// An empty register.
    pub fn new() -> Self {
        LwwRegister { value: None, ts: LamportTimestamp::default() }
    }

    /// Write `value` with timestamp `ts`. Later timestamps win; equal
    /// timestamps are impossible if callers use `(clock, actor)` stamps.
    pub fn set(&mut self, ts: LamportTimestamp, value: T) {
        if ts > self.ts {
            self.ts = ts;
            self.value = Some(value);
        }
    }

    /// The current value, if any.
    pub fn get(&self) -> Option<&T> {
        self.value.as_ref()
    }

    /// The timestamp of the current value.
    pub fn timestamp(&self) -> LamportTimestamp {
        self.ts
    }
}

impl<T: Clone> CvRdt for LwwRegister<T> {
    fn merge(&mut self, other: &Self) {
        if other.ts > self.ts {
            self.ts = other.ts;
            self.value = other.value.clone();
        }
    }
}

/// A multi-value register.
///
/// Keeps *all* causally-maximal writes: a read returns the set of siblings,
/// and it is the application's job to reconcile (the Dynamo shopping-cart
/// design). Writing with knowledge of the current siblings supersedes them.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MvRegister<T> {
    /// Causally-maximal (value, clock) pairs; pairwise concurrent.
    siblings: Vec<(T, VectorClock)>,
}

impl<T: Clone + PartialEq> MvRegister<T> {
    /// An empty register.
    pub fn new() -> Self {
        MvRegister { siblings: Vec::new() }
    }

    /// Write `value` as `actor`, superseding every sibling currently
    /// visible in this replica (the write's context is their join).
    pub fn set(&mut self, actor: ActorId, value: T) {
        let mut ctx = VectorClock::new();
        for (_, vc) in &self.siblings {
            ctx.merge(vc);
        }
        ctx.increment(actor);
        self.siblings = vec![(value, ctx)];
    }

    /// Current sibling values (one if no unresolved concurrency).
    pub fn get(&self) -> Vec<&T> {
        self.siblings.iter().map(|(v, _)| v).collect()
    }

    /// Number of concurrent siblings.
    pub fn sibling_count(&self) -> usize {
        self.siblings.len()
    }

    /// True if no write has happened.
    pub fn is_empty(&self) -> bool {
        self.siblings.is_empty()
    }

    fn insert_sibling(&mut self, value: T, vc: VectorClock) {
        // Drop existing siblings dominated by the incoming one; skip the
        // incoming one if it is dominated by (or equal to) an existing one.
        let mut dominated = false;
        self.siblings.retain(|(v, existing)| match existing.compare(&vc) {
            CausalOrd::Before => false,
            CausalOrd::Equal => {
                // Same causal history: keep one copy (values must agree for
                // deterministic writers; if not, keep the existing one).
                let _ = v;
                dominated = true;
                true
            }
            CausalOrd::After => {
                dominated = true;
                true
            }
            CausalOrd::Concurrent => true,
        });
        if !dominated {
            self.siblings.push((value, vc));
        }
    }
}

impl<T: Clone + PartialEq> CvRdt for MvRegister<T> {
    fn merge(&mut self, other: &Self) {
        for (v, vc) in &other.siblings {
            self.insert_sibling(v.clone(), vc.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(c: u64, a: ActorId) -> LamportTimestamp {
        LamportTimestamp::new(c, a)
    }

    #[test]
    fn lww_later_write_wins() {
        let mut r = LwwRegister::new();
        r.set(ts(1, 0), "a");
        r.set(ts(2, 0), "b");
        assert_eq!(r.get(), Some(&"b"));
        // Stale write ignored.
        r.set(ts(1, 5), "c");
        assert_eq!(r.get(), Some(&"b"));
    }

    #[test]
    fn lww_merge_picks_max_timestamp() {
        let mut a = LwwRegister::new();
        let mut b = LwwRegister::new();
        a.set(ts(5, 1), "from-a");
        b.set(ts(5, 2), "from-b"); // same counter, higher actor wins
        let m1 = a.clone().merged(&b);
        let m2 = b.clone().merged(&a);
        assert_eq!(m1, m2);
        assert_eq!(m1.get(), Some(&"from-b"));
    }

    #[test]
    fn lww_loses_concurrent_write() {
        // The tutorial's cautionary tale: two concurrent writes, one vanishes.
        let base: LwwRegister<&str> = LwwRegister::new();
        let mut a = base.clone();
        let mut b = base.clone();
        a.set(ts(1, 1), "alice");
        b.set(ts(1, 2), "bob");
        let m = a.merged(&b);
        assert_eq!(m.get(), Some(&"bob"));
        // "alice" is gone: exactly the loss E6 counts.
    }

    #[test]
    fn mv_keeps_concurrent_siblings() {
        let base: MvRegister<&str> = MvRegister::new();
        let mut a = base.clone();
        let mut b = base.clone();
        a.set(1, "alice");
        b.set(2, "bob");
        let m = a.merged(&b);
        let mut got = m.get();
        got.sort();
        assert_eq!(got, vec![&"alice", &"bob"]);
        assert_eq!(m.sibling_count(), 2);
    }

    #[test]
    fn mv_write_supersedes_seen_siblings() {
        let base: MvRegister<&str> = MvRegister::new();
        let mut a = base.clone();
        let mut b = base.clone();
        a.set(1, "alice");
        b.set(2, "bob");
        let mut merged = a.merged(&b);
        assert_eq!(merged.sibling_count(), 2);
        // A client that has seen both siblings writes a resolution.
        merged.set(3, "resolved");
        assert_eq!(merged.get(), vec![&"resolved"]);
        // Merging the old divergent states back does not resurrect them.
        let mut again = merged.clone();
        let mut stale = base.clone();
        stale.set(1, "alice");
        again.merge(&stale);
        assert_eq!(again.get(), vec![&"resolved"]);
    }

    #[test]
    fn mv_sequential_writes_single_value() {
        let mut r = MvRegister::new();
        r.set(1, 10);
        r.set(1, 20);
        r.set(2, 30);
        assert_eq!(r.get(), vec![&30]);
        assert!(!r.is_empty());
    }

    #[test]
    fn mv_merge_idempotent_with_self() {
        let mut r = MvRegister::new();
        r.set(1, "x");
        let merged = r.clone().merged(&r);
        assert_eq!(merged, r);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// An LWW register whose (counter, actor) stamp is unique to `actor`:
    /// LWW merge is only a semilattice when no two distinct values share a
    /// timestamp, which real writers guarantee via unique actor ids.
    fn arb_lww(actor: u64) -> impl Strategy<Value = LwwRegister<u32>> {
        proptest::option::of((0u64..50, any::<u32>())).prop_map(move |w| {
            let mut r = LwwRegister::new();
            if let Some((c, v)) = w {
                r.set(LamportTimestamp::new(c + 1, actor), v);
            }
            r
        })
    }

    /// Replay a script of (replica, value) writes with occasional
    /// cross-replica merges, returning the three divergent replicas.
    ///
    /// All replicas come from *one* shared history: CRDT laws only hold
    /// when actor ids tick uniquely, so merging registers from unrelated
    /// universes (which could reuse a (actor, counter) pair for different
    /// values) is outside the contract.
    fn arb_mv_replicas() -> impl Strategy<Value = [MvRegister<u32>; 3]> {
        proptest::collection::vec((0usize..3, any::<u32>(), proptest::bool::ANY), 0..12).prop_map(
            |script| {
                let mut replicas = [MvRegister::new(), MvRegister::new(), MvRegister::new()];
                for (r, v, sync) in script {
                    replicas[r].set(r as u64, v);
                    if sync {
                        let src = replicas[(r + 1) % 3].clone();
                        replicas[r].merge(&src);
                    }
                }
                replicas
            },
        )
    }

    proptest! {
        #[test]
        fn lww_lattice_laws(a in arb_lww(0), b in arb_lww(1), c in arb_lww(2)) {
            prop_assert_eq!(a.clone().merged(&b), b.clone().merged(&a));
            prop_assert_eq!(
                a.clone().merged(&b).merged(&c),
                a.clone().merged(&b.clone().merged(&c))
            );
            prop_assert_eq!(a.clone().merged(&a), a);
        }

        #[test]
        fn mv_merge_commutative_and_idempotent(reps in arb_mv_replicas()) {
            let [a, b, _] = reps;
            let ab = a.clone().merged(&b);
            let ba = b.clone().merged(&a);
            // Sibling order may differ; compare as sorted multisets.
            let mut xs: Vec<_> = ab.get().into_iter().cloned().collect();
            let mut ys: Vec<_> = ba.get().into_iter().cloned().collect();
            xs.sort_unstable();
            ys.sort_unstable();
            prop_assert_eq!(xs, ys);
            let aa = a.clone().merged(&a);
            prop_assert_eq!(aa.sibling_count(), a.sibling_count());
        }

        /// Merging in any association order yields the same sibling values.
        #[test]
        fn mv_merge_associative(reps in arb_mv_replicas()) {
            let [a, b, c] = reps;
            let l = a.clone().merged(&b).merged(&c);
            let r = a.clone().merged(&b.clone().merged(&c));
            let mut xs: Vec<_> = l.get().into_iter().cloned().collect();
            let mut ys: Vec<_> = r.get().into_iter().cloned().collect();
            xs.sort_unstable();
            ys.sort_unstable();
            prop_assert_eq!(xs, ys);
        }

        /// Siblings that survive a merge are pairwise concurrent.
        #[test]
        fn mv_siblings_pairwise_concurrent(reps in arb_mv_replicas()) {
            let [a, b, _] = reps;
            let m = a.merged(&b);
            for i in 0..m.siblings.len() {
                for j in (i + 1)..m.siblings.len() {
                    let ord = m.siblings[i].1.compare(&m.siblings[j].1);
                    prop_assert!(ord.is_concurrent(), "{:?}", ord);
                }
            }
        }
    }
}
