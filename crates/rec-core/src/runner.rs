//! Deployment builder and experiment runner.
//!
//! [`Experiment::run`] normalizes the scheme to its kernel
//! [`Composition`] ([`Scheme::normalize`]) and materializes *that* — the
//! legacy presets and explicit [`Scheme::Composed`] schemes share one
//! deployment path, which is what makes legacy-vs-composed byte parity
//! structural rather than coincidental.

use crate::scheme::{ClientPlacement, Scheme};
use obs::{MetricsReport, Recorder, TsMetric, DEFAULT_TS_BUCKET_US};
use replication::causal::{CausalClient, CausalReplica};
use replication::common::{expand_script, Guarantees, ScriptOp};
use replication::eventual::{EventualClient, EventualConfig, EventualReplica, TargetPolicy};
use replication::kernel::{Composition, PropagationPolicy, ShipMode, UpdateSite};
use replication::paxos::{PaxosClient, PaxosConfig, PaxosNode};
use replication::primary::{PrimaryClient, PrimaryConfig, PrimaryReplica, ReadFrom};
use replication::quorum::{QuorumClient, QuorumConfig, QuorumNode};
use replication::sharded::ShardedConfig;
use simnet::{
    optrace, FaultSchedule, LatencyModel, NodeId, OpTrace, QueueKind, Sim, SimConfig, SimRng,
    SimTime,
};
use workload::WorkloadSpec;

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The replication scheme under test.
    pub scheme: Scheme,
    /// Network model.
    pub latency: LatencyModel,
    /// Scripted faults.
    pub faults: FaultSchedule,
    /// Seed (the run is a pure function of this struct).
    pub seed: u64,
    /// The workload.
    pub workload: WorkloadSpec,
    /// Virtual-time budget for the run.
    pub horizon: SimTime,
    /// Observability sink threaded into the simulator and protocols
    /// (disabled by default; see [`obs::Recorder`]).
    pub recorder: Recorder,
    /// First trace/span id offset for this run (see
    /// [`simnet::SimConfig::trace_base`]); a grid gives each cell a
    /// disjoint range so concatenated trace files keep unique ids.
    pub trace_base: u64,
    /// Event-queue backend for the simulator core (timing wheel by
    /// default; the binary heap is kept as a reference for parity tests
    /// and benchmarks — see docs/PERFORMANCE.md).
    pub queue: QueueKind,
    /// Enable the in-sim handler profiler for this run (see
    /// `docs/PROFILING.md`). Turns profiling on in the attached
    /// recorder and labels its samples with the scheme under test.
    pub profile: bool,
}

/// What a run produced.
#[derive(Debug)]
pub struct RunResult {
    /// Every client operation, in completion order.
    pub trace: OpTrace,
    /// Messages delivered by the network.
    pub delivered_messages: u64,
    /// Messages dropped (partition, loss, crash).
    pub dropped_messages: u64,
    /// Virtual time when the run ended.
    pub ended_at: SimTime,
    /// Total simulator events processed (messages, timers, faults) —
    /// the denominator benchmarks use for events/sec.
    pub events: u64,
    /// Aggregated counters and latency summaries from the run's
    /// recorder (all zeros when no recorder was attached).
    pub metrics: MetricsReport,
    /// Final `(node, key, version)` triples from every server store at
    /// the horizon (see [`simnet::Actor::key_versions`]) — what
    /// ownership-aware convergence checks consume.
    pub final_versions: Vec<(NodeId, u64, u64)>,
}

impl Experiment {
    /// An experiment with default network (LAN), no faults, seed 0, and
    /// the small workload.
    pub fn new(scheme: Scheme) -> Self {
        Experiment {
            scheme,
            latency: LatencyModel::lan(),
            faults: FaultSchedule::none(),
            seed: 0,
            workload: WorkloadSpec::small(),
            horizon: SimTime::from_secs(60),
            recorder: Recorder::disabled(),
            trace_base: 0,
            queue: QueueKind::default(),
            profile: false,
        }
    }

    /// Set the workload.
    pub fn workload(mut self, w: WorkloadSpec) -> Self {
        self.workload = w;
        self
    }

    /// Set the latency model.
    pub fn latency(mut self, l: LatencyModel) -> Self {
        self.latency = l;
        self
    }

    /// Set the fault schedule.
    pub fn faults(mut self, f: FaultSchedule) -> Self {
        self.faults = f;
        self
    }

    /// Set the seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Set the virtual-time horizon.
    pub fn horizon(mut self, h: SimTime) -> Self {
        self.horizon = h;
        self
    }

    /// Attach an observability recorder. The same handle can be kept by
    /// the caller to export the event log after the run.
    pub fn recorder(mut self, r: Recorder) -> Self {
        self.recorder = r;
        self
    }

    /// Offset this run's trace/span id allocation (see
    /// [`simnet::SimConfig::trace_base`]).
    pub fn trace_base(mut self, base: u64) -> Self {
        self.trace_base = base;
        self
    }

    /// Select the simulator's event-queue backend (parity tests and
    /// benchmarks pin this; everything else takes the default wheel).
    pub fn queue(mut self, kind: QueueKind) -> Self {
        self.queue = kind;
        self
    }

    /// Enable per-handler profiling for this run (see
    /// `docs/PROFILING.md`).
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Generate the per-session scripts (deterministic in the seed).
    fn scripts(&self) -> Vec<Vec<ScriptOp>> {
        let root = SimRng::new(self.seed ^ 0x5eed_f00d);
        (0..self.workload.sessions)
            .map(|i| {
                let mut rng = root.fork(i as u64 + 1);
                expand_script(&self.workload.session_script(&mut rng))
            })
            .collect()
    }

    /// Run the experiment to its horizon and collect the trace.
    pub fn run(&self) -> RunResult {
        self.run_inner(optrace::shared_trace(), None)
    }

    /// Run the experiment with a live monitor: at every time-series
    /// bucket boundary the operations newly completed since the last
    /// boundary are handed to `monitor` in `(completed, session,
    /// op_id)` order — the exact feed order the streaming checkers
    /// ([`consistency::stream`]) require — together with the current
    /// virtual time (a watermark: every future op completes at or after
    /// it). Monitoring slices the run exactly like an attached recorder
    /// does, and slicing is event-for-event identical to an unsliced
    /// run, so the trace and verdicts are unchanged by observation.
    pub fn run_monitored(
        &self,
        monitor: &mut dyn FnMut(&[simnet::OpRecord], SimTime),
    ) -> RunResult {
        let trace = optrace::shared_trace();
        let hook_trace = trace.clone();
        let mut fed = 0usize;
        let mut hook = |now: SimTime| {
            let slice = {
                let tr = hook_trace.borrow();
                let mut slice = tr.records()[fed..].to_vec();
                fed = tr.len();
                // Records are pushed at completion time, so the slice is
                // already nearly sorted; the explicit key also fixes the
                // order of same-instant completions.
                slice.sort_by_key(|r| (r.completed, r.session, r.op_id));
                slice
            };
            monitor(&slice, now);
        };
        self.run_inner(trace, Some(&mut hook))
    }

    fn run_inner(
        &self,
        trace: simnet::SharedTrace,
        monitor: Option<&mut dyn FnMut(SimTime)>,
    ) -> RunResult {
        if self.profile {
            // Must happen before `Sim::new` caches the recorder's
            // profiling flag; the scheme label keys every sample.
            self.recorder.enable_profiling();
            self.recorder.set_profile_scheme(&self.scheme.label());
        }
        let mut faults = self.faults.clone();
        if let Scheme::Sharded { churn, .. } = &self.scheme {
            // Churn rides the compiled fault pipeline, so membership
            // events interleave deterministically with partitions and
            // crashes (identical across `--jobs`).
            for &(at, node, join) in &churn.events {
                faults = faults.membership(at, node, join);
            }
        }
        let cfg = SimConfig::default()
            .seed(self.seed)
            .latency(self.latency.clone())
            .faults(faults)
            .recorder(self.recorder.clone())
            .trace_base(self.trace_base)
            .queue(self.queue);
        let scripts = self.scripts();

        let (delivered, dropped, events, ended, final_versions) = match &self.scheme {
            Scheme::Sharded { inner, nodes, vnodes, .. } => {
                run_sharded(cfg, inner, *nodes, *vnodes, scripts, &trace, self.horizon, monitor)
            }
            _ => {
                let (comp, guarantees, placement) = self.scheme.normalize();
                run_composition(
                    cfg,
                    &comp,
                    guarantees,
                    placement,
                    scripts,
                    &trace,
                    self.horizon,
                    monitor,
                )
            }
        };

        let mut trace = trace.borrow().clone();
        trace.sort_by_completion();
        RunResult {
            trace,
            delivered_messages: delivered,
            dropped_messages: dropped,
            ended_at: ended,
            events,
            metrics: self.recorder.report(),
            final_versions,
        }
    }
}

/// What [`drive`] hands back from a finished simulation: delivered and
/// dropped message counts, total events, the final virtual time, and
/// every replica's `(node, key, version)` store contents.
type DriveOutcome = (u64, u64, u64, SimTime, Vec<(NodeId, u64, u64)>);

/// Materialize a kernel [`Composition`] into a concrete actor deployment
/// and drive it to the horizon. This is the single deployment path every
/// [`Scheme`] goes through.
///
/// `guarantees` applies only to multi-master eventual compositions
/// (other protocols enforce their guarantees server-side); `placement`
/// applies where the protocol has a per-client replica choice (causal
/// and primary clients are always sticky, Paxos clients always talk to
/// the leader's group).
#[allow(clippy::too_many_arguments)]
fn run_composition(
    cfg: SimConfig,
    comp: &Composition,
    guarantees: Guarantees,
    placement: ClientPlacement,
    scripts: Vec<Vec<ScriptOp>>,
    trace: &simnet::SharedTrace,
    horizon: SimTime,
    monitor: Option<&mut dyn FnMut(SimTime)>,
) -> DriveOutcome {
    let n = comp.replicas;
    match (comp.update, &comp.propagation) {
        (
            UpdateSite::MultiMaster,
            PropagationPolicy::EagerBroadcast { .. } | PropagationPolicy::AntiEntropyGossip(_),
        ) => {
            let (eager, gossip, eager_acks) = match comp.propagation {
                PropagationPolicy::EagerBroadcast { acks, gossip } => (true, gossip, acks),
                PropagationPolicy::AntiEntropyGossip(g) => (false, Some(g), 0),
                _ => unreachable!(),
            };
            let mode = comp.resolution.conflict_mode();
            let ecfg = EventualConfig {
                replicas: n,
                eager,
                gossip,
                mode,
                eager_acks,
                durability: comp.durability,
            };
            let mut sim = Sim::new(cfg);
            for _ in 0..n {
                sim.add_node(Box::new(EventualReplica::new(ecfg.clone())));
            }
            for (i, script) in scripts.into_iter().enumerate() {
                let policy = match placement {
                    ClientPlacement::Sticky => TargetPolicy::Sticky(NodeId((i % n) as u32)),
                    ClientPlacement::Random => TargetPolicy::Random,
                };
                sim.add_node(Box::new(EventualClient::new(
                    i as u64 + 1,
                    script,
                    trace.clone(),
                    n,
                    policy,
                    guarantees,
                    mode,
                )));
            }
            drive(sim, horizon, monitor)
        }
        (
            UpdateSite::Coordinator,
            &PropagationPolicy::QuorumFanout { r, w, read_repair, spares },
        ) => {
            let qcfg = QuorumConfig {
                r,
                w,
                read_repair,
                sloppy: spares > 0,
                spares,
                ..QuorumConfig::majority(n)
            };
            let mut sim = Sim::new(cfg);
            for _ in 0..qcfg.total_nodes() {
                sim.add_node(Box::new(QuorumNode::new(qcfg)));
            }
            for (i, script) in scripts.into_iter().enumerate() {
                let home = match placement {
                    ClientPlacement::Sticky => Some(NodeId((i % n) as u32)),
                    ClientPlacement::Random => None,
                };
                sim.add_node(Box::new(QuorumClient::new(
                    i as u64 + 1,
                    script,
                    trace.clone(),
                    n,
                    home,
                )));
            }
            drive(sim, horizon, monitor)
        }
        (UpdateSite::PrimaryCopy, &PropagationPolicy::PrimaryShip { ship, failover }) => {
            let pcfg = match ship {
                ShipMode::Sync => PrimaryConfig::sync_all(n),
                ShipMode::Async { interval } => PrimaryConfig::async_lag(n, interval),
            };
            let pcfg = if failover { pcfg.with_failover() } else { pcfg };
            run_primary(cfg, pcfg, scripts, trace, horizon, monitor)
        }
        (UpdateSite::ConsensusGroup, PropagationPolicy::ConsensusLog) => {
            let pcfg = PaxosConfig::new(n);
            let mut sim = Sim::new(cfg);
            for _ in 0..n {
                sim.add_node(Box::new(PaxosNode::new(pcfg)));
            }
            for (i, script) in scripts.into_iter().enumerate() {
                sim.add_node(Box::new(PaxosClient::new(i as u64 + 1, script, trace.clone(), n)));
            }
            drive(sim, horizon, monitor)
        }
        (UpdateSite::MultiMaster, PropagationPolicy::CausalBroadcast) => {
            let mut sim = Sim::new(cfg);
            for _ in 0..n {
                sim.add_node(Box::new(CausalReplica::new(n)));
            }
            for (i, script) in scripts.into_iter().enumerate() {
                sim.add_node(Box::new(CausalClient::new(
                    i as u64 + 1,
                    script,
                    trace.clone(),
                    NodeId((i % n) as u32),
                )));
            }
            drive(sim, horizon, monitor)
        }
        _ => panic!(
            "composition {} pairs an update site with a propagation policy the kernel \
             has no materialization for",
            comp.label()
        ),
    }
}

/// Materialize a [`Scheme::Sharded`] deployment: a consistent-hashing
/// ring of `nodes` physical nodes (each with `vnodes` virtual nodes)
/// running the inner quorum composition per key. Clients stick to node
/// `i % nodes` as their coordinator; any node can coordinate any key
/// (Dynamo-style), with per-key preference lists from the ring.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    cfg: SimConfig,
    comp: &Composition,
    nodes: usize,
    vnodes: usize,
    scripts: Vec<Vec<ScriptOp>>,
    trace: &simnet::SharedTrace,
    horizon: SimTime,
    monitor: Option<&mut dyn FnMut(SimTime)>,
) -> DriveOutcome {
    let n = comp.replicas;
    match (comp.update, &comp.propagation) {
        (
            UpdateSite::Coordinator,
            &PropagationPolicy::QuorumFanout { r, w, read_repair, spares },
        ) => {
            let qcfg = QuorumConfig {
                r,
                w,
                read_repair,
                sloppy: spares > 0,
                spares,
                ..QuorumConfig::majority(n)
            };
            let scfg = ShardedConfig::new(qcfg, nodes, vnodes);
            let mut sim = Sim::new(cfg);
            for node in scfg.build_nodes() {
                sim.add_node(Box::new(node));
            }
            for (i, script) in scripts.into_iter().enumerate() {
                sim.add_node(Box::new(QuorumClient::new(
                    i as u64 + 1,
                    script,
                    trace.clone(),
                    nodes,
                    Some(NodeId((i % nodes) as u32)),
                )));
            }
            drive(sim, horizon, monitor)
        }
        _ => panic!(
            "ring sharding runs a coordinator/quorum composition per key; {} has no \
             sharded materialization",
            comp.label()
        ),
    }
}

fn run_primary(
    cfg: SimConfig,
    pcfg: PrimaryConfig,
    scripts: Vec<Vec<ScriptOp>>,
    trace: &simnet::SharedTrace,
    horizon: SimTime,
    monitor: Option<&mut dyn FnMut(SimTime)>,
) -> DriveOutcome {
    let n = pcfg.replicas;
    let mut sim = Sim::new(cfg);
    for _ in 0..n {
        sim.add_node(Box::new(PrimaryReplica::new(pcfg)));
    }
    for (i, script) in scripts.into_iter().enumerate() {
        sim.add_node(Box::new(PrimaryClient::new(
            i as u64 + 1,
            script,
            trace.clone(),
            pcfg,
            ReadFrom::Replica(NodeId((i % n) as u32)),
        )));
    }
    drive(sim, horizon, monitor)
}

/// Run the simulation to its horizon. With a recorder attached or a
/// monitor installed, the run is sliced into probe windows (one per
/// time-series bucket, so probe samples and client-side staleness
/// samples share bucket boundaries): at each boundary the driver samples
/// per-key replica divergence (distinct versions across nodes, via
/// [`simnet::Actor::key_versions`]) and the in-flight message depth, and
/// hands the boundary time to the monitor. Probes only read simulator
/// state, so a sliced run is event-for-event identical to an unsliced
/// one.
fn drive<M: simnet::MsgMeta>(
    mut sim: Sim<M>,
    horizon: SimTime,
    mut monitor: Option<&mut dyn FnMut(SimTime)>,
) -> DriveOutcome {
    let probing = sim.recorder().is_enabled();
    if !probing && monitor.is_none() {
        let events = sim.run_until(horizon);
        let versions = sim.key_versions();
        return (sim.delivered_messages, sim.dropped_messages, events, sim.now(), versions);
    }
    let horizon_us = horizon.as_micros();
    let mut t = 0u64;
    let mut events = 0u64;
    while t < horizon_us {
        t = (t + DEFAULT_TS_BUCKET_US).min(horizon_us);
        events += sim.run_until(SimTime::from_micros(t));
        if probing {
            sim.recorder().sample(t, TsMetric::InflightDepth, sim.inflight_messages());
            let mut per_key: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>> =
                std::collections::BTreeMap::new();
            for (_, key, version) in sim.key_versions() {
                per_key.entry(key).or_default().insert(version);
            }
            for versions in per_key.values() {
                sim.recorder().sample(t, TsMetric::ReplicaDivergence, versions.len() as u64);
            }
        }
        if let Some(m) = monitor.as_deref_mut() {
            m(SimTime::from_micros(t));
        }
    }
    let versions = sim.key_versions();
    (sim.delivered_messages, sim.dropped_messages, events, sim.now(), versions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use consistency::{check_session_guarantees, check_trace_linearizable};
    use simnet::Duration;
    use simnet::OpKind;
    use workload::{Arrival, KeyDistribution, OpMix};

    fn tiny_workload() -> WorkloadSpec {
        WorkloadSpec {
            keys: 10,
            distribution: KeyDistribution::Uniform,
            mix: OpMix::ycsb_a(),
            arrival: Arrival::Closed { think_us: 5_000 },
            sessions: 3,
            ops_per_session: 20,
        }
    }

    #[test]
    fn all_schemes_complete_the_workload() {
        for scheme in [
            Scheme::eventual(3),
            Scheme::quorum(3, 2, 2),
            Scheme::PrimarySync { replicas: 3 },
            Scheme::PrimaryAsync { replicas: 3, ship_interval: Duration::from_millis(50) },
            Scheme::Paxos { nodes: 3 },
            Scheme::Causal { replicas: 3 },
        ] {
            let label = scheme.label();
            let res = Experiment::new(scheme).workload(tiny_workload()).seed(7).run();
            assert_eq!(res.trace.len(), 60, "{label}: every scripted op must be recorded");
            assert!(
                res.trace.success_rate() > 0.95,
                "{label}: fault-free run should succeed (rate {})",
                res.trace.success_rate()
            );
            assert!(res.delivered_messages > 0, "{label}: protocol exchanged messages");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            Experiment::new(Scheme::quorum(3, 2, 2))
                .workload(tiny_workload())
                .seed(seed)
                .run()
                .trace
        };
        let a = run(5);
        let b = run(5);
        let c = run(6);
        assert_eq!(a.records(), b.records());
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn monitored_run_is_identical_and_feeds_every_op() {
        let exp = Experiment::new(Scheme::quorum(3, 2, 2)).workload(tiny_workload()).seed(5);
        let plain = exp.run();
        let mut fed: Vec<simnet::OpRecord> = Vec::new();
        let monitored = exp.run_monitored(&mut |ops, _now| fed.extend_from_slice(ops));
        assert_eq!(plain.trace.records(), monitored.trace.records());
        // The concatenated slices are exactly the sorted trace: slices
        // partition virtual time, so cross-slice order is completion
        // order and within-slice order is enforced by the sort.
        assert_eq!(fed.as_slice(), monitored.trace.records());
    }

    #[test]
    fn streaming_checkers_agree_with_batch_on_a_monitored_run() {
        use consistency::{StreamConfig, StreamVerifier, Watermark};
        let exp = Experiment::new(Scheme::eventual(3)).workload(tiny_workload()).seed(8);
        let mut verifier = StreamVerifier::new(StreamConfig::default());
        let res = exp.run_monitored(&mut |ops, now| {
            for op in ops {
                verifier.feed(op);
            }
            verifier.advance(Watermark::at(now));
        });
        let reports = verifier.finish();
        assert_eq!(reports.session, check_session_guarantees(&res.trace));
        assert_eq!(reports.staleness, consistency::measure_staleness(&res.trace));
    }

    #[test]
    fn paxos_trace_is_linearizable() {
        let res =
            Experiment::new(Scheme::Paxos { nodes: 3 }).workload(tiny_workload()).seed(11).run();
        assert!(res.trace.success_rate() > 0.95);
        check_trace_linearizable(&res.trace).expect("paxos must linearize");
    }

    #[test]
    fn sticky_eventual_clients_get_session_guarantees_for_free() {
        // A sticky client talks to one replica: RYW/MR hold trivially.
        let res = Experiment::new(Scheme::eventual(3)).workload(tiny_workload()).seed(3).run();
        let report = check_session_guarantees(&res.trace);
        assert_eq!(report.ryw_violations, 0);
        assert_eq!(report.mr_violations, 0);
    }

    #[test]
    fn primary_sync_reads_are_fresh_at_backups() {
        let res = Experiment::new(Scheme::PrimarySync { replicas: 3 })
            .workload(tiny_workload())
            .seed(9)
            .run();
        // Sync replication: no read may miss a write acked before it
        // started (modulo the one-hop window where the read overlaps the
        // write; tiny workload think times avoid that).
        let report = consistency::measure_staleness(&res.trace);
        assert_eq!(report.stale_reads, 0, "sync primary-copy must not serve stale reads");
    }

    #[test]
    fn reads_and_writes_both_present() {
        let res = Experiment::new(Scheme::eventual(2)).workload(tiny_workload()).seed(1).run();
        let reads = res.trace.records().iter().filter(|r| r.kind == OpKind::Read).count();
        let writes = res.trace.records().iter().filter(|r| r.kind == OpKind::Write).count();
        assert!(reads > 0 && writes > 0);
        assert_eq!(reads + writes, 60);
    }
}
