//! # rec-core — the executable taxonomy
//!
//! The paper's contribution is a map of the eventual-consistency design
//! space; this crate makes the map executable. Pick a point in the space
//! — a [`Scheme`] — attach a workload, a network, and a fault schedule —
//! an [`Experiment`] — and [`Experiment::run`] deterministically simulates
//! the deployment and returns the full client-visible history plus
//! summary [`metrics`]:
//!
//! ```
//! use rec_core::{Experiment, Scheme};
//! use workload::WorkloadSpec;
//!
//! let result = Experiment::new(Scheme::quorum(3, 2, 2))
//!     .workload(WorkloadSpec::small())
//!     .seed(42)
//!     .run();
//! assert!(result.trace.len() > 0);
//! let lat = rec_core::metrics::latency_summary(&result.trace);
//! assert!(lat.reads.count + lat.writes.count > 0);
//! ```
//!
//! Each scheme maps onto one protocol from the `replication` crate; the
//! consistency checkers from `consistency` run directly on
//! [`RunResult::trace`].
//!
//! For statistical depth, sweep variants × seeds through a [`Grid`]: the
//! cells run concurrently on a worker pool and merge back in
//! deterministic grid order (see [`grid`]).
//!
//! To go looking for guarantee violations instead of measuring healthy
//! runs, aim the [`fuzz`] harness at the schemes: seeded nemesis
//! schedules, consistency checking, and delta-debugged minimal
//! reproducers (see `docs/NEMESIS.md`).

#![warn(missing_docs)]

pub mod fuzz;
pub mod grid;
pub mod metrics;
pub mod runner;
pub mod scheme;

pub use fuzz::{CampaignReport, CaseReport, FuzzCase, FuzzScheme, Verdict, ViolationKind};
pub use grid::{default_jobs, par_map, CellResult, Grid, RecorderSpec};
pub use runner::{Experiment, RunResult};
pub use scheme::{ClientPlacement, Scheme};
