//! Trace metrics shared by the experiment harnesses.

use serde::{Deserialize, Serialize};
use simnet::stats::{summarize, Summary};
use simnet::{Duration, OpKind, OpTrace, SimTime};

/// Read and write latency summaries (milliseconds, successful ops only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Read latencies.
    pub reads: Summary,
    /// Write latencies.
    pub writes: Summary,
}

/// Summarize operation latencies.
pub fn latency_summary(trace: &OpTrace) -> LatencySummary {
    let collect = |kind: OpKind| -> Vec<f64> {
        trace.successful().filter(|r| r.kind == kind).map(|r| r.latency().as_millis_f64()).collect()
    };
    LatencySummary {
        reads: summarize(&collect(OpKind::Read)),
        writes: summarize(&collect(OpKind::Write)),
    }
}

/// Overall success rate (1.0 for an empty trace).
pub fn availability(trace: &OpTrace) -> f64 {
    trace.success_rate()
}

/// Successful operations per second of virtual time spanned by the trace.
pub fn throughput_ops_per_sec(trace: &OpTrace) -> f64 {
    let records = trace.records();
    if records.is_empty() {
        return 0.0;
    }
    let start = records.iter().map(|r| r.invoked).min().expect("non-empty");
    let end = records.iter().map(|r| r.completed).max().expect("non-empty");
    let span = end.saturating_since(start).as_secs_f64();
    if span <= 0.0 {
        return 0.0;
    }
    trace.successful().count() as f64 / span
}

/// Success rate in consecutive windows: `(window start ms, rate)` pairs.
/// Operations are binned by invocation time. Windows with no operations
/// are omitted.
pub fn availability_timeline(trace: &OpTrace, window: Duration) -> Vec<(f64, f64)> {
    let records = trace.records();
    if records.is_empty() {
        return Vec::new();
    }
    let end = records.iter().map(|r| r.invoked).max().expect("non-empty");
    let w = window.as_micros().max(1);
    let bins = (end.as_micros() / w) as usize + 1;
    let mut ok = vec![0u64; bins];
    let mut total = vec![0u64; bins];
    for r in records {
        let b = (r.invoked.as_micros() / w) as usize;
        total[b] += 1;
        if r.ok {
            ok[b] += 1;
        }
    }
    (0..bins)
        .filter(|&b| total[b] > 0)
        .map(|b| {
            (SimTime::from_micros(b as u64 * w).as_millis_f64(), ok[b] as f64 / total[b] as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, OpRecord};

    fn rec(kind: OpKind, invoked_ms: u64, latency_ms: u64, ok: bool) -> OpRecord {
        OpRecord {
            session: 1,
            op_id: invoked_ms,
            key: 1,
            kind,
            value_written: None,
            value_read: vec![],
            invoked: SimTime::from_millis(invoked_ms),
            completed: SimTime::from_millis(invoked_ms + latency_ms),
            replica: NodeId(0),
            ok,
            version_ts: None,
            stamp: None,
        }
    }

    #[test]
    fn latency_summary_splits_by_kind() {
        let mut t = OpTrace::new();
        t.push(rec(OpKind::Read, 0, 10, true));
        t.push(rec(OpKind::Read, 20, 30, true));
        t.push(rec(OpKind::Write, 50, 100, true));
        t.push(rec(OpKind::Read, 60, 999, false)); // failed: excluded
        let s = latency_summary(&t);
        assert_eq!(s.reads.count, 2);
        assert_eq!(s.writes.count, 1);
        assert_eq!(s.reads.min, 10.0);
        assert_eq!(s.writes.max, 100.0);
    }

    #[test]
    fn throughput_spans_trace() {
        let mut t = OpTrace::new();
        t.push(rec(OpKind::Read, 0, 10, true));
        t.push(rec(OpKind::Read, 990, 10, true)); // spans exactly 1s
        assert!((throughput_ops_per_sec(&t) - 2.0).abs() < 1e-9);
        assert_eq!(throughput_ops_per_sec(&OpTrace::new()), 0.0);
    }

    #[test]
    fn availability_timeline_bins_by_invocation() {
        let mut t = OpTrace::new();
        t.push(rec(OpKind::Read, 0, 1, true));
        t.push(rec(OpKind::Read, 10, 1, true));
        t.push(rec(OpKind::Read, 150, 1, false));
        t.push(rec(OpKind::Read, 160, 1, true));
        let tl = availability_timeline(&t, Duration::from_millis(100));
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0], (0.0, 1.0));
        assert_eq!(tl[1], (100.0, 0.5));
    }
}
