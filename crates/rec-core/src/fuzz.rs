//! Randomized nemesis fuzzing with minimal-schedule shrinking.
//!
//! The scripted fault tests only exercise failures someone thought to
//! write down. The fuzzer closes the gap: for each replication scheme it
//! generates hundreds of seeded adversarial fault schedules
//! ([`simnet::nemesis`]), runs the scheme under each, pipes the resulting
//! operation trace into the `consistency` checkers appropriate to the
//! scheme's *expected* guarantee, and — when a guarantee breaks — shrinks
//! the fault schedule by delta debugging to a minimal JSON reproducer
//! that replays byte-identically.
//!
//! Everything here is a pure function of its inputs, so a whole fuzz
//! campaign is deterministic: the same `(schemes, seeds, profile)` yields
//! the same report and the same reproducers regardless of `--jobs`.
//!
//! The harness pins its workload, latency model, and horizon as module
//! constants rather than carrying them in the reproducer: a reproducer is
//! tied to the code revision that emitted it (like a proptest regression
//! file), and keeping the case format down to `(scheme, seed, events)`
//! keeps corpus JSON small and byte-stable.

use crate::grid::par_map;
use crate::runner::{Experiment, RunResult};
use crate::scheme::{ClientPlacement, Scheme};
use consistency::{
    check_convergence, check_monotonic_values, check_session_guarantees, check_trace_linearizable,
    measure_staleness, LinCheckError, StreamConfig, StreamReports, StreamVerifier,
};
use replication::common::Guarantees;
use replication::eventual::ConflictMode;
use replication::Composition;
use serde::{Deserialize, Serialize};
use simnet::nemesis::{self, IntensityProfile, NemesisEvent};
use simnet::{Duration, LatencyModel, SimTime};
use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

/// Virtual-time horizon of every fuzz run, in milliseconds. The nemesis
/// heals all faults by two thirds of this (its quiet tail), leaving four
/// seconds of calm — longer than any protocol's client-side op timeout —
/// so late retries settle before the trace is judged.
pub const FUZZ_HORIZON_MS: u64 = 12_000;

/// The fixed workload every fuzz case runs (see module docs for why this
/// is a constant and not part of the reproducer). Small enough that no
/// key's history can overflow the linearizability checker's 126-op limit.
pub fn fuzz_workload() -> WorkloadSpec {
    WorkloadSpec {
        keys: 8,
        distribution: KeyDistribution::Uniform,
        mix: OpMix::ycsb_a(),
        arrival: Arrival::Closed { think_us: 20_000 },
        sessions: 3,
        ops_per_session: 30,
    }
}

/// The schemes the fuzzer drives, as a compact serializable vocabulary.
///
/// Each variant names a *fixed* deployment (replica counts, quorum sizes,
/// placement), so a reproducer only has to record the variant — no
/// floats, no nested config — and the JSON encoding stays byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FuzzScheme {
    /// Multi-Paxos, 3 nodes. Expected linearizable even under amnesia.
    Paxos,
    /// Majority quorum N=3, R=2, W=2 with read repair. R+W>N: reads must
    /// intersect the newest acked write.
    MajorityQuorum,
    /// Deliberately weak quorum N=3, R=1, W=1. R+W<=N: the seeded
    /// known-violation target — stale reads are *expected* under
    /// partitions, and the fuzzer must find and shrink one.
    PartialQuorum,
    /// Primary copy with synchronous backup acks, 3 replicas.
    PrimarySync,
    /// COPS-style causal+, 3 replicas, sticky sessions.
    Causal,
    /// Eventual (eager + gossip, LWW), sticky sessions, no client-side
    /// guarantee enforcement. Sticky + durable WAL means read-your-writes
    /// should still hold.
    EventualSticky,
    /// Kernel composition: multi-master + anti-entropy gossip + CRDT
    /// counter merge + fsynced state, 3 replicas. Inflationary state that
    /// survives amnesia: a session must never watch a counter shrink.
    MultiMasterCrdt,
    /// Kernel composition: multi-master eager broadcast that defers the
    /// client ack until every peer has durably applied (acks = n-1), LWW,
    /// 3 replicas. Acked writes are everywhere, so no read may be stale.
    EagerAckedEventual,
}

/// What the checker pipeline asserts for a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expectation {
    /// Per-key register histories linearize ([`check_trace_linearizable`]).
    Linearizable,
    /// No read misses a previously acknowledged write
    /// ([`measure_staleness`] reports zero stale reads).
    NoStaleReads,
    /// Sessions read their own writes ([`check_session_guarantees`]
    /// reports zero RYW violations).
    ReadYourWrites,
    /// No session watches an inflationary counter value go backwards
    /// ([`check_monotonic_values`] reports zero violations).
    MonotonicReads,
}

/// Which guarantee a run violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A key's history admits no legal linearization.
    NotLinearizable,
    /// At least one read missed an acknowledged write.
    StaleReads,
    /// A session failed to read its own write.
    ReadYourWrites,
    /// A session watched a counter value decrease.
    MonotonicReads,
}

/// The outcome of running one fuzz case through its checkers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The scheme's expectation held.
    Pass,
    /// The expectation broke.
    Violation {
        /// Which guarantee broke.
        kind: ViolationKind,
        /// How many individual checks failed (1 for linearizability,
        /// which stops at the first offending key).
        count: u64,
    },
}

impl Verdict {
    /// The violation kind, if any.
    pub fn kind(&self) -> Option<ViolationKind> {
        match self {
            Verdict::Pass => None,
            Verdict::Violation { kind, .. } => Some(*kind),
        }
    }
}

impl FuzzScheme {
    /// Every scheme the fuzzer knows, in campaign order.
    pub const ALL: [FuzzScheme; 8] = [
        FuzzScheme::Paxos,
        FuzzScheme::MajorityQuorum,
        FuzzScheme::PartialQuorum,
        FuzzScheme::PrimarySync,
        FuzzScheme::Causal,
        FuzzScheme::EventualSticky,
        FuzzScheme::MultiMasterCrdt,
        FuzzScheme::EagerAckedEventual,
    ];

    /// The concrete deployment this variant names.
    pub fn to_scheme(self) -> Scheme {
        match self {
            FuzzScheme::Paxos => Scheme::Paxos { nodes: 3 },
            FuzzScheme::MajorityQuorum => Scheme::Quorum {
                n: 3,
                r: 2,
                w: 2,
                read_repair: true,
                placement: ClientPlacement::Random,
            },
            FuzzScheme::PartialQuorum => Scheme::Quorum {
                n: 3,
                r: 1,
                w: 1,
                read_repair: false,
                placement: ClientPlacement::Random,
            },
            FuzzScheme::PrimarySync => Scheme::PrimarySync { replicas: 3 },
            FuzzScheme::Causal => Scheme::Causal { replicas: 3 },
            FuzzScheme::EventualSticky => Scheme::Eventual {
                replicas: 3,
                eager: true,
                gossip: Some((Duration::from_millis(50), 1)),
                mode: ConflictMode::Lww,
                guarantees: Guarantees::none(),
                placement: ClientPlacement::Sticky,
            },
            FuzzScheme::MultiMasterCrdt => Scheme::composed(Composition::mm_gossip_crdt(3)),
            FuzzScheme::EagerAckedEventual => Scheme::composed(Composition::mm_eager_acked(3)),
        }
    }

    /// Number of server nodes deployed (what the nemesis may target).
    pub fn server_nodes(self) -> usize {
        self.to_scheme().server_node_count()
    }

    /// The guarantee the checkers assert for this scheme.
    pub fn expectation(self) -> Expectation {
        match self {
            FuzzScheme::Paxos => Expectation::Linearizable,
            FuzzScheme::MajorityQuorum | FuzzScheme::PrimarySync => Expectation::NoStaleReads,
            FuzzScheme::PartialQuorum => Expectation::NoStaleReads,
            FuzzScheme::Causal | FuzzScheme::EventualSticky => Expectation::ReadYourWrites,
            FuzzScheme::MultiMasterCrdt => Expectation::MonotonicReads,
            FuzzScheme::EagerAckedEventual => Expectation::NoStaleReads,
        }
    }

    /// Whether violations are the *expected* finding for this scheme.
    ///
    /// `PartialQuorum` (R+W<=N) is in the campaign precisely because its
    /// quorums don't intersect: the fuzzer demonstrating, shrinking, and
    /// replaying its stale reads is the positive control. Violations on
    /// any other scheme are real findings and fail CI.
    pub fn violation_expected(self) -> bool {
        matches!(self, FuzzScheme::PartialQuorum)
    }

    /// A short stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FuzzScheme::Paxos => "paxos",
            FuzzScheme::MajorityQuorum => "quorum(N=3,R=2,W=2)",
            FuzzScheme::PartialQuorum => "quorum(N=3,R=1,W=1)",
            FuzzScheme::PrimarySync => "primary-sync",
            FuzzScheme::Causal => "causal",
            FuzzScheme::EventualSticky => "eventual-sticky",
            FuzzScheme::MultiMasterCrdt => "mm-gossip-crdt",
            FuzzScheme::EagerAckedEventual => "mm-eager-acked",
        }
    }
}

/// A self-contained, replayable fuzz case — the reproducer format checked
/// into `tests/corpus/`. Running it is a pure function of this struct
/// plus the harness constants above.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzCase {
    /// The scheme under test.
    pub scheme: FuzzScheme,
    /// Workload/sim seed.
    pub seed: u64,
    /// The fault schedule, as nemesis windows.
    pub events: Vec<NemesisEvent>,
}

/// Generate the fuzz case for `(scheme, seed)` under `profile`: the fault
/// schedule comes from [`nemesis::generate`] keyed by the same seed that
/// drives the workload and the network.
pub fn generate_case(scheme: FuzzScheme, seed: u64, profile: &IntensityProfile) -> FuzzCase {
    let events = nemesis::generate(seed, scheme.server_nodes(), FUZZ_HORIZON_MS, profile);
    FuzzCase { scheme, seed, events }
}

/// Run one case: build the experiment, run it, judge the trace against
/// the scheme's expectation.
pub fn run_case(case: &FuzzCase) -> Verdict {
    run_case_recorded(case, obs::Recorder::disabled())
}

/// [`run_case`] under an explicit event-queue backend. Verdicts are a
/// pure function of the case — the two backends pop events in the same
/// deterministic order — so this must agree with [`run_case`] for every
/// backend; `tests/corpus_replay.rs` holds the corpus to that.
pub fn run_case_with_queue(case: &FuzzCase, queue: simnet::QueueKind) -> Verdict {
    let result = Experiment::new(case.scheme.to_scheme())
        .workload(fuzz_workload())
        .latency(LatencyModel::lan())
        .faults(nemesis::to_schedule(&case.events))
        .seed(case.seed)
        .horizon(SimTime::from_millis(FUZZ_HORIZON_MS))
        .queue(queue)
        .run();
    judge(case, &result)
}

/// [`run_case`] with an observability recorder attached, so a replayed
/// reproducer emits its full event log — span open/close pairs included.
/// The caller keeps the handle and exports the JSONL trace afterwards
/// (`fuzz_nemesis --replay ... --trace-out`).
pub fn run_case_recorded(case: &FuzzCase, recorder: obs::Recorder) -> Verdict {
    let result = Experiment::new(case.scheme.to_scheme())
        .workload(fuzz_workload())
        .latency(LatencyModel::lan())
        .faults(nemesis::to_schedule(&case.events))
        .seed(case.seed)
        .horizon(SimTime::from_millis(FUZZ_HORIZON_MS))
        // Corpus JSON carries no queue field, so replay verdicts must
        // not depend on the session's default backend: pin the wheel
        // explicitly (tests/corpus_replay.rs asserts verdicts are
        // queue-independent anyway, since both backends pop in the
        // same deterministic order).
        .queue(simnet::QueueKind::TimingWheel)
        .recorder(recorder)
        .run();
    judge(case, &result)
}

/// Judge a finished run against the case's scheme expectation.
fn judge(case: &FuzzCase, result: &RunResult) -> Verdict {
    match case.scheme.expectation() {
        Expectation::Linearizable => match check_trace_linearizable(&result.trace) {
            Ok(()) => Verdict::Pass,
            Err(LinCheckError::NotLinearizable { .. }) => {
                Verdict::Violation { kind: ViolationKind::NotLinearizable, count: 1 }
            }
            Err(LinCheckError::HistoryTooLarge { key, ops }) => {
                // The fixed fuzz workload (90 ops over 8 keys) cannot
                // reach the checker's 126-op-per-key cap.
                unreachable!("fuzz workload overflowed lin checker: key {key} has {ops} ops")
            }
            // Inconclusive is not a violation; the verdict is still a
            // pure function of the case, so no flakiness is introduced.
            Err(LinCheckError::SearchBudgetExceeded { .. }) => Verdict::Pass,
        },
        Expectation::NoStaleReads => {
            let report = measure_staleness(&result.trace);
            if report.stale_reads == 0 {
                Verdict::Pass
            } else {
                Verdict::Violation { kind: ViolationKind::StaleReads, count: report.stale_reads }
            }
        }
        Expectation::ReadYourWrites => {
            let report = check_session_guarantees(&result.trace);
            if report.ryw_violations == 0 {
                Verdict::Pass
            } else {
                Verdict::Violation {
                    kind: ViolationKind::ReadYourWrites,
                    count: report.ryw_violations,
                }
            }
        }
        Expectation::MonotonicReads => {
            let report = check_monotonic_values(&result.trace);
            if report.violations == 0 {
                Verdict::Pass
            } else {
                Verdict::Violation { kind: ViolationKind::MonotonicReads, count: report.violations }
            }
        }
    }
}

/// Batch-vs-stream comparison for one fuzz case.
///
/// `reports_match` is the strong property: the streaming checkers'
/// reports, serialized to JSON, are byte-identical to the materialized
/// batch reports computed from the full trace (unbounded window). The
/// verdict pair is the weaker scheme-level summary of the same data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DifferentialOutcome {
    /// Verdict from the materialized batch checkers.
    pub batch: Verdict,
    /// Verdict from the streaming checkers fed online during the run.
    pub stream: Verdict,
    /// Whether the four streaming reports serialize byte-identically to
    /// their batch counterparts.
    pub reports_match: bool,
}

impl DifferentialOutcome {
    /// True when stream and batch fully agree.
    pub fn agree(&self) -> bool {
        self.batch == self.stream && self.reports_match
    }
}

/// Run one case through *both* checker pipelines: the streaming verifier
/// fed op-by-op while the simulation runs (via the runner's monitor
/// hook), and the materialized batch checkers over the finished trace.
///
/// The monitor hook is read-only, so the simulated execution — and hence
/// the batch verdict — is identical to [`run_case`]'s; the differential
/// campaign holds the fuzzer to that.
pub fn run_case_differential(case: &FuzzCase) -> DifferentialOutcome {
    let mut verifier = StreamVerifier::new(StreamConfig::default());
    let result = Experiment::new(case.scheme.to_scheme())
        .workload(fuzz_workload())
        .latency(LatencyModel::lan())
        .faults(nemesis::to_schedule(&case.events))
        .seed(case.seed)
        .horizon(SimTime::from_millis(FUZZ_HORIZON_MS))
        .queue(simnet::QueueKind::TimingWheel)
        .run_monitored(&mut |ops, _now| verifier.feed_slice(ops));
    let batch = judge(case, &result);
    let reports = verifier.finish();
    let stream = judge_stream(case, &result, &reports);
    let grace = StreamConfig::default().grace;
    let reports_match = {
        let batch_json = serde_json::to_string(&(
            check_session_guarantees(&result.trace),
            measure_staleness(&result.trace),
            check_monotonic_values(&result.trace),
            check_convergence(&result.trace, grace),
        ))
        .expect("batch reports serialize");
        let stream_json = serde_json::to_string(&(
            &reports.session,
            &reports.staleness,
            &reports.monotonic,
            &reports.convergence,
        ))
        .expect("stream reports serialize");
        batch_json == stream_json
    };
    DifferentialOutcome { batch, stream, reports_match }
}

/// Judge a case from the *streaming* reports.
///
/// Linearizability has no streaming operator — deciding it online would
/// need the full per-key history the window exists to evict — so
/// `Expectation::Linearizable` falls back to the materialized batch
/// checker over the finished trace. Every other expectation reads the
/// same count the batch judge reads, but from the incremental reports.
fn judge_stream(case: &FuzzCase, result: &RunResult, reports: &StreamReports) -> Verdict {
    match case.scheme.expectation() {
        Expectation::Linearizable => judge(case, result),
        Expectation::NoStaleReads => {
            if reports.staleness.stale_reads == 0 {
                Verdict::Pass
            } else {
                Verdict::Violation {
                    kind: ViolationKind::StaleReads,
                    count: reports.staleness.stale_reads,
                }
            }
        }
        Expectation::ReadYourWrites => {
            if reports.session.ryw_violations == 0 {
                Verdict::Pass
            } else {
                Verdict::Violation {
                    kind: ViolationKind::ReadYourWrites,
                    count: reports.session.ryw_violations,
                }
            }
        }
        Expectation::MonotonicReads => {
            if reports.monotonic.violations == 0 {
                Verdict::Pass
            } else {
                Verdict::Violation {
                    kind: ViolationKind::MonotonicReads,
                    count: reports.monotonic.violations,
                }
            }
        }
    }
}

/// One differential campaign cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DifferentialCell {
    /// Scheme under test.
    pub scheme: FuzzScheme,
    /// The seed.
    pub seed: u64,
    /// Batch-vs-stream comparison for this cell.
    pub outcome: DifferentialOutcome,
}

/// Run a differential campaign: every `(scheme, seed)` cell through
/// [`run_case_differential`] on the shared worker pool. Cells are laid
/// out scheme-major and reassembled by index, so — like [`campaign`] —
/// the result (and its JSON) is byte-identical for any `jobs` value.
pub fn differential_campaign(
    schemes: &[FuzzScheme],
    seeds: u64,
    base_seed: u64,
    profile_name: &str,
    jobs: usize,
) -> Vec<DifferentialCell> {
    let profile = IntensityProfile::by_name(profile_name)
        .unwrap_or_else(|| panic!("unknown intensity profile {profile_name:?}"));
    let cells: Vec<(FuzzScheme, u64)> =
        schemes.iter().flat_map(|&s| (0..seeds).map(move |i| (s, base_seed + i))).collect();
    par_map(&cells, jobs, |_, &(scheme, seed)| {
        let case = generate_case(scheme, seed, &profile);
        DifferentialCell { scheme, seed, outcome: run_case_differential(&case) }
    })
}

/// Shrink a violating case to a minimal fault schedule by delta debugging
/// (Zeller's ddmin) over whole nemesis windows.
///
/// The reduced case must reproduce the *same violation kind* (not the
/// same count — shrinking often reduces a 7-stale-read run to a
/// 1-stale-read run, which is exactly the point). If `case` does not
/// violate at all, it is returned unchanged. Deterministic: the chunk
/// scan order is fixed, so the same input always shrinks to the same
/// output.
pub fn shrink_case(case: &FuzzCase) -> FuzzCase {
    let Some(kind) = run_case(case).kind() else {
        return case.clone();
    };
    let still_fails = |events: &[NemesisEvent]| -> bool {
        let candidate = FuzzCase { scheme: case.scheme, seed: case.seed, events: events.to_vec() };
        run_case(&candidate).kind() == Some(kind)
    };

    let mut events = case.events.clone();
    let mut granularity = 2usize;
    while events.len() >= 2 {
        let chunk = events.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            let mut candidate = Vec::with_capacity(events.len() - (end - start));
            candidate.extend_from_slice(&events[..start]);
            candidate.extend_from_slice(&events[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                events = candidate;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= events.len() {
                break;
            }
            granularity = (granularity * 2).min(events.len());
        }
    }
    FuzzCase { scheme: case.scheme, seed: case.seed, events }
}

/// One campaign cell: what happened for `(scheme, seed)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseReport {
    /// Scheme under test.
    pub scheme: FuzzScheme,
    /// The seed.
    pub seed: u64,
    /// Nemesis windows in the generated (unshrunk) schedule.
    pub generated_events: u64,
    /// The verdict on the generated schedule.
    pub verdict: Verdict,
    /// Whether a violation is the expected finding for this scheme.
    pub expected_violation: bool,
    /// Minimal reproducer (present only for violations; already shrunk).
    pub reproducer: Option<FuzzCase>,
}

/// A whole campaign's results, in deterministic (scheme-major, then
/// seed) order. Serializes to the JSON report `fuzz_nemesis` writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Intensity profile name the campaign ran under.
    pub profile: String,
    /// Base seed; case seeds are `base_seed..base_seed + seeds`.
    pub base_seed: u64,
    /// Every cell, scheme-major.
    pub cases: Vec<CaseReport>,
}

impl CampaignReport {
    /// Total runs.
    pub fn total(&self) -> usize {
        self.cases.len()
    }

    /// All violating cells.
    pub fn violations(&self) -> Vec<&CaseReport> {
        self.cases.iter().filter(|c| c.verdict != Verdict::Pass).collect()
    }

    /// Violations on schemes where the guarantee was supposed to hold.
    /// CI fails if this is non-empty.
    pub fn unexpected_violations(&self) -> Vec<&CaseReport> {
        self.violations().into_iter().filter(|c| !c.expected_violation).collect()
    }

    /// Violations on the positive-control scheme(s). The campaign is
    /// suspect if it runs `PartialQuorum` over many seeds and this stays
    /// empty — the nemesis has lost its teeth.
    pub fn expected_violations(&self) -> Vec<&CaseReport> {
        self.violations().into_iter().filter(|c| c.expected_violation).collect()
    }

    /// Render a deterministic plain-text summary table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "nemesis fuzz campaign: profile={} base_seed={} runs={}",
            self.profile,
            self.base_seed,
            self.total()
        );
        let _ = writeln!(
            out,
            "{:<22} {:>5} {:>10} {:>9} {:>13}",
            "scheme", "runs", "violations", "expected", "min-events"
        );
        for scheme in FuzzScheme::ALL {
            let cells: Vec<&CaseReport> =
                self.cases.iter().filter(|c| c.scheme == scheme).collect();
            if cells.is_empty() {
                continue;
            }
            let violations = cells.iter().filter(|c| c.verdict != Verdict::Pass).count();
            let min_events =
                cells.iter().filter_map(|c| c.reproducer.as_ref()).map(|r| r.events.len()).min();
            let _ = writeln!(
                out,
                "{:<22} {:>5} {:>10} {:>9} {:>13}",
                scheme.label(),
                cells.len(),
                violations,
                if scheme.violation_expected() { "yes" } else { "no" },
                min_events.map(|m| m.to_string()).unwrap_or_else(|| "-".to_string()),
            );
        }
        for case in self.unexpected_violations() {
            let _ = writeln!(
                out,
                "UNEXPECTED: {} seed={} verdict={:?}",
                case.scheme.label(),
                case.seed,
                case.verdict
            );
        }
        out
    }
}

/// Run a full fuzz campaign: `schemes x seeds` cells on the shared
/// worker pool, shrinking every violation inside its worker.
///
/// Cells are laid out scheme-major in a fixed order and results are
/// reassembled by index, so the report (and its JSON) is byte-identical
/// for any `jobs` value.
pub fn campaign(
    schemes: &[FuzzScheme],
    seeds: u64,
    base_seed: u64,
    profile_name: &str,
    jobs: usize,
    shrink: bool,
) -> CampaignReport {
    let profile = IntensityProfile::by_name(profile_name)
        .unwrap_or_else(|| panic!("unknown intensity profile {profile_name:?}"));
    let cells: Vec<(FuzzScheme, u64)> =
        schemes.iter().flat_map(|&s| (0..seeds).map(move |i| (s, base_seed + i))).collect();
    let cases = par_map(&cells, jobs, |_, &(scheme, seed)| {
        let case = generate_case(scheme, seed, &profile);
        let verdict = run_case(&case);
        let reproducer = match verdict {
            Verdict::Pass => None,
            Verdict::Violation { .. } => {
                Some(if shrink { shrink_case(&case) } else { case.clone() })
            }
        };
        CaseReport {
            scheme,
            seed,
            generated_events: case.events.len() as u64,
            verdict,
            expected_violation: scheme.violation_expected(),
            reproducer,
        }
    });
    CampaignReport { profile: profile_name.to_string(), base_seed, cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_deterministic() {
        for scheme in FuzzScheme::ALL {
            let a = generate_case(scheme, 42, &IntensityProfile::medium());
            let b = generate_case(scheme, 42, &IntensityProfile::medium());
            assert_eq!(a, b);
            assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
        }
    }

    #[test]
    fn fuzz_case_roundtrips_through_json() {
        let case = generate_case(FuzzScheme::PartialQuorum, 7, &IntensityProfile::heavy());
        let json = serde_json::to_string(&case).unwrap();
        let back: FuzzCase = serde_json::from_str(&json).unwrap();
        assert_eq!(back, case);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn shrink_returns_passing_cases_unchanged() {
        // No fault events at all: every scheme passes its own expectation
        // on a quiet network, so shrink must be the identity.
        let case = FuzzCase { scheme: FuzzScheme::MajorityQuorum, seed: 3, events: vec![] };
        assert_eq!(run_case(&case), Verdict::Pass);
        assert_eq!(shrink_case(&case), case);
    }

    #[test]
    fn verdicts_are_deterministic() {
        let case = generate_case(FuzzScheme::EventualSticky, 12, &IntensityProfile::medium());
        assert_eq!(run_case(&case), run_case(&case));
    }

    #[test]
    fn composed_schemes_pass_on_quiet_network() {
        // The two kernel compositions hold their expectations when no
        // nemesis interferes; anything else is a harness bug, not a find.
        for scheme in [FuzzScheme::MultiMasterCrdt, FuzzScheme::EagerAckedEventual] {
            let case = FuzzCase { scheme, seed: 5, events: vec![] };
            assert_eq!(run_case(&case), Verdict::Pass, "{} must pass quiet", scheme.label());
        }
    }

    #[test]
    fn differential_agrees_on_quiet_and_noisy_cases() {
        // Quiet cells: every pipeline must agree that nothing broke.
        for scheme in [FuzzScheme::MajorityQuorum, FuzzScheme::EventualSticky] {
            let case = FuzzCase { scheme, seed: 2, events: vec![] };
            let d = run_case_differential(&case);
            assert!(d.agree(), "{} quiet: {d:?}", scheme.label());
            assert_eq!(d.batch, run_case(&case), "{} monitored run perturbed", scheme.label());
        }
        // Positive control under a generated nemesis schedule: whatever
        // the batch checkers find, the stream must find identically.
        let case = generate_case(FuzzScheme::PartialQuorum, 1, &IntensityProfile::medium());
        let d = run_case_differential(&case);
        assert!(d.agree(), "partial-quorum differential: {d:?}");
        assert_eq!(d.batch, run_case(&case));
    }

    #[test]
    fn differential_campaign_is_jobs_invariant() {
        let schemes = [FuzzScheme::EventualSticky, FuzzScheme::PartialQuorum];
        let a = differential_campaign(&schemes, 2, 40, "light", 1);
        let b = differential_campaign(&schemes, 2, 40, "light", 4);
        assert_eq!(a, b);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
        assert!(a.iter().all(|c| c.outcome.agree()), "{a:?}");
    }

    #[test]
    fn fuzz_workload_stays_under_lin_checker_cap() {
        let w = fuzz_workload();
        // Even if every op of every session hit one key, the per-key
        // history stays under the checker's 126-op mask limit.
        assert!((w.sessions * w.ops_per_session) < 126);
    }
}
