//! Parallel experiment grids.
//!
//! Every quantitative claim in the experiment suite is estimated by
//! sweeping scheme/config variants × seeds through the simulator. Each
//! [`Experiment`] is a pure function of its struct — the whole sweep is
//! embarrassingly parallel — so a [`Grid`] runs its cells on a
//! self-scheduling worker pool and merges the results back **in
//! deterministic grid order** (variant-major, then seed). The output is
//! byte-for-byte independent of the worker count:
//!
//! * every cell gets its **own** fresh [`Recorder`], so no cell ever
//!   observes another cell's events and the hot path takes no shared
//!   lock;
//! * workers return `(cell index, result)` pairs that are re-assembled
//!   by index, so completion order is irrelevant;
//! * aggregate metrics are folded *after* the pool drains, in grid
//!   order, via [`Recorder::absorb`] (which is exact and commutative).
//!
//! The simulation itself stays strictly serial inside its cell — one
//! virtual-time event loop per worker — which is the invariant that
//! keeps per-cell traces reproducible. Parallelism lives only *between*
//! cells.
//!
//! ```
//! use rec_core::{Experiment, Grid, RecorderSpec, Scheme};
//! use workload::WorkloadSpec;
//!
//! let mut grid = Grid::new();
//! for (r, w) in [(1, 1), (2, 2)] {
//!     grid.push(
//!         format!("R{r}W{w}"),
//!         Experiment::new(Scheme::quorum(3, r, w)).workload(WorkloadSpec::small()).seed(42),
//!     );
//! }
//! let cells = grid.seeds(3).run(4, RecorderSpec::Counters);
//! assert_eq!(cells.len(), 6); // 2 variants x 3 seeds, variant-major
//! assert_eq!(cells[0].label, "R1W1");
//! assert_eq!(cells[1].seed, 43); // seeds are base_seed + seed_index
//! ```

use crate::runner::{Experiment, RunResult};
use obs::Recorder;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Which recorder each grid cell gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecorderSpec {
    /// No observability (fastest).
    Disabled,
    /// Counters and histograms, no retained event log.
    Counters,
    /// Counters plus the full typed event log (for JSONL export).
    EventLog,
}

impl RecorderSpec {
    /// Materialize a fresh recorder of this kind.
    pub fn make(self) -> Recorder {
        match self {
            RecorderSpec::Disabled => Recorder::disabled(),
            RecorderSpec::Counters => Recorder::enabled(),
            RecorderSpec::EventLog => Recorder::with_event_log(),
        }
    }
}

/// One cell of a completed grid run.
#[derive(Debug)]
pub struct CellResult {
    /// Index of the variant this cell belongs to.
    pub variant: usize,
    /// The variant's label.
    pub label: String,
    /// Index of the seed within the variant (0-based).
    pub seed_index: u64,
    /// The concrete seed the cell ran with.
    pub seed: u64,
    /// What the run produced.
    pub result: RunResult,
    /// The cell's private recorder (export per-cell traces from here).
    pub recorder: Recorder,
}

/// A cartesian product of experiment variants × seeds.
///
/// Variants are labelled base experiments; `seeds(n)` runs each variant
/// at seeds `base.seed + 0 .. base.seed + n`, so a 1-seed grid
/// reproduces the variant's original single-seed run exactly.
#[derive(Debug, Clone, Default)]
pub struct Grid {
    variants: Vec<(String, Experiment)>,
    seeds_per_variant: u64,
    profile: bool,
}

impl Grid {
    /// An empty grid (one seed per variant until [`Grid::seeds`]).
    pub fn new() -> Self {
        Grid { variants: Vec::new(), seeds_per_variant: 1, profile: false }
    }

    /// Add a variant. The experiment's own seed becomes the base seed
    /// for the variant's seed column.
    pub fn push(&mut self, label: impl Into<String>, experiment: Experiment) {
        self.variants.push((label.into(), experiment));
    }

    /// Set the number of seeds per variant (clamped to at least 1).
    pub fn seeds(mut self, n: u64) -> Self {
        self.seeds_per_variant = n.max(1);
        self
    }

    /// Enable per-handler profiling in every cell (see
    /// `docs/PROFILING.md`). Each cell profiles into its own recorder;
    /// absorbing cell recorders in grid order yields the merged profile.
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Number of variants.
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// Number of seeds each variant runs at.
    pub fn seeds_per_variant(&self) -> u64 {
        self.seeds_per_variant
    }

    /// Total cell count (variants × seeds).
    pub fn len(&self) -> usize {
        self.variants.len() * self.seeds_per_variant as usize
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Run every cell on `jobs` workers; results come back in
    /// deterministic grid order (variant-major, then seed index),
    /// independent of `jobs` and of worker scheduling.
    pub fn run(&self, jobs: usize, spec: RecorderSpec) -> Vec<CellResult> {
        // Materialize cell descriptors in grid order.
        let cells: Vec<(usize, u64)> = (0..self.variants.len())
            .flat_map(|v| (0..self.seeds_per_variant).map(move |s| (v, s)))
            .collect();
        par_map(&cells, jobs, |cell_index, &(variant, seed_index)| {
            let (label, base) = &self.variants[variant];
            let recorder = spec.make();
            // Each cell allocates trace/span ids from its own disjoint
            // range, keyed by grid position (never by scheduling), so a
            // concatenated multi-cell trace file keeps globally unique
            // ids and stays byte-identical across `--jobs` levels.
            let experiment = base
                .clone()
                .seed(base.seed + seed_index)
                .recorder(recorder.clone())
                .trace_base((cell_index as u64) << 40)
                .profile(self.profile || base.profile);
            let result = experiment.run();
            CellResult {
                variant,
                label: label.clone(),
                seed_index,
                seed: base.seed + seed_index,
                result,
                recorder,
            }
        })
    }
}

/// Parallel map preserving input order.
///
/// A self-scheduling pool: `jobs` workers pull the next unclaimed index
/// from a shared atomic counter (work-stealing from one central queue —
/// the same load-balancing rayon's deques give for coarse-grained,
/// similarly-sized cells, with none of the machinery). Each worker
/// accumulates `(index, result)` pairs privately and the caller
/// re-assembles them by index, so the hot path takes **no lock** and the
/// output order never depends on scheduling.
///
/// `jobs` is clamped to `[1, items.len()]`; `jobs == 1` degenerates to
/// a plain serial map on the calling thread (no pool, identical
/// results — the property `tests/grid_determinism.rs` pins down).
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.max(1).min(items.len());
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        mine.push((i, f(i, &items[i])));
                    }
                    mine
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("grid worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every cell ran exactly once")).collect()
}

/// Compile-time audit that everything a grid worker touches can cross a
/// thread boundary. `Sim` itself is intentionally **not** `Send` (its
/// actors share an `Rc<RefCell<OpTrace>>`); each worker constructs and
/// drops its own `Sim` inside [`Experiment::run`], so only the
/// experiment *description* needs to be `Send`.
#[allow(dead_code)]
fn assert_send_audit() {
    fn is_send<T: Send>() {}
    fn is_sync<T: Sync>() {}
    is_send::<Experiment>();
    is_sync::<Experiment>();
    is_send::<RunResult>();
    is_send::<CellResult>();
    is_send::<crate::Scheme>();
    is_send::<obs::Recorder>();
    is_send::<obs::MetricsReport>();
    is_send::<simnet::SimRng>();
    is_send::<simnet::FaultSchedule>();
    is_send::<simnet::LatencyModel>();
    is_send::<simnet::OpTrace>();
    is_send::<workload::WorkloadSpec>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheme;
    use simnet::OpTrace;
    use workload::{Arrival, KeyDistribution, OpMix, WorkloadSpec};

    fn tiny() -> WorkloadSpec {
        WorkloadSpec {
            keys: 10,
            distribution: KeyDistribution::Uniform,
            mix: OpMix::ycsb_a(),
            arrival: Arrival::Closed { think_us: 5_000 },
            sessions: 2,
            ops_per_session: 10,
        }
    }

    fn small_grid() -> Grid {
        let mut g = Grid::new();
        g.push("q22", Experiment::new(Scheme::quorum(3, 2, 2)).workload(tiny()).seed(7));
        g.push("ev", Experiment::new(Scheme::eventual(3)).workload(tiny()).seed(7));
        g.seeds(3)
    }

    #[test]
    fn par_map_preserves_order_and_runs_everything() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = par_map(&items, 8, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate cases.
        assert_eq!(par_map(&[] as &[u64], 4, |_, &x| x), Vec::<u64>::new());
        assert_eq!(par_map(&items, 1, |_, &x| x), items);
        assert_eq!(par_map(&items, 1000, |_, &x| x), items);
    }

    #[test]
    fn grid_order_is_variant_major_with_derived_seeds() {
        let cells = small_grid().run(4, RecorderSpec::Disabled);
        assert_eq!(cells.len(), 6);
        let meta: Vec<(usize, u64, u64)> =
            cells.iter().map(|c| (c.variant, c.seed_index, c.seed)).collect();
        assert_eq!(meta, vec![(0, 0, 7), (0, 1, 8), (0, 2, 9), (1, 0, 7), (1, 1, 8), (1, 2, 9)]);
        assert!(cells.iter().all(|c| !c.result.trace.is_empty()));
    }

    #[test]
    fn parallel_and_serial_grids_agree() {
        let traces = |jobs: usize| -> Vec<OpTrace> {
            small_grid()
                .run(jobs, RecorderSpec::Counters)
                .into_iter()
                .map(|c| c.result.trace)
                .collect()
        };
        let serial = traces(1);
        let parallel = traces(4);
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.records(), b.records());
        }
    }

    #[test]
    fn one_seed_grid_reproduces_the_single_run() {
        let base = Experiment::new(Scheme::quorum(3, 2, 2)).workload(tiny()).seed(42);
        let solo = base.clone().run();
        let mut g = Grid::new();
        g.push("only", base);
        let cells = g.run(2, RecorderSpec::Disabled);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].seed, 42);
        assert_eq!(cells[0].result.trace.records(), solo.trace.records());
    }
}
