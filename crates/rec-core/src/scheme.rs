//! Points in the replication design space.

use replication::common::Guarantees;
use replication::eventual::ConflictMode;
use simnet::Duration;

/// How client sessions attach to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPlacement {
    /// Session `i` sticks to replica `i % n` (geo-local client).
    Sticky,
    /// Every operation goes to a uniformly random replica (load-balanced
    /// anycast; the setting where session anomalies surface).
    Random,
}

/// A replication scheme — one point in the tutorial's taxonomy.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// Asynchronous multi-master (anti-entropy + optional eager push).
    Eventual {
        /// Replica count.
        replicas: usize,
        /// Eagerly broadcast each write.
        eager: bool,
        /// Gossip `(interval, fanout)`; `None` disables anti-entropy.
        gossip: Option<(Duration, usize)>,
        /// Conflict policy.
        mode: ConflictMode,
        /// Session guarantees enforced client-side.
        guarantees: Guarantees,
        /// Client attachment.
        placement: ClientPlacement,
    },
    /// Dynamo-style N/R/W quorums with sloppy writes: unreachable home
    /// replicas are covered by hint-holding spares (hinted handoff).
    SloppyQuorum {
        /// Home replica count.
        n: usize,
        /// Read quorum.
        r: usize,
        /// Write quorum.
        w: usize,
        /// Spare (hint-holding) node count.
        spares: usize,
    },
    /// Dynamo-style N/R/W quorums.
    Quorum {
        /// Replica count.
        n: usize,
        /// Read quorum.
        r: usize,
        /// Write quorum.
        w: usize,
        /// Read repair on stale replicas.
        read_repair: bool,
        /// Client attachment (coordinator choice).
        placement: ClientPlacement,
    },
    /// Primary copy with async shipping *and* view-change failover.
    PrimaryAsyncFailover {
        /// Replica count (node 0 leads view 0).
        replicas: usize,
        /// Shipping interval.
        ship_interval: Duration,
    },
    /// Primary copy with synchronous backup acks.
    PrimarySync {
        /// Replica count (node 0 is primary).
        replicas: usize,
    },
    /// Primary copy with asynchronous log shipping.
    PrimaryAsync {
        /// Replica count (node 0 is primary).
        replicas: usize,
        /// Shipping interval (replication lag knob).
        ship_interval: Duration,
    },
    /// Multi-Paxos replicated log (linearizable).
    Paxos {
        /// Node count.
        nodes: usize,
    },
    /// COPS-style causal+ multi-master.
    Causal {
        /// Replica count.
        replicas: usize,
    },
}

impl Scheme {
    /// Default eventual configuration: eager + 50 ms gossip, LWW, no
    /// session guarantees, sticky clients.
    pub fn eventual(replicas: usize) -> Self {
        Scheme::Eventual {
            replicas,
            eager: true,
            gossip: Some((Duration::from_millis(50), 1)),
            mode: ConflictMode::Lww,
            guarantees: Guarantees::none(),
            placement: ClientPlacement::Sticky,
        }
    }

    /// Quorum with explicit R/W, read repair on, random coordinators.
    pub fn quorum(n: usize, r: usize, w: usize) -> Self {
        Scheme::Quorum { n, r, w, read_repair: true, placement: ClientPlacement::Random }
    }

    /// Number of replica (server) nodes the scheme deploys.
    pub fn replica_count(&self) -> usize {
        match *self {
            Scheme::Eventual { replicas, .. } => replicas,
            Scheme::Quorum { n, .. } => n,
            Scheme::SloppyQuorum { n, .. } => n,
            Scheme::PrimarySync { replicas } => replicas,
            Scheme::PrimaryAsync { replicas, .. } => replicas,
            Scheme::PrimaryAsyncFailover { replicas, .. } => replicas,
            Scheme::Paxos { nodes } => nodes,
            Scheme::Causal { replicas } => replicas,
        }
    }

    /// Total server nodes deployed (replicas + any spares); client actors
    /// get node ids starting at this offset.
    pub fn server_node_count(&self) -> usize {
        match *self {
            Scheme::SloppyQuorum { n, spares, .. } => n + spares,
            _ => self.replica_count(),
        }
    }

    /// A short label for table rows.
    pub fn label(&self) -> String {
        match self {
            Scheme::Eventual { eager, gossip, mode, .. } => format!(
                "eventual({}{}{:?})",
                if *eager { "eager+" } else { "" },
                if gossip.is_some() { "gossip," } else { "no-gossip," },
                mode
            ),
            Scheme::Quorum { n, r, w, .. } => format!("quorum(N={n},R={r},W={w})"),
            Scheme::SloppyQuorum { n, r, w, spares } => {
                format!("sloppy-quorum(N={n},R={r},W={w},+{spares})")
            }
            Scheme::PrimarySync { .. } => "primary-sync".to_string(),
            Scheme::PrimaryAsync { ship_interval, .. } => {
                format!("primary-async({}ms)", ship_interval.as_millis_f64())
            }
            Scheme::PrimaryAsyncFailover { ship_interval, .. } => {
                format!("primary-async-failover({}ms)", ship_interval.as_millis_f64())
            }
            Scheme::Paxos { .. } => "paxos".to_string(),
            Scheme::Causal { .. } => "causal".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_counts() {
        assert_eq!(Scheme::eventual(3).replica_count(), 3);
        assert_eq!(Scheme::quorum(5, 2, 3).replica_count(), 5);
        assert_eq!(Scheme::Paxos { nodes: 7 }.replica_count(), 7);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Scheme::quorum(3, 1, 1).label(), "quorum(N=3,R=1,W=1)");
        assert!(Scheme::eventual(3).label().starts_with("eventual("));
        assert_eq!(
            Scheme::PrimaryAsync { replicas: 2, ship_interval: Duration::from_millis(100) }.label(),
            "primary-async(100ms)"
        );
    }
}
