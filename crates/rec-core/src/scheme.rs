//! Points in the replication design space.
//!
//! A [`Scheme`] is what experiments name: either one of the legacy
//! protocol presets or an explicit kernel [`Composition`]. Every legacy
//! preset maps to a canonical composition via [`Scheme::normalize`], and
//! the runner materializes *only* compositions — so a legacy scheme and
//! its composition are byte-identical at the same seed by construction
//! (and `tests/scheme_parity.rs` proves it).

use replication::common::Guarantees;
use replication::eventual::ConflictMode;
use replication::kernel::{Composition, GossipConfig, ShipMode};
use simnet::{Duration, NodeId, SimTime};

/// How client sessions attach to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPlacement {
    /// Session `i` sticks to replica `i % n` (geo-local client).
    Sticky,
    /// Every operation goes to a uniformly random replica (load-balanced
    /// anycast; the setting where session anomalies surface).
    Random,
}

/// A deterministic membership-churn schedule for ring-sharded schemes.
///
/// Each entry is `(time, node, join)` and is merged into the run's
/// [`simnet::FaultSchedule`] as a membership fault event, so churn flows
/// through the same compiled fault pipeline as partitions and crashes
/// (and is byte-deterministic across `--jobs`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    /// `(time, node, join)` membership transitions, in schedule order.
    pub events: Vec<(SimTime, NodeId, bool)>,
}

impl ChurnPlan {
    /// No churn: the ring membership is static for the whole run.
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// A rolling restart: event `k` (for `k < count`) removes node
    /// `k % nodes` at `start + k * period` and rejoins it half a period
    /// later. Models steady operational churn (deploys, reboots).
    pub fn rolling(nodes: usize, period: Duration, count: usize, start: SimTime) -> Self {
        let mut events = Vec::with_capacity(count * 2);
        let period_us = period.as_micros();
        for k in 0..count {
            let node = NodeId((k % nodes) as u32);
            let leave = SimTime::from_micros(start.as_micros() + k as u64 * period_us);
            let rejoin = SimTime::from_micros(leave.as_micros() + period_us / 2);
            events.push((leave, node, false));
            events.push((rejoin, node, true));
        }
        events.sort_by_key(|&(at, node, join)| (at, node, join));
        ChurnPlan { events }
    }

    /// Whether the plan has any events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A replication scheme — one point in the tutorial's taxonomy.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// Asynchronous multi-master (anti-entropy + optional eager push).
    Eventual {
        /// Replica count.
        replicas: usize,
        /// Eagerly broadcast each write.
        eager: bool,
        /// Gossip `(interval, fanout)`; `None` disables anti-entropy.
        gossip: Option<(Duration, usize)>,
        /// Conflict policy.
        mode: ConflictMode,
        /// Session guarantees enforced client-side.
        guarantees: Guarantees,
        /// Client attachment.
        placement: ClientPlacement,
    },
    /// Dynamo-style N/R/W quorums with sloppy writes: unreachable home
    /// replicas are covered by hint-holding spares (hinted handoff).
    SloppyQuorum {
        /// Home replica count.
        n: usize,
        /// Read quorum.
        r: usize,
        /// Write quorum.
        w: usize,
        /// Spare (hint-holding) node count.
        spares: usize,
    },
    /// Dynamo-style N/R/W quorums.
    Quorum {
        /// Replica count.
        n: usize,
        /// Read quorum.
        r: usize,
        /// Write quorum.
        w: usize,
        /// Read repair on stale replicas.
        read_repair: bool,
        /// Client attachment (coordinator choice).
        placement: ClientPlacement,
    },
    /// Primary copy with async shipping *and* view-change failover.
    PrimaryAsyncFailover {
        /// Replica count (node 0 leads view 0).
        replicas: usize,
        /// Shipping interval.
        ship_interval: Duration,
    },
    /// Primary copy with synchronous backup acks.
    PrimarySync {
        /// Replica count (node 0 is primary).
        replicas: usize,
    },
    /// Primary copy with asynchronous log shipping.
    PrimaryAsync {
        /// Replica count (node 0 is primary).
        replicas: usize,
        /// Shipping interval (replication lag knob).
        ship_interval: Duration,
    },
    /// Multi-Paxos replicated log (linearizable).
    Paxos {
        /// Node count.
        nodes: usize,
    },
    /// COPS-style causal+ multi-master.
    Causal {
        /// Replica count.
        replicas: usize,
    },
    /// A ring-sharded cluster: `nodes` physical nodes on a consistent-
    /// hashing ring with `vnodes` virtual nodes each, running the inner
    /// quorum composition per key (preference lists of size `inner.n`,
    /// sloppy fall-through to ring spares, hinted handoff, and
    /// deterministic key rebalancing under `churn`).
    Sharded {
        /// The per-key quorum composition (must be a coordinator/quorum
        /// composition; other kernels have no ring materialization).
        inner: Composition,
        /// Physical node count.
        nodes: usize,
        /// Virtual nodes per physical node.
        vnodes: usize,
        /// Membership-churn schedule.
        churn: ChurnPlan,
    },
    /// An explicit kernel composition (durability × propagation ×
    /// resolution) — the general form every other variant normalizes to.
    Composed {
        /// The kernel composition to deploy.
        comp: Composition,
        /// Session guarantees enforced client-side (multi-master only).
        guarantees: Guarantees,
        /// Client attachment.
        placement: ClientPlacement,
    },
}

impl Scheme {
    /// Default eventual configuration: eager + 50 ms gossip, LWW, no
    /// session guarantees, sticky clients.
    pub fn eventual(replicas: usize) -> Self {
        Scheme::Eventual {
            replicas,
            eager: true,
            gossip: Some((Duration::from_millis(50), 1)),
            mode: ConflictMode::Lww,
            guarantees: Guarantees::none(),
            placement: ClientPlacement::Sticky,
        }
    }

    /// Quorum with explicit R/W, read repair on, random coordinators.
    pub fn quorum(n: usize, r: usize, w: usize) -> Self {
        Scheme::Quorum { n, r, w, read_repair: true, placement: ClientPlacement::Random }
    }

    /// A ring-sharded majority quorum (`R = W = n/2 + 1`, read repair
    /// on) over `nodes` physical nodes with `vnodes` virtual nodes each
    /// and no churn.
    pub fn sharded(n: usize, r: usize, w: usize, nodes: usize, vnodes: usize) -> Self {
        Scheme::Sharded {
            inner: Composition::quorum(n, r, w, true, 0),
            nodes,
            vnodes,
            churn: ChurnPlan::none(),
        }
    }

    /// An explicit composition with sticky clients and no client-side
    /// guarantees.
    pub fn composed(comp: Composition) -> Self {
        Scheme::Composed {
            comp,
            guarantees: Guarantees::none(),
            placement: ClientPlacement::Sticky,
        }
    }

    /// The scheme's canonical kernel [`Composition`] plus the client-side
    /// knobs the composition does not cover. The runner materializes this
    /// normal form and nothing else, so two schemes that normalize equal
    /// run identically.
    pub fn normalize(&self) -> (Composition, Guarantees, ClientPlacement) {
        match self {
            Scheme::Eventual { replicas, eager, gossip, mode, guarantees, placement } => {
                let gossip = gossip.map(|(interval, fanout)| GossipConfig { interval, fanout });
                let comp = Composition::eventual(*replicas, *eager, gossip, mode.policy());
                (comp, *guarantees, *placement)
            }
            Scheme::SloppyQuorum { n, r, w, spares } => (
                Composition::quorum(*n, *r, *w, true, *spares),
                Guarantees::none(),
                ClientPlacement::Sticky,
            ),
            Scheme::Quorum { n, r, w, read_repair, placement } => {
                (Composition::quorum(*n, *r, *w, *read_repair, 0), Guarantees::none(), *placement)
            }
            Scheme::PrimarySync { replicas } => (
                Composition::primary(*replicas, ShipMode::Sync, false),
                Guarantees::none(),
                ClientPlacement::Sticky,
            ),
            Scheme::PrimaryAsync { replicas, ship_interval } => (
                Composition::primary(
                    *replicas,
                    ShipMode::Async { interval: *ship_interval },
                    false,
                ),
                Guarantees::none(),
                ClientPlacement::Sticky,
            ),
            Scheme::PrimaryAsyncFailover { replicas, ship_interval } => (
                Composition::primary(*replicas, ShipMode::Async { interval: *ship_interval }, true),
                Guarantees::none(),
                ClientPlacement::Sticky,
            ),
            Scheme::Paxos { nodes } => {
                (Composition::paxos(*nodes), Guarantees::none(), ClientPlacement::Sticky)
            }
            Scheme::Causal { replicas } => {
                (Composition::causal(*replicas), Guarantees::none(), ClientPlacement::Sticky)
            }
            Scheme::Composed { comp, guarantees, placement } => {
                (comp.clone(), *guarantees, *placement)
            }
            Scheme::Sharded { .. } => panic!(
                "sharded schemes deploy a ring topology on top of the inner composition; \
                 the runner materializes them directly rather than through a flat composition"
            ),
        }
    }

    /// Number of replica (server) nodes the scheme deploys.
    pub fn replica_count(&self) -> usize {
        match self {
            Scheme::Eventual { replicas, .. } => *replicas,
            Scheme::Quorum { n, .. } => *n,
            Scheme::SloppyQuorum { n, .. } => *n,
            Scheme::PrimarySync { replicas } => *replicas,
            Scheme::PrimaryAsync { replicas, .. } => *replicas,
            Scheme::PrimaryAsyncFailover { replicas, .. } => *replicas,
            Scheme::Paxos { nodes } => *nodes,
            Scheme::Causal { replicas } => *replicas,
            Scheme::Composed { comp, .. } => comp.replicas,
            Scheme::Sharded { inner, .. } => inner.replicas,
        }
    }

    /// Total server nodes deployed (replicas + any spares); client actors
    /// get node ids starting at this offset.
    pub fn server_node_count(&self) -> usize {
        match self {
            Scheme::SloppyQuorum { n, spares, .. } => n + spares,
            Scheme::Composed { comp, .. } => comp.server_node_count(),
            Scheme::Sharded { nodes, .. } => *nodes,
            _ => self.replica_count(),
        }
    }

    /// A short label for table rows.
    pub fn label(&self) -> String {
        match self {
            Scheme::Eventual { eager, gossip, mode, .. } => format!(
                "eventual({}{}{:?})",
                if *eager { "eager+" } else { "" },
                if gossip.is_some() { "gossip," } else { "no-gossip," },
                mode
            ),
            Scheme::Quorum { n, r, w, .. } => format!("quorum(N={n},R={r},W={w})"),
            Scheme::SloppyQuorum { n, r, w, spares } => {
                format!("sloppy-quorum(N={n},R={r},W={w},+{spares})")
            }
            Scheme::PrimarySync { .. } => "primary-sync".to_string(),
            Scheme::PrimaryAsync { ship_interval, .. } => {
                format!("primary-async({}ms)", ship_interval.as_millis_f64())
            }
            Scheme::PrimaryAsyncFailover { ship_interval, .. } => {
                format!("primary-async-failover({}ms)", ship_interval.as_millis_f64())
            }
            Scheme::Paxos { .. } => "paxos".to_string(),
            Scheme::Causal { .. } => "causal".to_string(),
            Scheme::Composed { comp, .. } => comp.label(),
            Scheme::Sharded { inner, nodes, vnodes, churn } => format!(
                "ring({nodes}x{vnodes},{}{})",
                inner.label(),
                if churn.is_empty() { "" } else { ",churn" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replication::kernel::{DurabilityPolicy, ResolutionPolicy, UpdateSite};

    #[test]
    fn replica_counts() {
        assert_eq!(Scheme::eventual(3).replica_count(), 3);
        assert_eq!(Scheme::quorum(5, 2, 3).replica_count(), 5);
        assert_eq!(Scheme::Paxos { nodes: 7 }.replica_count(), 7);
        assert_eq!(Scheme::composed(Composition::mm_gossip_crdt(4)).replica_count(), 4);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Scheme::quorum(3, 1, 1).label(), "quorum(N=3,R=1,W=1)");
        assert!(Scheme::eventual(3).label().starts_with("eventual("));
        assert_eq!(
            Scheme::PrimaryAsync { replicas: 2, ship_interval: Duration::from_millis(100) }.label(),
            "primary-async(100ms)"
        );
        assert_eq!(Scheme::composed(Composition::mm_gossip_crdt(3)).label(), "mm+gossip+crdt");
    }

    #[test]
    fn legacy_schemes_normalize_to_their_canonical_compositions() {
        let (comp, _, _) = Scheme::eventual(3).normalize();
        assert_eq!(comp, Composition::eventual_lww(3));
        let (comp, _, _) = Scheme::quorum(3, 2, 2).normalize();
        assert_eq!(comp, Composition::quorum(3, 2, 2, true, 0));
        let (comp, _, _) = Scheme::Paxos { nodes: 5 }.normalize();
        assert_eq!(comp, Composition::paxos(5));
        let (comp, _, _) = Scheme::Causal { replicas: 3 }.normalize();
        assert_eq!(comp, Composition::causal(3));
        let (comp, _, _) = Scheme::PrimarySync { replicas: 3 }.normalize();
        assert_eq!(comp.update, UpdateSite::PrimaryCopy);
        assert_eq!(comp.durability, DurabilityPolicy::CheckpointedWal);
        assert_eq!(comp.resolution, ResolutionPolicy::LwwRegister);
    }

    #[test]
    fn composed_roundtrips_through_normalize() {
        let comp = Composition::mm_eager_acked(3);
        let (back, g, p) = Scheme::composed(comp.clone()).normalize();
        assert_eq!(back, comp);
        assert_eq!(g, Guarantees::none());
        assert_eq!(p, ClientPlacement::Sticky);
    }
}
