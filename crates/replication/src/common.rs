//! Shared client plumbing for all protocols.
//!
//! A protocol's client actor owns a [`ClientCore`]: a scripted session
//! that issues operations (with think-time gaps), arms per-operation
//! timeouts, and records every completion — success or timeout — into the
//! shared operation trace. The protocol actor supplies only the
//! protocol-specific envelope (message types, replica choice).

use kvstore::Key;
use obs::TsMetric;
use serde::{Deserialize, Serialize};
use simnet::{
    Context, Duration, NodeId, OpKind, OpRecord, SharedTrace, SimTime, SpanId, SpanStatus,
};

/// One scripted client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptOp {
    /// Gap before issuing, in microseconds (after the previous response
    /// for closed-loop scripts).
    pub gap_us: u64,
    /// Read or write.
    pub kind: OpKind,
    /// The key.
    pub key: Key,
}

/// Session guarantees a client can enforce (Terry et al., Bayou).
///
/// Enforcement mechanics (all client-side, as the tutorial describes):
/// * **Read-your-writes / monotonic reads** — the client keeps per-key
///   floors (stamps of its own writes and of versions it has read) and
///   retries a read whose returned stamp is below the floor.
/// * **Monotonic writes / writes-follow-reads** — the client piggybacks
///   the highest stamp it has seen on every write; replicas tick their
///   Lamport clocks past it before stamping, ordering the new write after
///   everything the session depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Guarantees {
    /// Reads reflect the session's own writes.
    pub read_your_writes: bool,
    /// Successive reads never go backwards.
    pub monotonic_reads: bool,
    /// The session's writes are ordered.
    pub monotonic_writes: bool,
    /// Writes are ordered after the reads they depend on.
    pub writes_follow_reads: bool,
}

impl Guarantees {
    /// No guarantees (raw eventual consistency).
    pub fn none() -> Self {
        Self::default()
    }

    /// All four session guarantees.
    pub fn all() -> Self {
        Guarantees {
            read_your_writes: true,
            monotonic_reads: true,
            monotonic_writes: true,
            writes_follow_reads: true,
        }
    }

    /// True if any read-side guarantee is on.
    pub fn any_read_guarantee(&self) -> bool {
        self.read_your_writes || self.monotonic_reads
    }

    /// True if any write-side guarantee is on.
    pub fn any_write_guarantee(&self) -> bool {
        self.monotonic_writes || self.writes_follow_reads
    }
}

/// What a completed operation looked like to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct OpOutcome {
    /// Whether it succeeded.
    pub ok: bool,
    /// For reads: observed value(s) (unique write ids); empty if absent.
    pub values: Vec<u64>,
    /// Logical stamp (write: assigned; read: max returned).
    pub stamp: Option<(u64, u64)>,
    /// Origin wall time of the version read.
    pub version_ts: Option<SimTime>,
}

impl OpOutcome {
    /// A timeout/unavailable outcome.
    pub fn failed() -> Self {
        OpOutcome { ok: false, values: Vec::new(), stamp: None, version_ts: None }
    }
}

/// What the core asks the protocol wrapper to do after a timer fires.
#[derive(Debug, Clone, PartialEq)]
pub enum TimerAction {
    /// Issue this operation now (send the protocol request).
    Issue(IssueOp),
    /// The pending operation timed out and has been recorded; nothing to
    /// send (the wrapper may cancel protocol state for the op id).
    TimedOut(u64),
    /// Not a client-core timer / nothing to do.
    None,
}

/// A fully-described operation to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOp {
    /// Trace-unique op id (also used to match responses).
    pub op_id: u64,
    /// Read or write.
    pub kind: OpKind,
    /// Key.
    pub key: Key,
    /// For writes: the globally unique value to write.
    pub value: Option<u64>,
}

#[derive(Debug)]
struct Pending {
    op_id: u64,
    kind: OpKind,
    key: Key,
    value: Option<u64>,
    invoked: SimTime,
    replica: NodeId,
    timeout_timer: u64,
    retries: u32,
    /// Root span of the operation's trace, closed at completion/timeout.
    span: SpanId,
}

/// Scripted-session state machine shared by every protocol's client actor.
#[derive(Debug)]
pub struct ClientCore {
    session: u64,
    script: Vec<ScriptOp>,
    next_idx: usize,
    trace: SharedTrace,
    pending: Option<Pending>,
    timeout: Duration,
    issued: u64,
}

/// Timer tags used by the core (protocol wrappers must not reuse these).
const TAG_ISSUE: u64 = u64::MAX;
const TAG_TIMEOUT_BASE: u64 = u64::MAX / 2;

impl ClientCore {
    /// Create a session that will replay `script`.
    pub fn new(session: u64, script: Vec<ScriptOp>, trace: SharedTrace, timeout: Duration) -> Self {
        ClientCore { session, script, next_idx: 0, trace, pending: None, timeout, issued: 0 }
    }

    /// The session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// True once every scripted op has completed (or timed out).
    pub fn done(&self) -> bool {
        self.next_idx >= self.script.len() && self.pending.is_none()
    }

    /// Globally unique value for this session's `op_id` (sessions are
    /// assumed < 2^32 and ops per session < 2^32).
    pub fn unique_value(session: u64, op_id: u64) -> u64 {
        (session << 32) | (op_id & 0xffff_ffff)
    }

    /// Decode the writing session from a unique value.
    pub fn session_of_value(value: u64) -> u64 {
        value >> 32
    }

    /// Schedule the first operation. Call from `Actor::on_start`.
    pub fn start<M>(&mut self, ctx: &mut Context<M>) {
        self.schedule_next(ctx);
    }

    fn schedule_next<M>(&mut self, ctx: &mut Context<M>) {
        if let Some(op) = self.script.get(self.next_idx) {
            ctx.set_timer(Duration::from_micros(op.gap_us), TAG_ISSUE);
        }
    }

    /// Handle a timer. Returns what the protocol wrapper should do.
    /// `replica` is the target the wrapper will send to (recorded for the
    /// trace); the wrapper passes its current choice in.
    pub fn handle_timer<M>(
        &mut self,
        ctx: &mut Context<M>,
        tag: u64,
        replica: NodeId,
    ) -> TimerAction {
        if tag == TAG_ISSUE {
            let Some(&op) = self.script.get(self.next_idx) else {
                return TimerAction::None;
            };
            self.next_idx += 1;
            self.issued += 1;
            let op_id = self.issued;
            let value = (op.kind == OpKind::Write).then(|| Self::unique_value(self.session, op_id));
            // Every client operation roots a new trace; the timeout timer
            // (and the wrapper's protocol send, which happens after this
            // returns) then carry its context through the envelope.
            let span = ctx.start_trace(match op.kind {
                OpKind::Read => "op_read",
                OpKind::Write => "op_write",
            });
            let timer = ctx.set_timer(self.timeout, TAG_TIMEOUT_BASE + op_id);
            self.pending = Some(Pending {
                op_id,
                kind: op.kind,
                key: op.key,
                value,
                invoked: ctx.now(),
                replica,
                timeout_timer: timer,
                retries: 0,
                span,
            });
            TimerAction::Issue(IssueOp { op_id, kind: op.kind, key: op.key, value })
        } else if tag >= TAG_TIMEOUT_BASE {
            let op_id = tag - TAG_TIMEOUT_BASE;
            match &self.pending {
                Some(p) if p.op_id == op_id => {
                    ctx.span_close(p.span, SpanStatus::Failed);
                    self.record(ctx, OpOutcome::failed());
                    self.schedule_next(ctx);
                    TimerAction::TimedOut(op_id)
                }
                _ => TimerAction::None,
            }
        } else {
            TimerAction::None
        }
    }

    /// Re-issue the pending operation (used by retry-based guarantee
    /// enforcement and failover). Returns the op to send, or `None` if
    /// nothing is pending. The retry keeps the original invocation time so
    /// the recorded latency includes every attempt.
    pub fn retry<M>(&mut self, ctx: &mut Context<M>, replica: NodeId) -> Option<IssueOp> {
        let p = self.pending.as_mut()?;
        p.retries += 1;
        p.replica = replica;
        // Re-enter the operation's trace so the wrapper's re-send carries
        // it even when the triggering callback was untraced (failover
        // timers, stale responses).
        ctx.resume_span(p.span);
        Some(IssueOp { op_id: p.op_id, kind: p.kind, key: p.key, value: p.value })
    }

    /// Number of retries the pending op has had.
    pub fn pending_retries(&self) -> u32 {
        self.pending.as_ref().map(|p| p.retries).unwrap_or(0)
    }

    /// The pending op id, if any.
    pub fn pending_op(&self) -> Option<u64> {
        self.pending.as_ref().map(|p| p.op_id)
    }

    /// The pending op's key, if any.
    pub fn pending_key(&self) -> Option<Key> {
        self.pending.as_ref().map(|p| p.key)
    }

    /// Complete the pending operation with `outcome` (ignores op ids that
    /// already timed out). Cancels the timeout timer, records the trace
    /// row, and schedules the next scripted op.
    pub fn complete<M>(&mut self, ctx: &mut Context<M>, op_id: u64, outcome: OpOutcome) -> bool {
        match &self.pending {
            Some(p) if p.op_id == op_id => {
                ctx.cancel_timer(p.timeout_timer);
                ctx.span_close(
                    p.span,
                    if outcome.ok { SpanStatus::Ok } else { SpanStatus::Failed },
                );
                if outcome.ok && p.kind == OpKind::Read {
                    // Windowed consistency telemetry: how many acknowledged
                    // writes the read missed, and how far behind it ran.
                    let (missed, lag_us) =
                        self.trace.borrow().read_staleness(p.key, p.invoked, &outcome.values);
                    let now_us = ctx.now().as_micros();
                    ctx.recorder().sample(now_us, TsMetric::StalenessVersions, missed);
                    ctx.recorder().sample(now_us, TsMetric::VisibilityLagUs, lag_us);
                }
                self.record(ctx, outcome);
                self.schedule_next(ctx);
                true
            }
            _ => false,
        }
    }

    fn record<M>(&mut self, ctx: &mut Context<M>, outcome: OpOutcome) {
        let now = ctx.now();
        let p = self.pending.take().expect("record without pending op");
        // Mirror the trace row into the event stream so online monitors
        // (the streaming consistency checkers) can observe completions
        // without access to the in-process SharedTrace.
        ctx.recorder().record(
            now.as_micros(),
            obs::EventKind::OpComplete {
                session: self.session,
                op: p.op_id,
                key: p.key,
                kind: match p.kind {
                    OpKind::Read => obs::ClientOpKind::Read,
                    OpKind::Write => obs::ClientOpKind::Write,
                },
                ok: outcome.ok,
                invoked_us: p.invoked.as_micros(),
                replica: p.replica.0 as u64,
                value: p.value,
                values: outcome.values.clone(),
                stamp: outcome.stamp,
                version_ts_us: outcome.version_ts.map(|t| t.as_micros()),
            },
        );
        self.trace.borrow_mut().push(OpRecord {
            session: self.session,
            op_id: p.op_id,
            key: p.key,
            kind: p.kind,
            value_written: p.value,
            value_read: outcome.values,
            invoked: p.invoked,
            completed: now,
            replica: p.replica,
            ok: outcome.ok,
            version_ts: outcome.version_ts,
            stamp: outcome.stamp,
        });
    }
}

/// Convert a workload script (`(gap_us, WorkloadOp, key)`) into client-core
/// script ops, expanding read-modify-writes into a read followed
/// immediately by a write.
pub fn expand_script(ops: &[(u64, workload_op::WorkloadOp, Key)]) -> Vec<ScriptOp> {
    let mut out = Vec::with_capacity(ops.len());
    for &(gap, op, key) in ops {
        match op {
            workload_op::WorkloadOp::Read => {
                out.push(ScriptOp { gap_us: gap, kind: OpKind::Read, key })
            }
            workload_op::WorkloadOp::Write => {
                out.push(ScriptOp { gap_us: gap, kind: OpKind::Write, key })
            }
            workload_op::WorkloadOp::ReadModifyWrite => {
                out.push(ScriptOp { gap_us: gap, kind: OpKind::Read, key });
                out.push(ScriptOp { gap_us: 1, kind: OpKind::Write, key });
            }
        }
    }
    out
}

/// Re-export of the workload op enum under a private name so `replication`
/// does not take a hard dependency on workload internals beyond this enum.
pub mod workload_op {
    pub use workload::WorkloadOp;
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{optrace, Actor, Sim, SimConfig};

    #[test]
    fn unique_values_encode_session() {
        let v = ClientCore::unique_value(7, 3);
        assert_eq!(ClientCore::session_of_value(v), 7);
        assert_ne!(ClientCore::unique_value(1, 1), ClientCore::unique_value(1, 2));
        assert_ne!(ClientCore::unique_value(1, 1), ClientCore::unique_value(2, 1));
    }

    #[test]
    fn guarantees_flags() {
        assert!(!Guarantees::none().any_read_guarantee());
        assert!(Guarantees::all().any_read_guarantee());
        assert!(Guarantees::all().any_write_guarantee());
        let ryw = Guarantees { read_your_writes: true, ..Guarantees::none() };
        assert!(ryw.any_read_guarantee());
        assert!(!ryw.any_write_guarantee());
    }

    #[test]
    fn expand_script_expands_rmw() {
        use workload::WorkloadOp::*;
        let script = expand_script(&[(10, Read, 1), (20, ReadModifyWrite, 2), (30, Write, 3)]);
        assert_eq!(script.len(), 4);
        assert_eq!(script[1].kind, OpKind::Read);
        assert_eq!(script[2].kind, OpKind::Write);
        assert_eq!(script[2].gap_us, 1);
        assert_eq!(script[2].key, 2);
    }

    /// A self-contained echo "protocol" to drive the core end to end: the
    /// client sends (op_id, key) to a server that echoes it back; every
    /// odd op is dropped so timeouts are exercised.
    #[derive(Debug, Clone)]
    enum TestMsg {
        Req { op_id: u64, drop: bool },
        Resp { op_id: u64 },
    }

    impl simnet::MsgMeta for TestMsg {}

    struct Server;
    impl Actor<TestMsg> for Server {
        fn on_message(&mut self, ctx: &mut Context<TestMsg>, from: NodeId, msg: TestMsg) {
            if let TestMsg::Req { op_id, drop } = msg {
                if !drop {
                    ctx.send(from, TestMsg::Resp { op_id });
                }
            }
        }
    }

    struct TestClient {
        core: ClientCore,
        server: NodeId,
    }
    impl Actor<TestMsg> for TestClient {
        fn on_start(&mut self, ctx: &mut Context<TestMsg>) {
            self.core.start(ctx);
        }
        fn on_timer(&mut self, ctx: &mut Context<TestMsg>, _id: u64, tag: u64) {
            match self.core.handle_timer(ctx, tag, self.server) {
                TimerAction::Issue(op) => {
                    ctx.send(
                        self.server,
                        TestMsg::Req { op_id: op.op_id, drop: op.op_id % 2 == 0 },
                    );
                }
                TimerAction::TimedOut(_) | TimerAction::None => {}
            }
        }
        fn on_message(&mut self, ctx: &mut Context<TestMsg>, _from: NodeId, msg: TestMsg) {
            if let TestMsg::Resp { op_id } = msg {
                self.core.complete(
                    ctx,
                    op_id,
                    OpOutcome { ok: true, values: vec![], stamp: None, version_ts: None },
                );
            }
        }
    }

    #[test]
    fn core_drives_script_with_timeouts() {
        let trace = optrace::shared_trace();
        let script: Vec<ScriptOp> =
            (0..6).map(|i| ScriptOp { gap_us: 100, kind: OpKind::Read, key: i }).collect();
        let mut sim: Sim<TestMsg> = Sim::new(SimConfig::default().seed(3));
        let server = sim.add_node(Box::new(Server));
        sim.add_node(Box::new(TestClient {
            core: ClientCore::new(1, script, trace.clone(), Duration::from_millis(50)),
            server,
        }));
        sim.run_until(SimTime::from_secs(5));
        let t = trace.borrow();
        assert_eq!(t.len(), 6, "all ops recorded");
        // Odd op ids (1,3,5) succeed; even (2,4,6) time out.
        for r in t.records() {
            assert_eq!(r.ok, r.op_id % 2 == 1, "op {} ok={}", r.op_id, r.ok);
            if !r.ok {
                assert_eq!(r.latency(), Duration::from_millis(50));
            }
        }
    }
}
