//! Ring-sharded quorum deployments.
//!
//! The classic [`crate::quorum`] layer places every key on the *same* N
//! home replicas (nodes `0..n`), which is faithful to the tutorial's
//! single-shard analysis but cannot say anything about cluster-scale
//! effects: membership churn, rebalancing cost, or how sloppy-quorum
//! availability behaves when spares are *other data-carrying nodes*
//! rather than dedicated hint parks. This module composes the
//! [`Ring`](crate::kernel::ring::Ring) consistent-hashing layer with
//! [`QuorumNode`] to model a Dynamo-style cluster:
//!
//! - every physical node owns the keys whose hash walk reaches it first,
//! - each key's preference list is its first `n` distinct owners,
//! - sloppy quorums fall through to the *next* distinct nodes on the
//!   walk (per-key spares) instead of a fixed spare pool, and
//! - membership changes rebalance only the keys whose preference list
//!   actually changed (the consistent-hashing guarantee).
//!
//! See `docs/RING.md` for the layout, hint lifecycle, and churn model.

use crate::quorum::{QuorumConfig, QuorumNode};
use simnet::NodeId;

pub use crate::kernel::ring::Ring;

/// Configuration for a ring-sharded quorum cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Per-key quorum parameters. `quorum.n` is the preference-list
    /// size; `quorum.spares` is how many ring successors past the
    /// preference list a sloppy write may fall through to.
    pub quorum: QuorumConfig,
    /// Number of physical nodes in the cluster.
    pub nodes: usize,
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes: usize,
}

impl ShardedConfig {
    /// A sharded cluster with the given quorum parameters.
    ///
    /// Panics if the cluster is smaller than the preference list or if
    /// `vnodes` is zero.
    pub fn new(quorum: QuorumConfig, nodes: usize, vnodes: usize) -> Self {
        let cfg = ShardedConfig { quorum, nodes, vnodes };
        cfg.validate();
        cfg
    }

    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert!(
            self.nodes >= self.quorum.n,
            "ring cluster must have at least as many nodes ({}) as the preference list ({})",
            self.nodes,
            self.quorum.n
        );
        assert!(
            self.nodes <= u32::MAX as usize,
            "ring cluster of {} nodes exceeds compact u32 NodeId addressing (max {})",
            self.nodes,
            u32::MAX
        );
        assert!(self.vnodes >= 1, "ring needs at least one virtual node per physical node");
    }

    /// The initial ring over nodes `0..nodes`.
    pub fn ring(&self) -> Ring {
        Ring::new(self.quorum.n, self.vnodes, (0..self.nodes as u32).map(NodeId))
    }

    /// Build one [`QuorumNode`] per physical node, all sharing the
    /// initial ring view.
    pub fn build_nodes(&self) -> Vec<QuorumNode> {
        let ring = self.ring();
        (0..self.nodes).map(|_| QuorumNode::with_ring(self.quorum, ring.clone())).collect()
    }

    /// Human-readable label, e.g. `ring(20x16,R2W2+2)`.
    pub fn label(&self) -> String {
        let q = &self.quorum;
        let sloppy = if q.sloppy { format!("+{}", q.spares) } else { String::new() };
        format!("ring({}x{},R{}W{}{})", self.nodes, self.vnodes, q.r, q.w, sloppy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{ClientCore, ScriptOp};

    #[test]
    fn config_accepts_node_count_at_u32_boundary() {
        // Construction must not panic: u32::MAX nodes are addressable
        // with compact ids. (Only validates the config; no cluster of
        // this size is built.)
        let cfg = ShardedConfig {
            quorum: QuorumConfig::majority(3),
            nodes: u32::MAX as usize,
            vnodes: 8,
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "exceeds compact u32 NodeId addressing")]
    fn config_rejects_node_count_above_u32() {
        let cfg = ShardedConfig {
            quorum: QuorumConfig::majority(3),
            nodes: u32::MAX as usize + 1,
            vnodes: 8,
        };
        cfg.validate();
    }
    use crate::quorum::{Msg, QuorumClient};
    use kvstore::Key;
    use obs::Counter;
    use simnet::{optrace, Duration, FaultSchedule, LatencyModel, OpKind, Sim, SimConfig, SimTime};

    fn build(
        cfg: ShardedConfig,
        clients: Vec<QuorumClient>,
        seed: u64,
        faults: FaultSchedule,
        recorder: obs::Recorder,
    ) -> Sim<Msg> {
        let mut sim = Sim::new(
            SimConfig::default()
                .seed(seed)
                .latency(LatencyModel::Constant(Duration::from_millis(5)))
                .faults(faults)
                .recorder(recorder),
        );
        for node in cfg.build_nodes() {
            sim.add_node(Box::new(node));
        }
        for c in clients {
            sim.add_node(Box::new(c));
        }
        sim
    }

    fn script(ops: &[(OpKind, Key)]) -> Vec<ScriptOp> {
        ops.iter().map(|&(kind, key)| ScriptOp { gap_us: 2_000, kind, key }).collect()
    }

    #[test]
    fn ring_write_lands_on_owners_and_read_finds_it() {
        let cfg = ShardedConfig::new(QuorumConfig::majority(3), 8, 16);
        let trace = optrace::shared_trace();
        let keys: Vec<Key> = (0..10).collect();
        let writer = QuorumClient::new(
            1,
            script(&keys.iter().map(|&k| (OpKind::Write, k)).collect::<Vec<_>>()),
            trace.clone(),
            cfg.nodes,
            None,
        );
        let reader = QuorumClient::new(
            2,
            keys.iter()
                .map(|&k| ScriptOp { gap_us: 2_000, kind: OpKind::Read, key: k })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|mut op| {
                    op.gap_us = 30_000;
                    op
                })
                .collect(),
            trace.clone(),
            cfg.nodes,
            None,
        );
        let mut sim =
            build(cfg, vec![writer, reader], 7, FaultSchedule::none(), obs::Recorder::disabled());
        sim.run_until(SimTime::from_secs(2));

        // Every read observes the prior write for its key.
        let t = trace.borrow();
        for (i, _) in keys.iter().enumerate() {
            let read = t.records().iter().filter(|r| r.kind == OpKind::Read).nth(i).unwrap();
            assert!(read.ok, "ring read {i} failed");
            assert_eq!(read.value_read, vec![ClientCore::unique_value(1, i as u64 + 1)]);
        }

        // And the stored versions live exactly on the ring owners.
        let ring = cfg.ring();
        for (node, key, _) in sim.key_versions() {
            if node.index() < cfg.nodes {
                assert!(
                    ring.is_owner(key, node),
                    "node {} stores key {key} it does not own",
                    node.0
                );
            }
        }
    }

    #[test]
    fn ring_sloppy_quorum_hints_under_partition_and_drains_on_heal() {
        // Partition two of the key's three owners away so the write
        // quorum (W=2) cannot be met from homes alone; the sloppy write
        // must park hints on ring spares, then drain them after the heal.
        let cfg = ShardedConfig::new(QuorumConfig::sloppy_majority(3, 2), 6, 8);
        let key: Key = 3;
        let owners = cfg.ring().owners(key);
        let cut = owners[0];
        let faults = FaultSchedule::none().partition(
            vec![cut, owners[2]],
            SimTime::from_millis(5),
            SimTime::from_secs(4),
        );
        let trace = optrace::shared_trace();
        let coordinator = owners[1];
        let writer = QuorumClient::new(
            1,
            script(&[(OpKind::Write, key)]),
            trace.clone(),
            cfg.nodes,
            Some(coordinator),
        );
        let recorder = obs::Recorder::enabled();
        let mut sim = build(cfg, vec![writer], 5, faults, recorder.clone());
        sim.run_until(SimTime::from_secs(8));

        let t = trace.borrow();
        let write = t.records().iter().find(|r| r.kind == OpKind::Write).unwrap();
        assert!(write.ok, "sloppy write should succeed despite a partitioned owner");

        drop(sim);
        let metrics = recorder.report();
        assert!(metrics.counter(Counter::HintsStored) >= 1, "no hint was parked on a spare");
        assert_eq!(
            metrics.counter(Counter::HintsStored),
            metrics.counter(Counter::HintsDrained),
            "every hint should drain home after the heal"
        );

        // The partitioned owner ends up holding the value.
        // (key_versions was consumed by drop; re-run to inspect.)
        let mut sim2 = build(
            cfg,
            vec![QuorumClient::new(
                1,
                script(&[(OpKind::Write, key)]),
                optrace::shared_trace(),
                cfg.nodes,
                Some(coordinator),
            )],
            5,
            FaultSchedule::none().partition(
                vec![cut, owners[2]],
                SimTime::from_millis(5),
                SimTime::from_secs(4),
            ),
            obs::Recorder::disabled(),
        );
        sim2.run_until(SimTime::from_secs(8));
        assert!(
            sim2.key_versions().iter().any(|&(n, k, _)| n == cut && k == key),
            "hinted write never reached its home replica"
        );
    }

    #[test]
    fn membership_leave_rebalances_keys_to_new_owners() {
        let cfg = ShardedConfig::new(QuorumConfig::majority(3), 6, 8);
        let key: Key = 11;
        let old_ring = cfg.ring();
        let owners = old_ring.owners(key);
        let leaver = owners[0];
        let mut new_ring = old_ring.clone();
        new_ring.leave(leaver);
        let gained: Vec<_> =
            new_ring.owners(key).into_iter().filter(|n| !owners.contains(n)).collect();
        assert!(!gained.is_empty(), "pick a key whose ownership actually moves");

        let trace = optrace::shared_trace();
        let writer = QuorumClient::new(
            1,
            script(&[(OpKind::Write, key)]),
            trace.clone(),
            cfg.nodes,
            Some(owners[1]),
        );
        let faults = FaultSchedule::none().membership(SimTime::from_millis(500), leaver, false);
        let recorder = obs::Recorder::enabled();
        let mut sim = build(cfg, vec![writer], 9, faults, recorder.clone());
        sim.run_until(SimTime::from_secs(3));

        // The new owner received the key via a rebalance push.
        for target in &gained {
            assert!(
                sim.key_versions().iter().any(|&(n, k, _)| n == *target && k == key),
                "new owner {} never received rebalanced key {key}",
                target.0
            );
        }
        drop(sim);
        assert!(
            recorder.report().counter(Counter::RebalancedKeys) >= 1,
            "rebalanced_keys counter should record the push"
        );
    }
}
