//! Consistent-hashing ring with virtual nodes — the partitioning layer.
//!
//! A [`Ring`] maps every key to a *preference list* of physical nodes:
//! each member node projects `vnodes` points onto a 64-bit circle, a key
//! hashes to a point on the same circle, and its owners are the first
//! `replication` **distinct physical nodes** met walking clockwise from
//! that point. Virtual nodes smooth the load distribution (more points
//! per node ⇒ smaller variance in arc length) and bound rebalancing: when
//! a node leaves, only the keys in the departed node's arcs move, ~K/M of
//! the keyspace for K keys over M members.
//!
//! The ring is a pure function of `(replication, vnodes, member set)`:
//! [`Ring::join`] and [`Ring::leave`] rebuild the point table from the
//! member set alone, so a join/leave/rejoin round-trip restores a ring
//! equal to the original — the property `tests/ring_properties.rs` pins.
//! Hashing is seedless splitmix64, so two processes (or two `--jobs`
//! workers) always agree on ownership.

use kvstore::Key;
use simnet::NodeId;
use std::collections::BTreeSet;

/// Finalizer from splitmix64 — a cheap, statistically strong 64-bit
/// mixer. Used both for vnode placement and key lookup so the two share
/// one circle.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Where `vnode` replica-point `i` of physical `node` sits on the circle.
/// XOR (not OR) combines the fields: it is injective over
/// `(node, vnode)` pairs below 2^32, so no two points ever collide by
/// construction.
fn point_hash(node: u32, vnode: usize) -> u64 {
    mix64((u64::from(node) << 32) ^ vnode as u64 ^ 0xda7a_ba5e_0000_0000)
}

/// Where a key sits on the circle.
fn key_hash(key: Key) -> u64 {
    mix64(key ^ 0x5ca1_ab1e_c0ff_ee00)
}

/// A consistent-hashing ring: `vnodes` points per member on a 64-bit
/// circle, preference lists of `replication` distinct physical nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// Preference-list size N — how many distinct owners each key has
    /// (clamped to the member count when fewer nodes are live).
    replication: usize,
    /// Virtual nodes (points) per physical member.
    vnodes: usize,
    /// Current physical members.
    members: BTreeSet<u32>,
    /// The circle: `(point, node)` sorted by point (node id breaks the
    /// astronomically unlikely hash tie). Rebuilt from `members` on every
    /// change so the table is a pure function of the member set.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// Build a ring over `members` with `replication`-way ownership and
    /// `vnodes` points per member. Panics on a zero `replication` or
    /// `vnodes`, or an empty member set.
    pub fn new(
        replication: usize,
        vnodes: usize,
        members: impl IntoIterator<Item = NodeId>,
    ) -> Ring {
        assert!(replication >= 1, "ring replication factor must be at least 1");
        assert!(vnodes >= 1, "ring needs at least one virtual node per member");
        let members: BTreeSet<u32> = members.into_iter().map(|n| n.0).collect();
        assert!(!members.is_empty(), "ring needs at least one member");
        let mut ring = Ring { replication, vnodes, members, points: Vec::new() };
        ring.rebuild();
        ring
    }

    fn rebuild(&mut self) {
        self.points.clear();
        self.points.reserve(self.members.len() * self.vnodes);
        for &node in &self.members {
            for vnode in 0..self.vnodes {
                self.points.push((point_hash(node, vnode), node));
            }
        }
        self.points.sort_unstable();
    }

    /// Preference-list size N this ring was built with.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Current members in ascending id order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().map(|&n| NodeId(n))
    }

    /// Number of physical members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no members (never observable via `new`,
    /// only via `leave` of the last member being refused).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True if `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node.0)
    }

    /// Add a member; returns false (and changes nothing) if it was
    /// already present.
    pub fn join(&mut self, node: NodeId) -> bool {
        if !self.members.insert(node.0) {
            return false;
        }
        self.rebuild();
        true
    }

    /// Remove a member; returns false (and changes nothing) if it was
    /// absent or the last remaining member.
    pub fn leave(&mut self, node: NodeId) -> bool {
        if self.members.len() == 1 || !self.members.remove(&node.0) {
            return false;
        }
        self.rebuild();
        true
    }

    /// The first `want` **distinct physical nodes** clockwise from
    /// `key`'s point, in walk order. Fewer than `want` are returned only
    /// when the ring has fewer members.
    pub fn preference_list(&self, key: Key, want: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(want);
        self.preference_list_into(key, want, &mut out);
        out
    }

    /// [`Ring::preference_list`] into a caller-owned buffer (cleared
    /// first), so per-operation walks on the sharded hot path can reuse
    /// one allocation.
    pub fn preference_list_into(&self, key: Key, want: usize, out: &mut Vec<NodeId>) {
        out.clear();
        let h = key_hash(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            let id = NodeId(node);
            if !out.contains(&id) {
                out.push(id);
                if out.len() == want {
                    break;
                }
            }
        }
    }

    /// The key's home replica set: the first `replication` distinct
    /// members clockwise from its point, in walk order.
    pub fn owners(&self, key: Key) -> Vec<NodeId> {
        self.preference_list(key, self.replication)
    }

    /// [`Ring::owners`] into a caller-owned buffer (cleared first).
    pub fn owners_into(&self, key: Key, out: &mut Vec<NodeId>) {
        self.preference_list_into(key, self.replication, out);
    }

    /// The next `want` distinct members *after* the owners — the sloppy-
    /// quorum spares that accept hinted writes when owners are down.
    pub fn spares(&self, key: Key, want: usize) -> Vec<NodeId> {
        let mut list = self.preference_list(key, self.replication + want);
        list.drain(..self.replication.min(list.len()));
        list
    }

    /// True if `node` is one of `key`'s home owners.
    pub fn is_owner(&self, key: Key, node: NodeId) -> bool {
        self.owners(key).contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, repl: usize, vnodes: usize) -> Ring {
        Ring::new(repl, vnodes, (0..n as u32).map(NodeId))
    }

    #[test]
    fn every_key_gets_exactly_n_distinct_owners() {
        let r = ring(10, 3, 16);
        for key in 0..500u64 {
            let owners = r.owners(key);
            assert_eq!(owners.len(), 3);
            let set: BTreeSet<u32> = owners.iter().map(|n| n.0).collect();
            assert_eq!(set.len(), 3, "owners must be distinct physical nodes");
        }
    }

    #[test]
    fn ownership_clamps_to_member_count() {
        let r = ring(2, 3, 8);
        assert_eq!(r.owners(42).len(), 2);
    }

    #[test]
    fn leave_only_remaps_departed_nodes_keys() {
        let mut r = ring(12, 3, 32);
        let before: Vec<Vec<NodeId>> = (0..2000u64).map(|k| r.owners(k)).collect();
        assert!(r.leave(NodeId(5)));
        for (k, old) in before.iter().enumerate() {
            let new = r.owners(k as u64);
            if !old.contains(&NodeId(5)) {
                assert_eq!(*old, new, "key {k} had no owner leave but was remapped");
            } else {
                assert!(!new.contains(&NodeId(5)));
            }
        }
    }

    #[test]
    fn join_leave_rejoin_restores_identical_ring() {
        let orig = ring(8, 3, 16);
        let mut r = orig.clone();
        assert!(r.leave(NodeId(3)));
        assert_ne!(orig, r);
        assert!(r.join(NodeId(3)));
        assert_eq!(orig, r, "membership round-trip must restore the exact ring");
    }

    #[test]
    fn duplicate_join_and_absent_leave_are_noops() {
        let mut r = ring(4, 2, 8);
        let snap = r.clone();
        assert!(!r.join(NodeId(2)));
        assert!(!r.leave(NodeId(99)));
        assert_eq!(snap, r);
    }

    #[test]
    fn last_member_cannot_leave() {
        let mut r = ring(1, 1, 4);
        assert!(!r.leave(NodeId(0)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn spares_are_disjoint_from_owners() {
        let r = ring(10, 3, 16);
        for key in 0..200u64 {
            let owners = r.owners(key);
            for s in r.spares(key, 2) {
                assert!(!owners.contains(&s));
            }
        }
    }

    #[test]
    fn single_node_full_replication_owns_everything() {
        // The parity configuration: nodes = N, vnodes = 1, replication = N
        // makes every node an owner of every key.
        let r = ring(3, 3, 1);
        for key in 0..100u64 {
            let mut owners = r.owners(key);
            owners.sort();
            assert_eq!(owners, vec![NodeId(0), NodeId(1), NodeId(2)]);
        }
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_panics() {
        Ring::new(0, 4, [NodeId(0)]);
    }
}
