//! The durability layer: what a replica's state owes to stable storage.
//!
//! Every protocol used to carry its own private WAL discipline; the
//! kernel unifies them as one [`WalState`] wrapper over [`kvstore::Wal`]
//! plus a [`DurabilityPolicy`] naming what an amnesia crash may erase.
//! The simulator models durability, it does not perform real I/O: a
//! "durable" structure is simply one the actor keeps across
//! `on_recover(amnesia = true)`, and a volatile one is rebuilt — by WAL
//! replay here, or by anti-entropy from peers.

use clocks::LamportClock;
use kvstore::{Key, MvStore, Value, Wal};
use obs::EventKind;
use simnet::Context;

/// What survives an amnesia crash (the durability axis of a
/// [`super::Composition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// Nothing survives; peers refill state via anti-entropy.
    Volatile,
    /// A WAL of adopted versions survives; replay rebuilds the store and
    /// the Lamport clock. State the WAL does not capture (sibling sets,
    /// CRDT state in the legacy eventual protocol) is volatile.
    WalReplay,
    /// WAL plus a periodic checkpoint snapshot survive (the primary-copy
    /// log-shipping discipline: the log is truncated at each checkpoint
    /// and recovery replays the tail over the snapshot).
    CheckpointedWal,
    /// Every applied state change is fsynced before acknowledgement: the
    /// full store survives (the model Paxos acceptors already use for
    /// their promised/accepted/committed state).
    FsyncedState,
}

/// A write-ahead log with the recording discipline every protocol
/// shares: appends are counted as [`EventKind::WalAppend`], amnesia
/// replays as [`EventKind::WalReplay`].
///
/// The wrapped [`Wal`] is public: protocols with richer log needs
/// (shipping tails, truncation, sequence math) use it directly and only
/// route the *evented* operations through the wrapper.
#[derive(Debug, Default)]
pub struct WalState {
    /// The underlying log.
    pub wal: Wal,
}

impl WalState {
    /// An empty log.
    pub fn new() -> Self {
        WalState { wal: Wal::new() }
    }

    /// Append one adopted version, recording the event. Returns the
    /// record's sequence number.
    pub fn log<M>(
        &mut self,
        ctx: &mut Context<M>,
        key: Key,
        value: Value,
        ts: clocks::LamportTimestamp,
        written_at: u64,
    ) -> u64 {
        ctx.record(EventKind::WalAppend {
            node: ctx.self_id().0 as u64,
            key,
            bytes: value.len() as u64,
        });
        self.wal.append(key, value, ts, written_at)
    }

    /// Amnesia recovery: rebuild a store from the log (over `snapshot`
    /// when checkpointing), advance `clock` past every logged stamp so
    /// fresh writes sort after replayed ones, and record the replay.
    pub fn replay<M>(
        &self,
        ctx: &mut Context<M>,
        snapshot: Option<&MvStore>,
        clock: Option<&mut LamportClock>,
    ) -> MvStore {
        let store = self.wal.recover(snapshot);
        if let Some(clock) = clock {
            for rec in self.wal.tail(0) {
                clock.observe(rec.ts, 0);
            }
        }
        ctx.record(EventKind::WalReplay {
            node: ctx.self_id().0 as u64,
            records: self.wal.len() as u64,
        });
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_state_starts_empty() {
        let w = WalState::new();
        assert_eq!(w.wal.len(), 0);
        assert_eq!(w.wal.next_seq(), 1);
    }
}
