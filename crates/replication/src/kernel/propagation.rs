//! The propagation layer: how updates travel between replicas.
//!
//! Policies are named by [`PropagationPolicy`]; the mechanism pieces the
//! protocols share live here: peer enumeration ([`peers`]), gossip
//! round timing with jittered desynchronization ([`Gossip`]), and
//! threshold ack counting ([`AckTracker`] — write quorums, sync-backup
//! acks, Paxos promise/accept tallies, and eager-broadcast acks are all
//! the same "count distinct responders up to a need" loop).

use simnet::{Context, Duration, NodeId};
use std::collections::BTreeSet;

/// How updates propagate (the propagation axis of a
/// [`super::Composition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationPolicy {
    /// Writes are pushed to every peer as they happen; `acks` peers must
    /// confirm durable application before the client is acknowledged
    /// (`acks == 0` is the legacy fire-and-forget broadcast). Optional
    /// background gossip heals whatever the broadcast missed.
    EagerBroadcast {
        /// Peer acks required before the client ack (0 = none).
        acks: usize,
        /// Background anti-entropy, if any.
        gossip: Option<GossipConfig>,
    },
    /// Periodic push-pull anti-entropy only: digests exchange, missing
    /// items flow both ways.
    AntiEntropyGossip(GossipConfig),
    /// Eager broadcast with causal dependency metadata; receivers buffer
    /// out-of-order writes until their dependencies are applied.
    CausalBroadcast,
    /// Per-operation coordinator fans out to N home replicas and waits
    /// for R (reads) / W (writes) acks; optional sloppy spares take
    /// hinted handoffs.
    QuorumFanout {
        /// Read quorum.
        r: usize,
        /// Write quorum.
        w: usize,
        /// Repair stale replicas on read.
        read_repair: bool,
        /// Hint-holding spare nodes (0 = strict quorum).
        spares: usize,
    },
    /// Primary ships its log to backups.
    PrimaryShip {
        /// Synchronous acks or asynchronous interval shipping.
        ship: ShipMode,
        /// Heartbeat-driven view-change failover.
        failover: bool,
    },
    /// A consensus-sequenced replicated log (Multi-Paxos).
    ConsensusLog,
}

/// How a primary ships updates to its backups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipMode {
    /// Every backup must ack before the client is acknowledged.
    Sync,
    /// Log records ship on a timer; the client is acknowledged
    /// immediately (the replication-lag knob).
    Async {
        /// Shipping interval.
        interval: Duration,
    },
}

/// Gossip (anti-entropy) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Interval between gossip rounds.
    pub interval: Duration,
    /// Number of peers contacted per round.
    pub fanout: usize,
}

/// All peers of `me` among server nodes `0..n`, in id order.
pub fn peers(n: usize, me: NodeId) -> impl Iterator<Item = NodeId> {
    (0..n as u32).map(NodeId).filter(move |&p| p != me)
}

/// A reusable peer list for broadcast fan-out.
///
/// Server membership is fixed for a run, but the hot write path used to
/// rebuild `peers(n, me).collect()` on every operation — one `Vec`
/// allocation per put in every eager protocol. The cache builds the
/// list once and hands the same buffer back on every later call.
///
/// The take/restore protocol (rather than a borrowing getter) exists
/// because most fan-out loops call `&mut self` methods per peer
/// (`ship_to`, quorum bookkeeping), which a borrow held across the loop
/// would forbid. Callers must pass the buffer back via
/// [`PeerCache::restore`]; forgetting to merely costs a rebuild on the
/// next call.
#[derive(Debug, Clone, Default)]
pub struct PeerCache {
    peers: Vec<NodeId>,
    built_for: Option<(usize, NodeId)>,
}

impl PeerCache {
    /// Take the peer list for `me` among servers `0..n`, building it if
    /// the cache is cold or was built for different parameters.
    pub fn take(&mut self, n: usize, me: NodeId) -> Vec<NodeId> {
        if self.built_for != Some((n, me)) {
            self.peers.clear();
            self.peers.extend(peers(n, me));
            self.built_for = Some((n, me));
        }
        std::mem::take(&mut self.peers)
    }

    /// Return a buffer obtained from [`PeerCache::take`]. The contents
    /// must be unmodified (debug-asserted via the cache key).
    pub fn restore(&mut self, peers: Vec<NodeId>) {
        debug_assert!(
            self.built_for.is_none_or(|(n, me)| {
                peers.iter().copied().eq(super::propagation::peers(n, me))
            }),
            "restored peer buffer was modified"
        );
        self.peers = peers;
    }
}

/// Gossip round scheduling: a repeating timer with a jittered first
/// firing so replicas desynchronize, plus seeded peer sampling.
#[derive(Debug, Clone, Copy)]
pub struct Gossip {
    /// Interval and fanout.
    pub cfg: GossipConfig,
    /// The timer tag gossip rounds fire under.
    pub tag: u64,
}

impl Gossip {
    /// A gossip schedule firing under `tag`.
    pub fn new(cfg: GossipConfig, tag: u64) -> Self {
        Gossip { cfg, tag }
    }

    /// Arm the first round at a random offset within one interval
    /// (desynchronizes replicas; also used after a crash killed the
    /// timer chain).
    pub fn arm_jittered<M>(&self, ctx: &mut Context<M>) {
        let jitter = ctx.rng().below(self.cfg.interval.as_micros().max(1));
        ctx.set_timer(Duration::from_micros(jitter), self.tag);
    }

    /// Arm the next round one full interval out.
    pub fn rearm<M>(&self, ctx: &mut Context<M>) {
        ctx.set_timer(self.cfg.interval, self.tag);
    }

    /// Choose this round's targets: `fanout` distinct peers, sampled by
    /// shuffling indices with the actor's deterministic RNG.
    pub fn choose_targets<M>(&self, ctx: &mut Context<M>, peers: &[NodeId]) -> Vec<NodeId> {
        let fanout = self.cfg.fanout.min(peers.len());
        let mut idxs: Vec<usize> = (0..peers.len()).collect();
        ctx.rng().shuffle(&mut idxs);
        idxs.iter().take(fanout).map(|&i| peers[i]).collect()
    }
}

/// Count distinct acking nodes toward a threshold.
#[derive(Debug, Clone, Default)]
pub struct AckTracker {
    need: usize,
    from: BTreeSet<NodeId>,
}

impl AckTracker {
    /// A tracker needing `need` distinct acks.
    pub fn new(need: usize) -> Self {
        AckTracker { need, from: BTreeSet::new() }
    }

    /// Record an ack. Returns `true` exactly once: when this ack first
    /// reaches the threshold (duplicates and over-acks return `false`).
    pub fn ack(&mut self, from: NodeId) -> bool {
        let was_reached = self.reached();
        self.from.insert(from);
        !was_reached && self.reached()
    }

    /// Whether the threshold has been met.
    pub fn reached(&self) -> bool {
        self.from.len() >= self.need
    }

    /// Distinct acks so far.
    pub fn count(&self) -> usize {
        self.from.len()
    }

    /// The nodes that have acked, in id order.
    pub fn acked(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.from.iter().copied()
    }

    /// The configured threshold.
    pub fn need(&self) -> usize {
        self.need
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peers_excludes_self() {
        let p: Vec<NodeId> = peers(4, NodeId(2)).collect();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn ack_tracker_fires_once_at_threshold() {
        let mut t = AckTracker::new(2);
        assert!(!t.ack(NodeId(1)));
        assert!(!t.ack(NodeId(1)), "duplicate acks don't count");
        assert!(t.ack(NodeId(2)), "threshold crossing fires");
        assert!(!t.ack(NodeId(3)), "over-ack does not re-fire");
        assert_eq!(t.count(), 3);
        assert!(t.reached());
    }

    #[test]
    fn zero_need_is_immediately_reached() {
        let t = AckTracker::new(0);
        assert!(t.reached());
    }
}
