//! The resolution layer: how concurrent updates reconcile.
//!
//! A [`ResolvingStore`] is replica-side storage whose merge behaviour is
//! chosen by [`ResolutionPolicy`]: last-writer-wins over an
//! [`kvstore::MvStore`], dotted-version-vector siblings over a
//! [`kvstore::SiblingStore`], or CRDT join over [`crdt::PnCounter`]
//! state (wired to `crates/crdt`; `tests/crdt_semilattice.rs`
//! cross-checks the store's merges against direct CRDT merges). The
//! store also knows how to summarize itself for anti-entropy
//! ([`ResolvingStore::digest`] / [`ResolvingStore::missing_at_remote`])
//! so propagation policies stay resolution-agnostic.

use clocks::{LamportClock, LamportTimestamp, VersionVector};
use crdt::{CvRdt, PnCounter};
use kvstore::{siblings::Sibling, Key, MvStore, SiblingStore, Value};
use simnet::NodeId;
use std::collections::BTreeMap;

/// How conflicts resolve (the resolution axis of a
/// [`super::Composition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionPolicy {
    /// Last-writer-wins on `(Lamport counter, replica)` stamps.
    LwwRegister,
    /// Concurrent writes survive as dotted-version-vector siblings the
    /// client must reconcile (the Dynamo model).
    VersionVectorSiblings,
    /// Values are state-based CRDTs merged by join (PN-counters here);
    /// concurrent updates commute, nothing is lost.
    CrdtMerge,
}

/// Conflict-resolution policy of the eventual protocol — the legacy
/// client-facing name for [`ResolutionPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictMode {
    /// Last-writer-wins on `(Lamport counter, replica)` stamps.
    Lww,
    /// Keep concurrent siblings (dotted version vectors).
    Siblings,
    /// Values are PN-counters; a write of `v` means "increment by v".
    Counter,
}

impl ConflictMode {
    /// The kernel resolution policy this mode names.
    pub fn policy(self) -> ResolutionPolicy {
        match self {
            ConflictMode::Lww => ResolutionPolicy::LwwRegister,
            ConflictMode::Siblings => ResolutionPolicy::VersionVectorSiblings,
            ConflictMode::Counter => ResolutionPolicy::CrdtMerge,
        }
    }
}

impl ResolutionPolicy {
    /// The legacy [`ConflictMode`] naming this policy.
    pub fn conflict_mode(self) -> ConflictMode {
        match self {
            ResolutionPolicy::LwwRegister => ConflictMode::Lww,
            ResolutionPolicy::VersionVectorSiblings => ConflictMode::Siblings,
            ResolutionPolicy::CrdtMerge => ConflictMode::Counter,
        }
    }
}

/// One replicated data item in flight.
#[derive(Debug, Clone)]
pub enum Item {
    /// An LWW version.
    Lww {
        /// Key.
        key: Key,
        /// Unique write id.
        value: u64,
        /// LWW stamp.
        ts: LamportTimestamp,
        /// Origin write time (µs).
        written_at: u64,
    },
    /// A DVV sibling.
    Sib {
        /// Key.
        key: Key,
        /// The sibling (value + dotted version vector).
        sibling: Sibling,
    },
    /// Full CRDT counter state for a key.
    Counter {
        /// Key.
        key: Key,
        /// Counter state.
        state: PnCounter,
    },
}

/// LWW and sibling-mode gossip digests, paired.
pub type Digests = (Vec<(Key, LamportTimestamp)>, Vec<(Key, VersionVector)>);

/// What a local read returned, in wire shape.
#[derive(Debug, Clone)]
pub struct ReadView {
    /// Observed values (unique write ids, sibling values, or the counter
    /// sum); empty if the key is absent.
    pub values: Vec<u64>,
    /// Max stamp across returned versions (LWW/sibling policies).
    pub stamp: Option<(u64, u64)>,
    /// Origin write time of the newest returned version (µs).
    pub version_ts: Option<u64>,
    /// Causal context (sibling policy; empty otherwise).
    pub ctx: VersionVector,
}

/// The durable/observable side effect of a local write, for the caller
/// to log and record (the store itself stays event-free so it can be
/// shared across protocols with different durability policies).
#[derive(Debug, Clone)]
pub enum WriteEffect {
    /// An LWW version was adopted: log it to the WAL.
    Adopted {
        /// Key.
        key: Key,
        /// Stored value.
        value: Value,
        /// LWW stamp.
        ts: LamportTimestamp,
        /// Origin write time (µs).
        written_at: u64,
    },
    /// The write landed next to concurrent siblings.
    SiblingConflict {
        /// Key.
        key: Key,
        /// Sibling count after the write.
        siblings: u64,
    },
    /// The client's context covered every sibling: conflict resolved.
    SiblingResolved {
        /// Key.
        key: Key,
    },
    /// Nothing to log or record (counter inflation, superseded LWW).
    None,
}

/// The outcome of a local client write.
#[derive(Debug, Clone)]
pub struct WriteOutcome {
    /// Stamp the replica assigned (what the client's session observes).
    pub stamp: (u64, u64),
    /// Items to propagate to peers.
    pub items: Vec<Item>,
    /// Durable/observable side effect for the caller.
    pub effect: WriteEffect,
}

/// The outcome of applying remote items.
#[derive(Debug, Default)]
pub struct ApplyOutcome {
    /// Items that changed local state.
    pub changed: usize,
    /// Keys left with concurrent siblings (detected conflicts), with
    /// the sibling count.
    pub conflicts: Vec<(Key, u64)>,
    /// LWW versions adopted (for the caller's WAL).
    pub adopted: Vec<(Key, Value, LamportTimestamp, u64)>,
}

/// Replica-side storage with pluggable conflict resolution.
#[derive(Debug)]
pub enum ResolvingStore {
    /// Last-writer-wins register per key.
    Lww(MvStore),
    /// Dotted-version-vector sibling sets.
    Sib(SiblingStore),
    /// PN-counter per key, merged as a CRDT.
    Crdt(BTreeMap<Key, PnCounter>),
}

impl ResolvingStore {
    /// An empty store under `policy`. For siblings, the dot-minting
    /// actor id is patched on first use ([`ResolvingStore::ensure_actor`]);
    /// the `u64::MAX` placeholder is safe because `SiblingStore::new`
    /// only fixes that id.
    pub fn new(policy: ResolutionPolicy) -> Self {
        match policy {
            ResolutionPolicy::LwwRegister => ResolvingStore::Lww(MvStore::new()),
            ResolutionPolicy::VersionVectorSiblings => {
                ResolvingStore::Sib(SiblingStore::new(u64::MAX))
            }
            ResolutionPolicy::CrdtMerge => ResolvingStore::Crdt(BTreeMap::new()),
        }
    }

    /// The policy this store resolves under.
    pub fn policy(&self) -> ResolutionPolicy {
        match self {
            ResolvingStore::Lww(_) => ResolutionPolicy::LwwRegister,
            ResolvingStore::Sib(_) => ResolutionPolicy::VersionVectorSiblings,
            ResolvingStore::Crdt(_) => ResolutionPolicy::CrdtMerge,
        }
    }

    /// Reset to empty (volatile-state amnesia).
    pub fn reset(&mut self) {
        *self = ResolvingStore::new(self.policy());
    }

    /// Fix the sibling store's dot-minting id to this node before its
    /// first write (no-op for other policies or once keys exist).
    pub fn ensure_actor(&mut self, me: NodeId) {
        if let ResolvingStore::Sib(s) = self {
            if s.key_count() == 0 {
                *s = SiblingStore::new(me.0 as u64);
            }
        }
    }

    /// Read access to the LWW store (experiments check convergence).
    pub fn lww(&self) -> Option<&MvStore> {
        match self {
            ResolvingStore::Lww(s) => Some(s),
            _ => None,
        }
    }

    /// Read access to the sibling store.
    pub fn siblings(&self) -> Option<&SiblingStore> {
        match self {
            ResolvingStore::Sib(s) => Some(s),
            _ => None,
        }
    }

    /// Counter value for `key` (CRDT policy).
    pub fn counter_value(&self, key: Key) -> Option<i64> {
        match self {
            ResolvingStore::Crdt(m) => m.get(&key).map(|c| c.value()),
            _ => None,
        }
    }

    /// Serve a local read.
    pub fn read(&self, key: Key) -> ReadView {
        match self {
            ResolvingStore::Lww(s) => match s.get(key) {
                Some(v) => ReadView {
                    values: v.value.as_u64().into_iter().collect(),
                    stamp: Some((v.ts.counter, v.ts.actor)),
                    version_ts: Some(v.written_at),
                    ctx: VersionVector::new(),
                },
                None => ReadView {
                    values: vec![],
                    stamp: None,
                    version_ts: None,
                    ctx: VersionVector::new(),
                },
            },
            ResolvingStore::Sib(s) => {
                let r = s.read(key);
                let newest = s.siblings(key).iter().map(|x| x.written_at).max();
                ReadView {
                    values: r.values.iter().filter_map(|v| v.as_u64()).collect(),
                    stamp: Some((r.context.total(), 0)),
                    version_ts: newest,
                    ctx: r.context,
                }
            }
            ResolvingStore::Crdt(m) => {
                let v = m.get(&key).map(|c| c.value()).unwrap_or(0);
                ReadView {
                    values: vec![v as u64],
                    stamp: None,
                    version_ts: None,
                    ctx: VersionVector::new(),
                }
            }
        }
    }

    /// Apply a local client write at `me`, stamping with `clock`.
    ///
    /// `observed` is the session's piggybacked stamp floor (MW/WFR
    /// ordering under LWW), `client_ctx` its causal context (siblings).
    #[allow(clippy::too_many_arguments)]
    pub fn write_local(
        &mut self,
        me: NodeId,
        key: Key,
        value: u64,
        observed: (u64, u64),
        client_ctx: &VersionVector,
        now_us: u64,
        clock: &mut LamportClock,
    ) -> WriteOutcome {
        self.ensure_actor(me);
        match self {
            ResolvingStore::Lww(s) => {
                // Piggybacked session stamp keeps MW/WFR ordering: tick
                // past everything the session has observed.
                clock.observe(LamportTimestamp::new(observed.0, observed.1), me.0 as u64);
                let ts = clock.tick(me.0 as u64);
                let v = Value::from_u64(value);
                let effect = if s.put(key, v.clone(), ts, now_us) {
                    WriteEffect::Adopted { key, value: v, ts, written_at: now_us }
                } else {
                    WriteEffect::None
                };
                WriteOutcome {
                    stamp: (ts.counter, ts.actor),
                    items: vec![Item::Lww { key, value, ts, written_at: now_us }],
                    effect,
                }
            }
            ResolvingStore::Sib(s) => {
                let before = s.siblings(key).len();
                s.write(key, Value::from_u64(value), client_ctx, now_us);
                let after = s.siblings(key).len();
                let effect = if after > 1 {
                    WriteEffect::SiblingConflict { key, siblings: after as u64 }
                } else if before > 1 {
                    WriteEffect::SiblingResolved { key }
                } else {
                    WriteEffect::None
                };
                let sib = s.siblings(key).last().expect("just wrote").clone();
                WriteOutcome {
                    stamp: (s.read(key).context.total(), 0),
                    items: vec![Item::Sib { key, sibling: sib }],
                    effect,
                }
            }
            ResolvingStore::Crdt(m) => {
                let c = m.entry(key).or_default();
                c.increment(me.0 as u64, value);
                WriteOutcome {
                    stamp: (0, 0),
                    items: vec![Item::Counter { key, state: c.clone() }],
                    effect: WriteEffect::None,
                }
            }
        }
    }

    /// Apply replicated items, resolving by policy. LWW adoptions are
    /// returned for the caller's WAL; conflict keys for its events.
    // A guard with a side effect (clippy's collapse suggestion) would be
    // worse than the nested `if`.
    #[allow(clippy::collapsible_match)]
    pub fn apply(&mut self, items: Vec<Item>, clock: &mut LamportClock) -> ApplyOutcome {
        let mut out = ApplyOutcome::default();
        for item in items {
            match (&mut *self, item) {
                (ResolvingStore::Lww(s), Item::Lww { key, value, ts, written_at }) => {
                    // Keep the Lamport clock ahead of everything stored.
                    clock.observe(ts, 0);
                    let v = Value::from_u64(value);
                    if s.put(key, v.clone(), ts, written_at) {
                        out.adopted.push((key, v, ts, written_at));
                        out.changed += 1;
                    }
                }
                (ResolvingStore::Sib(s), Item::Sib { key, sibling }) => {
                    if s.apply_remote(key, sibling) {
                        out.changed += 1;
                        let n = s.siblings(key).len();
                        if n > 1 {
                            out.conflicts.push((key, n as u64));
                        }
                    }
                }
                (ResolvingStore::Crdt(m), Item::Counter { key, state }) => {
                    let e = m.entry(key).or_default();
                    let before = e.clone();
                    e.merge(&state);
                    if *e != before {
                        out.changed += 1;
                    }
                }
                // Policy mismatch: a deployment bug; drop the item.
                _ => {}
            }
        }
        out
    }

    /// This store's anti-entropy digest.
    pub fn digest(&self) -> Digests {
        match self {
            ResolvingStore::Lww(s) => (s.scan(..).map(|(k, v)| (k, v.ts)).collect(), Vec::new()),
            ResolvingStore::Sib(s) => {
                (Vec::new(), s.keys().map(|k| (k, s.read(k).context)).collect())
            }
            // Counters have no cheap digest; gossip ships full state.
            ResolvingStore::Crdt(_) => (Vec::new(), Vec::new()),
        }
    }

    /// Items this store has that the remote digest lacks.
    pub fn missing_at_remote(
        &self,
        digest: &[(Key, LamportTimestamp)],
        vv_digest: &[(Key, VersionVector)],
    ) -> Vec<Item> {
        match self {
            ResolvingStore::Lww(s) => {
                let remote: BTreeMap<Key, LamportTimestamp> = digest.iter().copied().collect();
                s.scan(..)
                    .filter(|(k, v)| remote.get(k).map(|&ts| v.ts > ts).unwrap_or(true))
                    .map(|(k, v)| Item::Lww {
                        key: k,
                        value: v.value.as_u64().unwrap_or(0),
                        ts: v.ts,
                        written_at: v.written_at,
                    })
                    .collect()
            }
            ResolvingStore::Sib(s) => {
                let remote: BTreeMap<Key, &VersionVector> =
                    vv_digest.iter().map(|(k, vv)| (*k, vv)).collect();
                let mut items = Vec::new();
                for k in s.keys().collect::<Vec<_>>() {
                    for sib in s.siblings(k) {
                        let unseen =
                            remote.get(&k).map(|vv| !sib.dvv.covered_by(vv)).unwrap_or(true);
                        if unseen {
                            items.push(Item::Sib { key: k, sibling: sib.clone() });
                        }
                    }
                }
                items
            }
            ResolvingStore::Crdt(m) => {
                m.iter().map(|(&k, c)| Item::Counter { key: k, state: c.clone() }).collect()
            }
        }
    }

    /// Per-key version fingerprints for divergence probing
    /// ([`simnet::Actor::key_versions`]).
    pub fn key_versions(&self) -> Vec<(u64, u64)> {
        match self {
            // Unique write ids identify LWW versions directly.
            ResolvingStore::Lww(s) => {
                s.scan(..).map(|(k, v)| (k, v.value.as_u64().unwrap_or(0))).collect()
            }
            // Sibling sets are fingerprinted order-independently (XOR of
            // values + count): replicas holding different sets diverge.
            ResolvingStore::Sib(s) => s
                .keys()
                .map(|k| {
                    let sibs = s.siblings(k);
                    let fp = sibs
                        .iter()
                        .filter_map(|x| x.value.as_u64())
                        .fold(sibs.len() as u64, |acc, v| acc ^ v);
                    (k, fp)
                })
                .collect(),
            // A counter's "version" is its current value.
            ResolvingStore::Crdt(m) => m.iter().map(|(&k, c)| (k, c.value() as u64)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_roundtrips_through_conflict_mode() {
        for p in [
            ResolutionPolicy::LwwRegister,
            ResolutionPolicy::VersionVectorSiblings,
            ResolutionPolicy::CrdtMerge,
        ] {
            assert_eq!(p.conflict_mode().policy(), p);
        }
    }

    #[test]
    fn crdt_apply_merges_like_the_crdt_crate() {
        // The store's counter merge must agree with a direct
        // `crdt::PnCounter` merge of the same states.
        let mut a = PnCounter::default();
        a.increment(1, 5);
        let mut b = PnCounter::default();
        b.increment(2, 7);
        let mut store = ResolvingStore::new(ResolutionPolicy::CrdtMerge);
        let mut clock = LamportClock::new();
        store.apply(vec![Item::Counter { key: 9, state: a.clone() }], &mut clock);
        store.apply(vec![Item::Counter { key: 9, state: b.clone() }], &mut clock);
        let mut direct = a.clone();
        direct.merge(&b);
        assert_eq!(store.counter_value(9), Some(direct.value()));
    }

    #[test]
    fn lww_write_then_read() {
        let mut store = ResolvingStore::new(ResolutionPolicy::LwwRegister);
        let mut clock = LamportClock::new();
        let out =
            store.write_local(NodeId(0), 3, 42, (0, 0), &VersionVector::new(), 10, &mut clock);
        assert!(matches!(out.effect, WriteEffect::Adopted { key: 3, .. }));
        let view = store.read(3);
        assert_eq!(view.values, vec![42]);
        assert_eq!(view.stamp, Some(out.stamp));
    }
}
