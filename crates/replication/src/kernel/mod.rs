//! The layered replica kernel: durability × propagation × resolution.
//!
//! The tutorial's central claim is that every replication scheme is a
//! *composition* of three nearly-orthogonal choices:
//!
//! | layer | question | implementations |
//! |---|---|---|
//! | [`durability`] | what survives a crash? | [`DurabilityPolicy`] over [`kvstore::Wal`] |
//! | [`propagation`] | how do updates travel? | [`PropagationPolicy`]: eager broadcast, quorum fan-out, anti-entropy gossip, primary log shipping, consensus log |
//! | [`resolution`] | how do conflicts resolve? | [`ResolutionPolicy`]: LWW register, version-vector siblings, CRDT merge |
//!
//! The protocol modules (`eventual`, `quorum`, `primary`, `causal`,
//! `paxos`) are built from these shared layers, and a [`Composition`]
//! names one point of the product space. The five legacy schemes each
//! have a canonical composition ([`Composition::eventual_lww`],
//! [`Composition::quorum`], …) that constructs *the same actors* — the
//! parity test in `tests/scheme_parity.rs` proves legacy and composed
//! runs are byte-identical at the same seed. New points of the space
//! (e.g. [`Composition::mm_gossip_crdt`],
//! [`Composition::mm_eager_acked`]) are reachable without writing a new
//! protocol monolith.

pub mod durability;
pub mod propagation;
pub mod resolution;
pub mod ring;

pub use durability::{DurabilityPolicy, WalState};
pub use propagation::{peers, AckTracker, Gossip, GossipConfig, PropagationPolicy, ShipMode};
pub use resolution::{ConflictMode, Item, ReadView, ResolutionPolicy, ResolvingStore, WriteEffect};
pub use ring::Ring;

use simnet::Duration;

/// Who may accept an update in the first place (the taxonomy's first
/// axis: primary-copy vs. update-anywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateSite {
    /// A single primary accepts writes; backups are read-only.
    PrimaryCopy,
    /// Every replica accepts writes locally (multi-master).
    MultiMaster,
    /// A per-operation coordinator runs the write on behalf of the
    /// client (Dynamo-style quorum coordination).
    Coordinator,
    /// Updates go through a replicated consensus log; any node may
    /// propose, one leader sequences.
    ConsensusGroup,
}

/// One point in the design space: a replica kernel configuration.
///
/// `Composition` is a *description*; `rec-core`'s runner materializes it
/// into the concrete actor deployment. The five legacy schemes are
/// canonical compositions (constructors below), and new compositions
/// reuse the same layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Composition {
    /// Replica count (node ids `0..replicas`; spares follow).
    pub replicas: usize,
    /// Who accepts updates.
    pub update: UpdateSite,
    /// How updates propagate between replicas.
    pub propagation: PropagationPolicy,
    /// How concurrent updates reconcile.
    pub resolution: ResolutionPolicy,
    /// What survives an amnesia crash.
    pub durability: DurabilityPolicy,
}

impl Composition {
    /// The canonical composition of the legacy eventual scheme:
    /// multi-master, eager broadcast and/or gossip, pluggable
    /// resolution, WAL-replay durability.
    pub fn eventual(
        replicas: usize,
        eager: bool,
        gossip: Option<GossipConfig>,
        resolution: ResolutionPolicy,
    ) -> Self {
        let propagation = if eager {
            PropagationPolicy::EagerBroadcast { acks: 0, gossip }
        } else {
            PropagationPolicy::AntiEntropyGossip(
                gossip.unwrap_or(GossipConfig { interval: Duration::from_millis(50), fanout: 1 }),
            )
        };
        Composition {
            replicas,
            update: UpdateSite::MultiMaster,
            propagation,
            resolution,
            durability: DurabilityPolicy::WalReplay,
        }
    }

    /// Legacy eventual with LWW resolution and the default eager+gossip
    /// propagation.
    pub fn eventual_lww(replicas: usize) -> Self {
        Composition::eventual(
            replicas,
            true,
            Some(GossipConfig { interval: Duration::from_millis(50), fanout: 1 }),
            ResolutionPolicy::LwwRegister,
        )
    }

    /// The canonical composition of the legacy quorum scheme
    /// (`spares == 0`) and sloppy quorum (`spares > 0`).
    pub fn quorum(n: usize, r: usize, w: usize, read_repair: bool, spares: usize) -> Self {
        Composition {
            replicas: n,
            update: UpdateSite::Coordinator,
            propagation: PropagationPolicy::QuorumFanout { r, w, read_repair, spares },
            resolution: ResolutionPolicy::LwwRegister,
            durability: DurabilityPolicy::WalReplay,
        }
    }

    /// The canonical composition of the legacy primary-copy schemes.
    pub fn primary(replicas: usize, ship: ShipMode, failover: bool) -> Self {
        Composition {
            replicas,
            update: UpdateSite::PrimaryCopy,
            propagation: PropagationPolicy::PrimaryShip { ship, failover },
            resolution: ResolutionPolicy::LwwRegister,
            durability: DurabilityPolicy::CheckpointedWal,
        }
    }

    /// The canonical composition of the legacy Paxos scheme.
    pub fn paxos(nodes: usize) -> Self {
        Composition {
            replicas: nodes,
            update: UpdateSite::ConsensusGroup,
            propagation: PropagationPolicy::ConsensusLog,
            resolution: ResolutionPolicy::LwwRegister,
            durability: DurabilityPolicy::FsyncedState,
        }
    }

    /// The canonical composition of the legacy causal scheme.
    pub fn causal(replicas: usize) -> Self {
        Composition {
            replicas,
            update: UpdateSite::MultiMaster,
            propagation: PropagationPolicy::CausalBroadcast,
            resolution: ResolutionPolicy::LwwRegister,
            durability: DurabilityPolicy::WalReplay,
        }
    }

    /// **New composition**: multi-master, anti-entropy gossip only, CRDT
    /// counter merge, fsynced state. No legacy scheme offers this point:
    /// counter state survives amnesia crashes (the legacy eventual
    /// protocol models non-LWW state as volatile), so sticky sessions
    /// read monotonically inflating values even under crash storms.
    pub fn mm_gossip_crdt(replicas: usize) -> Self {
        Composition {
            replicas,
            update: UpdateSite::MultiMaster,
            propagation: PropagationPolicy::AntiEntropyGossip(GossipConfig {
                interval: Duration::from_millis(25),
                fanout: 2,
            }),
            resolution: ResolutionPolicy::CrdtMerge,
            durability: DurabilityPolicy::FsyncedState,
        }
    }

    /// **New composition**: multi-master eager broadcast that withholds
    /// the client ack until **all** peers have durably applied the write
    /// (`acks = replicas - 1`), LWW resolution, WAL durability. A
    /// synchronous flavour of update-anywhere: every acknowledged write
    /// is on every replica, so local reads are never stale — at the cost
    /// of writes failing when any peer is unreachable.
    pub fn mm_eager_acked(replicas: usize) -> Self {
        Composition {
            replicas,
            update: UpdateSite::MultiMaster,
            propagation: PropagationPolicy::EagerBroadcast {
                acks: replicas.saturating_sub(1),
                gossip: Some(GossipConfig { interval: Duration::from_millis(50), fanout: 1 }),
            },
            resolution: ResolutionPolicy::LwwRegister,
            durability: DurabilityPolicy::WalReplay,
        }
    }

    /// Total server nodes the composition deploys (replicas + spares).
    pub fn server_node_count(&self) -> usize {
        match self.propagation {
            PropagationPolicy::QuorumFanout { spares, .. } => self.replicas + spares,
            _ => self.replicas,
        }
    }

    /// A short stable label (`update+propagation+resolution`).
    pub fn label(&self) -> String {
        let update = match self.update {
            UpdateSite::PrimaryCopy => "primary",
            UpdateSite::MultiMaster => "mm",
            UpdateSite::Coordinator => "coord",
            UpdateSite::ConsensusGroup => "consensus",
        };
        let prop = match &self.propagation {
            PropagationPolicy::EagerBroadcast { acks: 0, gossip: Some(_) } => {
                "eager+gossip".to_string()
            }
            PropagationPolicy::EagerBroadcast { acks: 0, gossip: None } => "eager".to_string(),
            PropagationPolicy::EagerBroadcast { acks, .. } => format!("eager-acked({acks})"),
            PropagationPolicy::AntiEntropyGossip(_) => "gossip".to_string(),
            PropagationPolicy::CausalBroadcast => "causal-bcast".to_string(),
            PropagationPolicy::QuorumFanout { r, w, spares: 0, .. } => format!("quorum(R{r}W{w})"),
            PropagationPolicy::QuorumFanout { r, w, spares, .. } => {
                format!("sloppy(R{r}W{w}+{spares})")
            }
            PropagationPolicy::PrimaryShip { ship: ShipMode::Sync, .. } => "sync-ship".to_string(),
            PropagationPolicy::PrimaryShip { ship: ShipMode::Async { interval }, failover } => {
                format!(
                    "async-ship({}ms{})",
                    interval.as_millis_f64(),
                    if *failover { ",failover" } else { "" }
                )
            }
            PropagationPolicy::ConsensusLog => "log".to_string(),
        };
        let res = match self.resolution {
            ResolutionPolicy::LwwRegister => "lww",
            ResolutionPolicy::VersionVectorSiblings => "siblings",
            ResolutionPolicy::CrdtMerge => "crdt",
        };
        format!("{update}+{prop}+{res}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_labels() {
        assert_eq!(Composition::eventual_lww(3).label(), "mm+eager+gossip+lww");
        assert_eq!(Composition::quorum(3, 2, 2, true, 0).label(), "coord+quorum(R2W2)+lww");
        assert_eq!(Composition::paxos(3).label(), "consensus+log+lww");
        assert_eq!(Composition::mm_gossip_crdt(3).label(), "mm+gossip+crdt");
        assert_eq!(Composition::mm_eager_acked(3).label(), "mm+eager-acked(2)+lww");
        assert_eq!(Composition::causal(3).label(), "mm+causal-bcast+lww");
    }

    #[test]
    fn server_counts_include_spares() {
        assert_eq!(Composition::quorum(3, 2, 2, true, 2).server_node_count(), 5);
        assert_eq!(Composition::mm_gossip_crdt(3).server_node_count(), 3);
    }
}
